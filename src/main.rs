//! The `tsgbench` command-line entry point.
//!
//! Two subcommands connect the offline benchmark to the online
//! service:
//!
//! * `tsgbench train` fits methods on a (scaled) benchmark dataset
//!   and writes one `TSGBCK02` checkpoint per method — the artifacts
//!   `tsgbench serve` loads.
//! * `tsgbench serve` exposes the checkpoints over HTTP with request
//!   batching and deadline-aware backpressure (see `tsgb-serve`).
//! * `tsgbench route` fronts a fleet of `serve` workers: it spawns
//!   `--workers` child processes, consistent-hashes model ids across
//!   them so each loads only its shard, health-checks and respawns
//!   them, and fails requests over on worker death (see `tsgb-router`).
//! * `tsgbench monitor` watches generation quality continuously:
//!   clients stream generated windows to `POST /ingest`, online
//!   measures update per window, expensive measures refresh through
//!   the eval cache, and drift raises flags on `GET /quality` (see
//!   `tsgb_serve::monitor`).
//! * `tsgbench scenario` runs the task families of `tsgb-scenario`
//!   (streaming, conditional, imputation) against trained checkpoints
//!   and prints one JSON report per (model, scenario) pair.

use std::path::PathBuf;
use std::process::ExitCode;

use tsgb_methods::{MethodId, TrainConfig};
use tsgb_router::{Router, RouterConfig};
use tsgb_serve::{Monitor, MonitorConfig, Registry, ServeConfig, Server};
use tsgbench::data::{DatasetId, DatasetSpec};
use tsgbench::runner::{child_rng, write_checkpoint};

const USAGE: &str = "\
usage: tsgbench <command> [options]

commands:
  train     fit methods on a benchmark dataset and write checkpoints
  serve     serve checkpoints over HTTP (batching + backpressure)
  route     front a sharded fleet of serve workers (hashing + failover)
  monitor   continuous quality monitoring of generation streams
  scenario  run streaming/conditional/imputation task families on
            trained checkpoints and print JSON reports

train options:
  --out DIR          checkpoint output directory (required)
  --dataset NAME     benchmark dataset (default: Stock)
  --methods A,B,C    comma-separated method names (default: TimeVAE)
  --epochs N         training epochs (default: 30)
  --max-samples R    cap on training windows (default: 64)
  --max-len L        cap on window length (default: 24)
  --seed S           pipeline/training seed (default: 7)
  --ckpt-dtype D     checkpoint float width: f64 (default) or f32
                     (half the file size; serve output then carries
                     f32 precision on either tier)

serve options:
  --ckpt-dir DIR     directory of *.tsgbnn checkpoints (required)
  --addr HOST:PORT   bind address (overrides TSGB_SERVE_ADDR)
  --models A,B       load only these checkpoints (the worker's shard;
                     an empty shard is legal and serves health only)

route options:
  --ckpt-dir DIR     directory of *.tsgbnn checkpoints (required)
  --addr HOST:PORT   router bind address (overrides TSGB_ROUTER_ADDR)
  --workers N        worker processes to spawn (default: 2, or
                     TSGB_ROUTER_WORKERS)
  --replicas R       workers per model (default: 2, or
                     TSGB_ROUTER_REPLICAS; clamped to N)

monitor options:
  --dataset NAME     reference dataset (default: Stock)
  --max-samples R    cap on reference windows (default: 128)
  --max-len L        cap on window length (default: 24)
  --seed S           pipeline + C-FID embedding seed (default: 7)
  --addr HOST:PORT   bind address (default: 127.0.0.1:7879)
  --calibrate N      healthy windows that set the baseline (default: 32)
  --stride N         tumbling evaluation window (default: 32)
  --min-eval N       windows before a tumble is judged (default: 8)
  --refresh-every N  expensive-measure cadence in windows; 0 = off
                     (default: 64)
  --drift-factor F   relative drift threshold (default: 1.5)

monitor endpoints: POST /ingest, POST /drill, GET /quality,
GET /healthz, POST /shutdown (see the tsgb-serve crate docs).

scenario options:
  --ckpt-dir DIR     directory of *.tsgbnn checkpoints (required)
  --model NAME       run one model only (default: every loaded model)
  --scenario NAME    streaming | conditional | imputation
                     (default: all three, in that order)
  --dataset NAME     reference dataset (default: Stock)
  --max-samples R    cap on reference windows (default: 64)
  --max-len L        cap on window length (default: 24)
  --seed S           pipeline + scenario seed (default: 7)

scenario output: one JSON object per line,
{\"model\":\"...\",\"scenario\":\"...\",\"metrics\":{...}}.

serve also reads TSGB_SERVE_ADDR / TSGB_SERVE_BATCH /
TSGB_SERVE_LINGER_MS / TSGB_SERVE_QUEUE / TSGB_SERVE_DTYPE /
TSGB_STREAM_CHUNK / TSGB_STREAM_INFLIGHT from the environment; route
also reads TSGB_ROUTER_ADDR / TSGB_ROUTER_WORKERS /
TSGB_ROUTER_REPLICAS / TSGB_ROUTER_HEALTH_MS / TSGB_ROUTER_FAILOVER_MS
(workers inherit the TSGB_SERVE_* environment); scenario also reads
the TSGB_SCENARIO_* knobs (N, CHUNK, MASK_RATE, SPAN, CANDIDATES,
CLASSES, STRENGTH) and honors TSGB_EVAL_CACHE for the imputation
measures.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("monitor") => cmd_monitor(&args[1..]),
        Some("scenario") => cmd_scenario(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal `--flag value` parser shared by both subcommands.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("unexpected argument `{flag}`"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?;
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }
}

fn dataset_by_name(name: &str) -> Option<DatasetSpec> {
    DatasetId::ALL
        .iter()
        .map(|&id| DatasetSpec::get(id))
        .find(|s| s.name.eq_ignore_ascii_case(name.trim()))
}

fn resolve_dataset(name: &str) -> Result<DatasetSpec, String> {
    dataset_by_name(name).ok_or_else(|| {
        let names: Vec<&str> = DatasetId::ALL
            .iter()
            .map(|&id| DatasetSpec::get(id).name)
            .collect();
        format!("unknown dataset `{name}` (one of: {})", names.join(", "))
    })
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let out: PathBuf = flags.get("out").ok_or("train requires --out DIR")?.into();
    let spec = resolve_dataset(flags.get("dataset").unwrap_or("Stock"))?;
    let methods: Vec<MethodId> = flags
        .get("methods")
        .unwrap_or("TimeVAE")
        .split(',')
        .map(|m| MethodId::from_name(m).ok_or_else(|| format!("unknown method `{m}`")))
        .collect::<Result<_, _>>()?;
    let epochs: usize = flags.parsed("epochs", 30)?;
    let max_samples: usize = flags.parsed("max-samples", 64)?;
    let max_len: usize = flags.parsed("max-len", 24)?;
    let seed: u64 = flags.parsed("seed", 7)?;
    let f32_ckpts = match flags.get("ckpt-dtype") {
        None => false,
        Some(d) if d.eq_ignore_ascii_case("f64") => false,
        Some(d) if d.eq_ignore_ascii_case("f32") => true,
        Some(d) => return Err(format!("--ckpt-dtype: `{d}` is not f64 or f32")),
    };

    let scaled = spec.scaled(max_samples).with_max_len(max_len);
    let data = scaled.materialize(seed);
    let (r, l, n) = data.train.shape();
    println!("dataset {} → {r} windows of {l}×{n}", spec.name);

    let cfg = TrainConfig {
        epochs,
        ..TrainConfig::fast()
    };
    for (i, id) in methods.iter().enumerate() {
        let mut method = id.create(l, n);
        let mut rng = child_rng(seed, 1000 + i as u64);
        let report = method.fit(&data.train, &cfg, &mut rng);
        let path = write_checkpoint(&out, method.as_ref())
            .map_err(|e| format!("writing {} checkpoint: {e}", id.name()))?;
        if f32_ckpts {
            let bytes = std::fs::read(&path)
                .map_err(|e| format!("rereading {}: {e}", path.display()))?;
            let demoted = tsgb_methods::persist::transcode_to_f32(&bytes)
                .map_err(|e| format!("transcoding {} to f32: {e}", path.display()))?;
            std::fs::write(&path, demoted)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        println!(
            "trained {} ({epochs} epochs, {:.1}s) → {}",
            id.name(),
            report.train_seconds,
            path.display()
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let ckpt_dir: PathBuf = flags
        .get("ckpt-dir")
        .ok_or("serve requires --ckpt-dir DIR")?
        .into();
    // --models restricts the registry to this worker's shard; the
    // router passes it when spawning the fleet
    let shard: Option<Vec<String>> = flags.get("models").map(|csv| {
        csv.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect()
    });

    let (registry, failures) = Registry::load_dir_filtered(&ckpt_dir, shard.as_deref())
        .map_err(|e| format!("reading {}: {e}", ckpt_dir.display()))?;
    for f in &failures {
        eprintln!("warning: skipping {}: {}", f.file, f.reason);
    }
    // an empty *shard* is a legal worker state (it still serves
    // /healthz); an empty unfiltered directory is an operator error
    if registry.is_empty() && shard.is_none() {
        return Err(format!(
            "no loadable checkpoints in {} (expected *.tsgbnn; run `tsgbench train` first)",
            ckpt_dir.display()
        ));
    }
    for entry in registry.entries() {
        let info = &entry.info;
        println!(
            "model {} ({}, {}×{})",
            info.name, info.method, info.seq_len, info.features
        );
    }

    let mut cfg = ServeConfig::from_env();
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.to_string();
    }
    let dtype = cfg.dtype;
    let server = Server::start(registry, cfg).map_err(|e| format!("starting server: {e}"))?;
    println!(
        "listening on http://{} (POST /generate, GET /models, GET /healthz, POST /shutdown; {} tier)",
        server.addr(),
        dtype.name()
    );
    server.wait();
    server.shutdown();
    println!("drained; bye");
    Ok(())
}

fn cmd_monitor(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = resolve_dataset(flags.get("dataset").unwrap_or("Stock"))?;
    let max_samples: usize = flags.parsed("max-samples", 128)?;
    let max_len: usize = flags.parsed("max-len", 24)?;
    let seed: u64 = flags.parsed("seed", 7)?;
    let scaled = spec.scaled(max_samples).with_max_len(max_len);
    let data = scaled.materialize(seed);
    let (r, l, n) = data.train.shape();
    println!("reference {} → {r} windows of {l}×{n}", spec.name);

    let mut cfg = MonitorConfig {
        seed,
        ..MonitorConfig::default()
    };
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.to_string();
    }
    cfg.calibrate = flags.parsed("calibrate", cfg.calibrate)?;
    cfg.stride = flags.parsed("stride", cfg.stride)?;
    cfg.min_eval = flags.parsed("min-eval", cfg.min_eval)?;
    cfg.refresh_every = flags.parsed("refresh-every", cfg.refresh_every)?;
    cfg.drift_factor = flags.parsed("drift-factor", cfg.drift_factor)?;
    if cfg.min_eval == 0 || cfg.stride < cfg.min_eval || cfg.calibrate < cfg.min_eval {
        return Err("need --calibrate >= --min-eval, --stride >= --min-eval, --min-eval >= 1".into());
    }
    if cfg.drift_factor <= 1.0 {
        return Err("--drift-factor must be above 1.0".into());
    }

    let monitor =
        Monitor::start(data.train, cfg).map_err(|e| format!("starting monitor: {e}"))?;
    println!(
        "monitoring on http://{} (POST /ingest, POST /drill, GET /quality, GET /healthz, POST /shutdown)",
        monitor.addr()
    );
    monitor.wait();
    monitor.shutdown();
    println!("drained; bye");
    Ok(())
}

fn cmd_scenario(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let ckpt_dir: PathBuf = flags
        .get("ckpt-dir")
        .ok_or("scenario requires --ckpt-dir DIR")?
        .into();
    let spec = resolve_dataset(flags.get("dataset").unwrap_or("Stock"))?;
    let max_samples: usize = flags.parsed("max-samples", 64)?;
    let max_len: usize = flags.parsed("max-len", 24)?;
    let seed: u64 = flags.parsed("seed", 7)?;

    let cfg = tsgb_scenario::ScenarioConfig::from_env();
    let scenarios = match flags.get("scenario") {
        None => cfg.all(),
        Some(name) => vec![cfg.by_name(name).ok_or_else(|| {
            format!("unknown scenario `{name}` (one of: streaming, conditional, imputation)")
        })?],
    };

    let shard: Option<Vec<String>> = flags.get("model").map(|m| vec![m.to_string()]);
    let (registry, failures) = Registry::load_dir_filtered(&ckpt_dir, shard.as_deref())
        .map_err(|e| format!("reading {}: {e}", ckpt_dir.display()))?;
    for f in &failures {
        eprintln!("warning: skipping {}: {}", f.file, f.reason);
    }
    if registry.is_empty() {
        return Err(match flags.get("model") {
            Some(m) => format!("no checkpoint for `{m}` in {}", ckpt_dir.display()),
            None => format!(
                "no loadable checkpoints in {} (run `tsgbench train` first)",
                ckpt_dir.display()
            ),
        });
    }

    let scaled = spec.scaled(max_samples).with_max_len(max_len);
    let data = scaled.materialize(seed);
    let (r, l, n) = data.train.shape();
    eprintln!("reference {} → {r} windows of {l}×{n}", spec.name);

    for entry in registry.entries() {
        let info = &entry.info;
        if info.seq_len != l || info.features != n {
            eprintln!(
                "warning: skipping {} ({}×{} checkpoint vs {l}×{n} reference; \
                 pass matching --max-len / --dataset)",
                info.name, info.seq_len, info.features
            );
            continue;
        }
        for scenario in &scenarios {
            let report = scenario.run(entry.model.as_ref(), &data.train, seed);
            // splice the model name into the report's JSON object
            let json = report.to_json();
            println!("{{\"model\":\"{}\",{}", info.name, &json[1..]);
        }
    }
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let ckpt_dir: PathBuf = flags
        .get("ckpt-dir")
        .ok_or("route requires --ckpt-dir DIR")?
        .into();
    let mut cfg = RouterConfig::from_env();
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.to_string();
    }
    let env_workers = std::env::var("TSGB_ROUTER_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2);
    let workers: usize = flags.parsed("workers", env_workers)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    cfg.replicas = flags.parsed("replicas", cfg.replicas)?.max(1);

    // workers run the same binary this router was started from
    let bin = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;
    let router = Router::start_spawned(bin, ckpt_dir, workers, cfg)
        .map_err(|e| format!("starting the worker tier: {e}"))?;
    for w in router.workers() {
        println!("worker {} pid {} at http://{}", w.slot, w.pid(), w.addr());
    }
    println!(
        "routing on http://{} ({} workers; POST /generate, GET /models, GET /healthz, POST /shutdown)",
        router.addr(),
        router.workers().len()
    );
    router.wait();
    router.shutdown();
    println!("tier drained; bye");
    Ok(())
}
