//! Plain-text table rendering and CSV export for benchmark results —
//! the presentation layer the `reproduce` binary and the examples
//! share. No external dependencies: the artifacts are simple enough
//! that a hand-rolled writer beats pulling in a serializer.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns, a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:<w$}", w = w);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV (RFC-4180 quoting for commas/quotes).
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, out)
    }
}

/// Formats a mean ± std pair the way the paper's tables do.
pub fn fmt_score(mean: f64, std: f64) -> String {
    if std > 0.0 {
        format!("{mean:.3}±{std:.3}")
    } else if mean.abs() >= 1000.0 {
        format!("{mean:.1}")
    } else {
        format!("{mean:.3}")
    }
}

/// Formats a duration in the paper's four training-time buckets:
/// `< 1 min`, `< 1 hour`, `< 1 day`, `>= 1 day`.
pub fn fmt_time_bucket(seconds: f64) -> &'static str {
    if seconds < 60.0 {
        "< 1 min"
    } else if seconds < 3600.0 {
        "< 1 hour"
    } else if seconds < 86_400.0 {
        "< 1 day"
    } else {
        ">= 1 day"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["method", "score"]);
        t.row(vec!["TimeVAE".into(), "0.123".into()]);
        t.row(vec!["A".into(), "12.0".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // columns align: 'score' column starts at the same offset
        let off = lines[0].find("score").unwrap();
        assert_eq!(&lines[2][off..off + 5], "0.123");
    }

    #[test]
    fn csv_quotes_properly() {
        let dir = std::env::temp_dir().join("tsgb_report_test");
        let path = dir.join("t.csv");
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x,y\""));
        assert!(body.contains("\"he said \"\"hi\"\"\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn score_and_time_formats() {
        assert_eq!(fmt_score(0.1234, 0.0), "0.123");
        assert_eq!(fmt_score(0.5, 0.01), "0.500±0.010");
        assert_eq!(fmt_time_bucket(5.0), "< 1 min");
        assert_eq!(fmt_time_bucket(100.0), "< 1 hour");
        assert_eq!(fmt_time_bucket(5000.0), "< 1 day");
        assert_eq!(fmt_time_bucket(100_000.0), ">= 1 day");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
