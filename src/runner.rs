//! High-level benchmark orchestration: train a method, generate,
//! evaluate the suite — the loop behind Figures 5–7.

use std::path::PathBuf;

use tsgb_rand::rngs::SmallRng;
use tsgb_rand::{Rng, SeedableRng};
use tsgb_data::domain::{DaData, DaScenario, DaTask};
use tsgb_data::pipeline::PreprocessedDataset;
use tsgb_data::spec::DatasetSpec;
use tsgb_eval::suite::{self, EvalConfig, EvalResult, Measure, Score};
use tsgb_linalg::Tensor3;
use tsgb_methods::common::{Condition, MethodId, TrainConfig, TrainReport, TsgMethod};

/// Orchestrates train → generate → evaluate with shared configuration.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Method training profile.
    pub train_cfg: TrainConfig,
    /// Evaluation-suite profile.
    pub eval_cfg: EvalConfig,
    /// Master seed; every run derives child seeds from it.
    pub seed: u64,
    /// How many windows to generate (defaults to the training count).
    pub gen_samples: Option<usize>,
    /// When set, every trained method's `TSGBCK02` checkpoint is
    /// written here as `<method>.tsgbnn` — the artifact `tsgb-serve`'s
    /// registry loads.
    pub ckpt_dir: Option<PathBuf>,
    /// When set, generation is class-/covariate-conditioned: methods
    /// with the [`ConditionalSample`](tsgb_methods::ConditionalSample)
    /// capability draw through `generate_conditioned`; methods without
    /// it fall back to the unconditional draw (with a warning), so a
    /// mixed grid still completes.
    pub condition: Option<Condition>,
}

impl Benchmark {
    /// Seconds-fast profile for tests and examples.
    pub fn quick() -> Self {
        Self {
            train_cfg: TrainConfig::fast(),
            eval_cfg: EvalConfig::fast(),
            seed: 7,
            gen_samples: None,
            ckpt_dir: None,
            condition: None,
        }
    }

    /// The profile the `reproduce` binary uses.
    pub fn standard() -> Self {
        Self {
            train_cfg: TrainConfig::standard(),
            eval_cfg: EvalConfig::fast(),
            seed: 7,
            gen_samples: None,
            ckpt_dir: None,
            condition: None,
        }
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables checkpoint emission: every subsequent run writes each
    /// trained method's snapshot into `dir`.
    pub fn with_ckpt_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.ckpt_dir = Some(dir.into());
        self
    }

    /// Conditions every generation on `cond` (see [`Benchmark::condition`]).
    pub fn with_condition(mut self, cond: Condition) -> Self {
        self.condition = Some(cond);
        self
    }

    /// The run's generation draw: conditioned when a condition is set
    /// and the method carries the capability, unconditional otherwise.
    fn draw(&self, method: &dyn TsgMethod, n: usize, rng: &mut SmallRng) -> Tensor3 {
        match (&self.condition, method.conditional()) {
            (Some(cond), Some(cs)) => cs.generate_conditioned(n, cond, rng),
            (Some(_), None) => {
                eprintln!(
                    "warning: {} has no conditional-sampling capability; generating unconditionally",
                    method.name()
                );
                method.generate(n, rng)
            }
            (None, _) => method.generate(n, rng),
        }
    }

    fn rng(&self, salt: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Trains `method` on the dataset's training windows, generates a
    /// matching sample, and scores the full suite against the training
    /// data (the paper's reference set).
    pub fn run_one(&self, method: &mut dyn TsgMethod, data: &PreprocessedDataset) -> MethodReport {
        self.run_tensor(method, &data.train)
    }

    /// Same as [`Benchmark::run_one`] but on a raw window tensor (used
    /// by the DA scenarios, where training and reference sets differ).
    pub fn run_tensor(&self, method: &mut dyn TsgMethod, train: &Tensor3) -> MethodReport {
        let mut rng = self.rng(method.id() as u64 + 1);
        let report = method.fit(train, &self.train_cfg, &mut rng);
        if let Some(dir) = &self.ckpt_dir {
            if let Err(e) = write_checkpoint(dir, method) {
                eprintln!(
                    "warning: failed to write {} checkpoint: {e}",
                    method.name()
                );
            }
        }
        let n = self.gen_samples.unwrap_or(train.samples());
        let generated = self.draw(method, n, &mut rng);
        let mut scores = suite::evaluate(train, &generated, &self.eval_cfg, &mut rng);
        scores.set(
            Measure::TrainTime,
            Score {
                mean: report.train_seconds,
                std: 0.0,
            },
        );
        MethodReport {
            method: method.name().to_string(),
            train: report,
            scores,
            generated,
        }
    }

    /// Trains on a DA scenario's training set and evaluates against
    /// the target ground truth (Definitions 4.1–4.3).
    pub fn run_da_scenario(
        &self,
        method_id: MethodId,
        data: &DaData,
        scenario: DaScenario,
    ) -> MethodReport {
        let train = data.training_set(scenario);
        let mut method = method_id.create(train.seq_len(), train.features());
        let mut rng = self.rng(method_id as u64 * 31 + scenario as u64 + 11);
        let report = method.fit(&train, &self.train_cfg, &mut rng);
        let n = self.gen_samples.unwrap_or(data.target_gt.samples());
        let generated = self.draw(method.as_ref(), n, &mut rng);
        let mut scores = suite::evaluate(&data.target_gt, &generated, &self.eval_cfg, &mut rng);
        scores.set(
            Measure::TrainTime,
            Score {
                mean: report.train_seconds,
                std: 0.0,
            },
        );
        MethodReport {
            method: method_id.name().to_string(),
            train: report,
            scores,
            generated,
        }
    }

    /// Runs the full Figure-5 grid: every method on every dataset.
    /// `max_r`/`max_l` bound the per-dataset scale.
    pub fn run_grid(
        &self,
        methods: &[MethodId],
        datasets: &[DatasetSpec],
        max_r: usize,
        max_l: usize,
    ) -> GridResult {
        // materialize every dataset once, then run the independent
        // (dataset, method) cells across the worker pool; each cell's
        // RNG is derived solely from (self.seed, method id), so the
        // schedule cannot change any score and the cell list comes
        // back in the same dataset-major order the sequential loop
        // produced
        let prepared: Vec<(&DatasetSpec, PreprocessedDataset)> = datasets
            .iter()
            .map(|spec| {
                let scaled = spec.scaled(max_r).with_max_len(max_l);
                (spec, scaled.materialize(self.seed))
            })
            .collect();
        let cells = if methods.is_empty() {
            Vec::new()
        } else {
            tsgb_par::parallel_map(prepared.len() * methods.len(), |idx| {
                let (spec, data) = &prepared[idx / methods.len()];
                let mid = methods[idx % methods.len()];
                let mut method = mid.create(data.train.seq_len(), data.train.features());
                // a method trains once per dataset, so grid checkpoints
                // go into per-dataset subdirectories — a stable layout
                // regardless of which cell finishes last, and each
                // subdirectory is directly servable via --ckpt-dir
                let cell_bench = self.ckpt_dir.as_ref().map(|dir| Benchmark {
                    ckpt_dir: Some(dir.join(dataset_slug(spec.name))),
                    ..self.clone()
                });
                let report = cell_bench
                    .as_ref()
                    .unwrap_or(self)
                    .run_one(method.as_mut(), data);
                GridCell {
                    method: mid,
                    dataset: spec.name.to_string(),
                    report,
                }
            })
        };
        GridResult {
            methods: methods.to_vec(),
            datasets: datasets.iter().map(|d| d.name.to_string()).collect(),
            cells,
            max_r,
            max_l,
        }
    }

    /// Runs the Figure-7 generalization test for one task.
    pub fn run_da_task(&self, task: &DaTask, data: &DaData, methods: &[MethodId]) -> Vec<DaCell> {
        // every (method, scenario) cell seeds its own RNG from
        // (self.seed, method id, scenario), so the cells run in
        // parallel without affecting any score
        let jobs: Vec<(MethodId, DaScenario)> = methods
            .iter()
            .flat_map(|&mid| DaScenario::ALL.iter().map(move |&s| (mid, s)))
            .collect();
        tsgb_par::parallel_map(jobs.len(), |i| {
            let (mid, scenario) = jobs[i];
            let report = self.run_da_scenario(mid, data, scenario);
            DaCell {
                task: task.clone(),
                method: mid,
                scenario,
                report,
            }
        })
    }
}

/// Output of one train/generate/evaluate run.
#[derive(Debug, Clone)]
pub struct MethodReport {
    /// Method display name.
    pub method: String,
    /// The training report (loss history, wall-clock).
    pub train: TrainReport,
    /// The evaluation-suite scores (training time included).
    pub scores: EvalResult,
    /// The generated windows (for visualization measures).
    pub generated: Tensor3,
}

/// One (method, dataset) cell of the Figure-5 grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Which method.
    pub method: MethodId,
    /// Dataset display name.
    pub dataset: String,
    /// The run's report.
    pub report: MethodReport,
}

/// The Figure-5 grid with the axes needed for ranking analysis.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Methods, in run order.
    pub methods: Vec<MethodId>,
    /// Dataset names, in run order.
    pub datasets: Vec<String>,
    /// All cells.
    pub cells: Vec<GridCell>,
    /// The `max_r` bound the grid was materialized with.
    pub max_r: usize,
    /// The `max_l` bound the grid was materialized with.
    pub max_l: usize,
}

impl GridResult {
    /// The score of one cell for a measure.
    pub fn score(&self, method: MethodId, dataset: &str, measure: Measure) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.method == method && c.dataset == dataset)
            .and_then(|c| c.report.scores.get(measure))
            .map(|s| s.mean)
    }

    /// The `scores[measure][dataset][method]` cube consumed by
    /// `tsgb_stats::ranking::figure1` and the Friedman analysis.
    pub fn score_cube(&self, measures: &[Measure]) -> Vec<Vec<Vec<f64>>> {
        measures
            .iter()
            .map(|&m| {
                self.datasets
                    .iter()
                    .map(|d| {
                        self.methods
                            .iter()
                            .map(|&mid| self.score(mid, d, m).unwrap_or(f64::INFINITY))
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// Flattens the cube to `scores[block][method]` blocks for the
    /// Friedman test (one block per measure × dataset pair).
    pub fn friedman_blocks(&self, measures: &[Measure]) -> Vec<Vec<f64>> {
        let cube = self.score_cube(measures);
        cube.into_iter().flatten().collect()
    }
}

/// One (task, method, scenario) cell of the Figure-7 test.
#[derive(Debug, Clone)]
pub struct DaCell {
    /// The adaptation task.
    pub task: DaTask,
    /// Which method.
    pub method: MethodId,
    /// Which DA regime.
    pub scenario: DaScenario,
    /// The run's report.
    pub report: MethodReport,
}

/// Directory-name form of a dataset name (`"Stock Long"` →
/// `"stock-long"`), used for the grid's per-dataset checkpoint
/// subdirectories.
fn dataset_slug(name: &str) -> String {
    name.to_lowercase().replace(' ', "-")
}

/// Writes one trained method's `TSGBCK02` checkpoint to
/// `dir/<method>.tsgbnn` (lower-case method name), atomically via a
/// unique temp file + rename so parallel grid cells never interleave
/// partial writes.
pub fn write_checkpoint(dir: &std::path::Path, method: &dyn TsgMethod) -> std::io::Result<PathBuf> {
    let bytes = method.save().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{} is not fitted", method.name()),
        )
    })?;
    std::fs::create_dir_all(dir)?;
    let name = method.name().to_lowercase();
    let path = dir.join(format!("{name}.tsgbnn"));
    let tmp = dir.join(format!(
        ".{name}.tsgbnn.tmp.{}.{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Derives a child RNG from an arbitrary seed and salt (shared by the
/// examples).
pub fn child_rng(seed: u64, salt: u64) -> SmallRng {
    let mut base = SmallRng::seed_from_u64(seed);
    let jump: u64 = base.gen::<u64>() ^ salt;
    SmallRng::seed_from_u64(jump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsgb_data::spec::DatasetId;

    #[test]
    fn run_one_produces_scores_and_time() {
        let data = DatasetSpec::get(DatasetId::Stock)
            .scaled(24)
            .with_max_len(8)
            .materialize(3);
        let mut bench = Benchmark::quick();
        bench.train_cfg.epochs = 4;
        bench.eval_cfg = EvalConfig::deterministic_only();
        let mut method = MethodId::TimeVae.create(data.train.seq_len(), data.train.features());
        let report = bench.run_one(method.as_mut(), &data);
        assert!(report.scores.get(Measure::Ed).is_some());
        assert!(report.scores.get(Measure::TrainTime).unwrap().mean >= 0.0);
        assert_eq!(report.generated.seq_len(), data.train.seq_len());
    }

    #[test]
    fn conditioned_runs_route_through_the_capability() {
        let data = DatasetSpec::get(DatasetId::Stock)
            .scaled(16)
            .with_max_len(8)
            .materialize(3);
        let mut bench = Benchmark::quick();
        bench.train_cfg.epochs = 3;
        bench.eval_cfg = EvalConfig::deterministic_only();

        // strength 0 must be bit-identical to the unconditional run
        let mut plain_m = MethodId::TimeVae.create(data.train.seq_len(), data.train.features());
        let plain = bench.run_one(plain_m.as_mut(), &data);
        let zero_bench = bench.clone().with_condition(Condition::Class {
            label: 1,
            strength: 0.0,
        });
        let mut zero_m = MethodId::TimeVae.create(data.train.seq_len(), data.train.features());
        let zero = zero_bench.run_one(zero_m.as_mut(), &data);
        assert_eq!(
            plain.generated.as_slice(),
            zero.generated.as_slice(),
            "strength 0 must reproduce the unconditional draw"
        );

        // a real condition shapes the draw
        let cond_bench = bench.clone().with_condition(Condition::Class {
            label: 1,
            strength: 2.0,
        });
        let mut cond_m = MethodId::TimeVae.create(data.train.seq_len(), data.train.features());
        let cond = cond_bench.run_one(cond_m.as_mut(), &data);
        assert_ne!(plain.generated.as_slice(), cond.generated.as_slice());

        // a method without the capability still completes (falls back)
        let mut ff = MethodId::FourierFlow.create(data.train.seq_len(), data.train.features());
        let report = cond_bench.run_one(ff.as_mut(), &data);
        assert!(report.scores.get(Measure::Ed).is_some());
    }

    #[test]
    fn run_one_emits_a_loadable_checkpoint() {
        let dir = std::env::temp_dir().join(format!("tsgb_ckpt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let data = DatasetSpec::get(DatasetId::Stock)
            .scaled(16)
            .with_max_len(8)
            .materialize(3);
        let mut bench = Benchmark::quick().with_ckpt_dir(&dir);
        bench.train_cfg.epochs = 3;
        bench.eval_cfg = EvalConfig::deterministic_only();
        let mut method = MethodId::TimeVae.create(data.train.seq_len(), data.train.features());
        bench.run_one(method.as_mut(), &data);
        let path = dir.join("timevae.tsgbnn");
        let bytes = std::fs::read(&path).expect("checkpoint written");
        let restored = tsgb_methods::load_method(&bytes).expect("checkpoint loads");
        let mut a = child_rng(9, 9);
        let mut b = child_rng(9, 9);
        assert_eq!(
            restored.generate(4, &mut a).as_slice(),
            method.generate(4, &mut b).as_slice(),
            "restored checkpoint must generate bit-identically"
        );
        // no temp files left behind
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_exposes_score_cube() {
        let mut bench = Benchmark::quick();
        bench.train_cfg.epochs = 3;
        bench.eval_cfg = EvalConfig::deterministic_only();
        let specs = vec![
            DatasetSpec::get(DatasetId::Stock),
            DatasetSpec::get(DatasetId::Dlg),
        ];
        let grid = bench.run_grid(&[MethodId::TimeVae, MethodId::FourierFlow], &specs, 16, 8);
        assert_eq!(grid.cells.len(), 4);
        let cube = grid.score_cube(&[Measure::Ed, Measure::Dtw]);
        assert_eq!(cube.len(), 2);
        assert_eq!(cube[0].len(), 2);
        assert_eq!(cube[0][0].len(), 2);
        assert!(cube[0][0][0].is_finite());
        let blocks = grid.friedman_blocks(&[Measure::Ed, Measure::Dtw]);
        assert_eq!(blocks.len(), 4);
    }
}
