//! Automatic hyper-parameter tuning — the paper's final future-work
//! item ("introducing functionalities that facilitate automatic
//! tuning, thereby streamlining the training process").
//!
//! A seeded random-search tuner over [`TrainConfig`] space: sample
//! configurations, run train → generate → evaluate, keep the best
//! score on a chosen objective measure. Random search is the honest
//! baseline tuner (Bergstra & Bengio, 2012) and, unlike the method
//! comparisons in the benchmark proper (§2.2 explicitly forgoes
//! per-method tuning for fairness), this module is an *opt-in* user
//! convenience.

use crate::runner::Benchmark;
use tsgb_rand::rngs::SmallRng;
use tsgb_rand::{Rng, SeedableRng};
use tsgb_data::pipeline::PreprocessedDataset;
use tsgb_eval::suite::Measure;
use tsgb_methods::common::{MethodId, TrainConfig};

/// The search space: inclusive ranges sampled log-uniformly (learning
/// rate) or uniformly (the rest).
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Epoch range.
    pub epochs: (usize, usize),
    /// Hidden-width range.
    pub hidden: (usize, usize),
    /// Latent-width range.
    pub latent: (usize, usize),
    /// Learning-rate range (log-uniform).
    pub lr: (f64, f64),
    /// Batch-size range.
    pub batch: (usize, usize),
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            epochs: (20, 120),
            hidden: (8, 24),
            latent: (4, 12),
            lr: (5e-4, 8e-3),
            batch: (16, 64),
        }
    }
}

impl SearchSpace {
    fn sample(&self, rng: &mut SmallRng) -> TrainConfig {
        let u = |lo: usize, hi: usize, rng: &mut SmallRng| {
            if hi > lo {
                rng.gen_range(lo..=hi)
            } else {
                lo
            }
        };
        let lr = {
            let (lo, hi) = self.lr;
            (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp()
        };
        TrainConfig {
            epochs: u(self.epochs.0, self.epochs.1, rng),
            hidden: u(self.hidden.0, self.hidden.1, rng),
            latent: u(self.latent.0, self.latent.1, rng),
            batch: u(self.batch.0, self.batch.1, rng),
            lr,
            fresh_tapes: false,
        }
    }
}

/// One tuning trial's record.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The sampled configuration.
    pub config: TrainConfig,
    /// The objective score (lower = better).
    pub score: f64,
    /// Wall-clock training seconds.
    pub train_seconds: f64,
}

/// Result of a tuning run: the best trial plus the full trace.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best (lowest-objective) trial.
    pub best: Trial,
    /// All trials in execution order.
    pub trials: Vec<Trial>,
}

/// Random-search tuner.
#[derive(Debug, Clone)]
pub struct Tuner {
    /// Number of configurations to try.
    pub budget: usize,
    /// The space to sample.
    pub space: SearchSpace,
    /// Objective measure (must be one the benchmark's `eval_cfg`
    /// computes; the deterministic measures are the cheap choices).
    pub objective: Measure,
    /// Master seed.
    pub seed: u64,
}

impl Tuner {
    /// A tuner with the default space optimizing the given measure.
    pub fn new(budget: usize, objective: Measure) -> Self {
        Self {
            budget,
            space: SearchSpace::default(),
            objective,
            seed: 17,
        }
    }

    /// Runs the search for one method on one dataset. The supplied
    /// `bench` fixes the evaluation protocol; its training config is
    /// overridden per trial.
    pub fn tune(
        &self,
        method: MethodId,
        data: &PreprocessedDataset,
        bench: &Benchmark,
    ) -> TuneResult {
        assert!(self.budget >= 1, "tuning budget must be positive");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut trials = Vec::with_capacity(self.budget);
        for _ in 0..self.budget {
            let config = self.space.sample(&mut rng);
            let mut trial_bench = bench.clone();
            trial_bench.train_cfg = config.clone();
            let mut m = method.create(data.train.seq_len(), data.train.features());
            let report = trial_bench.run_one(m.as_mut(), data);
            let score = report
                .scores
                .get(self.objective)
                .map(|s| s.mean)
                .unwrap_or(f64::INFINITY);
            trials.push(Trial {
                config,
                score,
                train_seconds: report.train.train_seconds,
            });
        }
        let best = trials
            .iter()
            .min_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"))
            .expect("at least one trial")
            .clone();
        TuneResult { best, trials }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsgb_data::spec::{DatasetId, DatasetSpec};
    use tsgb_eval::suite::EvalConfig;

    #[test]
    fn tuner_returns_best_of_trace() {
        let data = DatasetSpec::get(DatasetId::Stock)
            .scaled(20)
            .with_max_len(8)
            .materialize(5);
        let mut bench = Benchmark::quick();
        bench.eval_cfg = EvalConfig::deterministic_only();
        let tuner = Tuner {
            budget: 3,
            space: SearchSpace {
                epochs: (2, 6),
                ..SearchSpace::default()
            },
            objective: Measure::Ed,
            seed: 3,
        };
        let result = tuner.tune(MethodId::TimeVae, &data, &bench);
        assert_eq!(result.trials.len(), 3);
        let min = result
            .trials
            .iter()
            .map(|t| t.score)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.best.score, min);
        assert!(result.best.score.is_finite());
    }

    #[test]
    fn search_space_respects_bounds() {
        let space = SearchSpace::default();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            assert!((space.epochs.0..=space.epochs.1).contains(&c.epochs));
            assert!((space.hidden.0..=space.hidden.1).contains(&c.hidden));
            assert!((space.lr.0..=space.lr.1).contains(&c.lr));
        }
    }

    #[test]
    fn tuning_is_seed_deterministic() {
        let data = DatasetSpec::get(DatasetId::Dlg)
            .scaled(16)
            .with_max_len(6)
            .materialize(2);
        let mut bench = Benchmark::quick();
        bench.eval_cfg = EvalConfig::deterministic_only();
        let tuner = Tuner {
            budget: 2,
            space: SearchSpace {
                epochs: (2, 4),
                ..SearchSpace::default()
            },
            objective: Measure::Dtw,
            seed: 11,
        };
        let a = tuner.tune(MethodId::FourierFlow, &data, &bench);
        let b = tuner.tune(MethodId::FourierFlow, &data, &bench);
        assert_eq!(a.best.score, b.best.score);
    }
}
