#![warn(missing_docs)]

//! # TSGBench (Rust reproduction)
//!
//! A from-scratch Rust implementation of **TSGBench: Time Series
//! Generation Benchmark** (PVLDB 17(3), 2023): ten TSG methods, ten
//! dataset generators with the standardized preprocessing pipeline,
//! the twelve-measure evaluation suite, the Domain-Adaptation
//! generalization test, and the Friedman/Conover ranking analysis.
//!
//! This facade crate re-exports the member crates and provides the
//! high-level [`runner::Benchmark`] API used by the examples:
//!
//! ```
//! use tsgbench::prelude::*;
//!
//! // Load a (substituted) dataset at reduced scale, train one method,
//! // and evaluate the full measure suite.
//! let data = DatasetSpec::get(DatasetId::Stock).scaled(64).materialize(7);
//! let mut method = methods::timevae::TimeVae::new(data.train.seq_len(), data.train.features());
//! let report = Benchmark::quick().run_one(&mut method, &data);
//! assert!(report.scores.get(Measure::Ed).is_some());
//! ```

pub use tsgb_data as data;
pub use tsgb_eval as eval;
pub use tsgb_linalg as linalg;
pub use tsgb_methods as methods;
pub use tsgb_nn as nn;
pub use tsgb_signal as signal;
pub use tsgb_stats as stats;

pub mod advisor;
pub mod report;
pub mod runner;
pub mod tuner;

/// Convenient glob import for examples and downstream users.
pub mod prelude {
    pub use crate::data::{DatasetId, DatasetSpec, Pipeline, PreprocessedDataset};
    pub use crate::eval::{EvalConfig, EvalResult, Measure};
    pub use crate::linalg::{Matrix, Tensor3};
    pub use crate::methods::{self, MethodId, TrainConfig, TsgMethod};
    pub use crate::runner::{Benchmark, MethodReport};
}
