//! The paper's §6.5 "Recommendations", as an API.
//!
//! TSGBench closes with guidelines for selecting TSG methods and
//! evaluation measures per application. This module encodes those
//! guidelines so a downstream user can ask the library directly —
//! each [`Recommendation`] cites the §6.5 clause it implements, and
//! the unit tests pin the exact pairings the paper prescribes.

use tsgb_eval::suite::Measure;
use tsgb_methods::common::MethodId;

/// What the user wants the synthetic data for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseCase {
    /// No specific downstream task yet — first exploration of a new
    /// dataset (§6.5 method clause 1).
    GeneralPurpose,
    /// Autocorrelation-sensitive applications: predictive maintenance,
    /// stock-market analysis, forecasting (§6.5 method clause 2a).
    Autocorrelation,
    /// Complex multivariate relationships between channels
    /// (§6.5 method clause 2b).
    MultivariateRelations,
    /// Small datasets (§6.5 method clause 3a).
    SmallData,
    /// Heterogeneous data or generation for a new target domain
    /// (§6.5 method clause 3b).
    DomainTransfer,
    /// Downstream classification or forecasting models trained on the
    /// synthetic data (§6.5 measure clause 1).
    Classification,
    /// Emphasis on matching statistical attributes of the dataset
    /// (§6.5 measure clause 2).
    StatisticalFidelity,
    /// Time-series clustering projects (§6.5 measure clause 3).
    Clustering,
}

impl UseCase {
    /// Every case, for exhaustiveness tests and CLI listings.
    pub const ALL: [UseCase; 8] = [
        UseCase::GeneralPurpose,
        UseCase::Autocorrelation,
        UseCase::MultivariateRelations,
        UseCase::SmallData,
        UseCase::DomainTransfer,
        UseCase::Classification,
        UseCase::StatisticalFidelity,
        UseCase::Clustering,
    ];
}

/// A §6.5 recommendation: which methods to try first, which measures
/// to score with, and the paper's rationale.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Methods to try, in order of preference.
    pub methods: Vec<MethodId>,
    /// Measures to evaluate with, in order of relevance.
    pub measures: Vec<Measure>,
    /// The paper's reasoning, paraphrased.
    pub rationale: &'static str,
}

/// Returns the paper's §6.5 recommendation for a use case.
pub fn recommend(use_case: UseCase) -> Recommendation {
    use Measure::*;
    use MethodId::*;
    match use_case {
        UseCase::GeneralPurpose => Recommendation {
            methods: vec![TimeVae, Ls4],
            measures: vec![CFid, Mdd, Ed, Dtw],
            rationale: "Commence with VAE-based methods (TimeVAE, LS4): consistent leading \
                        performance and superior computational efficiency make them go-to \
                        choices for initial exploration (§6.5 selection 1).",
        },
        UseCase::Autocorrelation => Recommendation {
            methods: vec![FourierFlow],
            measures: vec![Acd, Ps],
            rationale: "In applications emphasizing autocorrelation or forecasting, the ACD \
                        measure becomes crucial; Fourier Flow is recognized for maintaining \
                        temporal dependencies (§6.5 selection 2).",
        },
        UseCase::MultivariateRelations => Recommendation {
            methods: vec![CosciGan],
            measures: vec![Mdd, Sd, Kd],
            rationale: "For capturing complex multivariate relationships, COSCI-GAN is the \
                        recommended choice (§6.5 selection 2).",
        },
        UseCase::SmallData => Recommendation {
            methods: vec![RtsGan, Ls4],
            measures: vec![Ed, Dtw, Mdd],
            rationale: "For small-sized datasets, RTSGAN and LS4, which excel in single DA, \
                        are strong choices (§6.5 selection 3).",
        },
        UseCase::DomainTransfer => Recommendation {
            methods: vec![TimeVae, CosciGan],
            measures: vec![Ed, Dtw, Mdd, TrainTime],
            rationale: "For heterogeneous datasets or generating for a new target domain, \
                        TimeVAE and COSCI-GAN stand out for their effectiveness in cross DA; \
                        training efficiency is pivotal for DA deployment (§6.5 selection 3, §4.3).",
        },
        UseCase::Classification => Recommendation {
            methods: vec![TimeVae, Ls4, CosciGan],
            measures: vec![CFid, Ds, Ps],
            rationale: "For classification/forecasting uses, model-based measures are \
                        advisable — but given the robustness issues with DS and PS, start \
                        with C-FID (§6.5 evaluation 1).",
        },
        UseCase::StatisticalFidelity => Recommendation {
            methods: vec![CosciGan, TimeVae],
            measures: vec![Mdd, Acd, Sd, Kd],
            rationale: "When the goal is the statistical attributes of the dataset, \
                        feature-based measures are the preferred option (§6.5 evaluation 2).",
        },
        UseCase::Clustering => Recommendation {
            methods: vec![TimeVae, Ls4],
            measures: vec![Ed, Dtw],
            rationale: "In projects focusing on time-series clustering, distance-based \
                        metrics assume elevated importance (§6.5 evaluation 3).",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_use_case_has_a_recommendation() {
        for uc in UseCase::ALL {
            let r = recommend(uc);
            assert!(!r.methods.is_empty(), "{uc:?}");
            assert!(!r.measures.is_empty(), "{uc:?}");
            assert!(!r.rationale.is_empty(), "{uc:?}");
        }
    }

    #[test]
    fn paper_pairings_are_pinned() {
        // §6.5's explicit pairings must not drift
        assert_eq!(recommend(UseCase::Autocorrelation).methods, vec![MethodId::FourierFlow]);
        assert_eq!(
            recommend(UseCase::MultivariateRelations).methods,
            vec![MethodId::CosciGan]
        );
        assert_eq!(
            recommend(UseCase::SmallData).methods,
            vec![MethodId::RtsGan, MethodId::Ls4]
        );
        assert_eq!(
            recommend(UseCase::DomainTransfer).methods,
            vec![MethodId::TimeVae, MethodId::CosciGan]
        );
        assert_eq!(
            recommend(UseCase::GeneralPurpose).methods,
            vec![MethodId::TimeVae, MethodId::Ls4]
        );
    }

    #[test]
    fn classification_starts_with_cfid_not_ds() {
        let r = recommend(UseCase::Classification);
        assert_eq!(r.measures[0], Measure::CFid, "the paper says start with C-FID");
    }

    #[test]
    fn clustering_uses_distance_measures_only() {
        let r = recommend(UseCase::Clustering);
        assert!(r
            .measures
            .iter()
            .all(|m| matches!(m, Measure::Ed | Measure::Dtw)));
    }
}
