//! Domain adaptation: the paper's §4.3 generalization test on one
//! factory-style task (Boiler 1 → Boiler 2), comparing the three DA
//! regimes — a miniature of Figure 7 and of Example 4.1 in the paper.
//!
//! ```text
//! cargo run --release --example domain_adaptation
//! ```

use tsgb_data::domain::{DaScale, DaScenario, DaTask};
use tsgbench::prelude::*;
use tsgbench::report::TextTable;

fn main() {
    // Boiler 1 is the source machine with plentiful history; Boiler 2
    // is newly installed with only a short recording.
    let task = DaTask::all()
        .into_iter()
        .find(|t| t.label() == "Boiler B1->B2")
        .expect("task registered");
    let scale = DaScale {
        source_windows: 96,
        his_windows: 16,
        gt_windows: 96,
        max_l: 24,
    };
    let data = task.materialize(&scale, 7);
    println!(
        "{}: source train {} windows, target history {} windows, ground truth {} windows",
        task.label(),
        data.source_train.samples(),
        data.target_his.samples(),
        data.target_gt.samples()
    );

    let mut bench = Benchmark::quick();
    bench.train_cfg.epochs = 40;
    bench.eval_cfg = EvalConfig::deterministic_only();

    // The paper's Figure-7 finding: RTSGAN/LS4 shine in single DA
    // (fast convergence from rich source data), TimeVAE/COSCI-GAN in
    // cross DA (they exploit the small target history).
    let methods = [MethodId::TimeVae, MethodId::RtsGan, MethodId::Ls4];
    let mut table = TextTable::new(&["Method", "Scenario", "ED", "DTW", "MDD", "Train (s)"]);
    for mid in methods {
        for scenario in DaScenario::ALL {
            let report = bench.run_da_scenario(mid, &data, scenario);
            let g = |m: Measure| {
                report
                    .scores
                    .get(m)
                    .map(|s| format!("{:.4}", s.mean))
                    .unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                mid.name().to_string(),
                scenario.label().to_string(),
                g(Measure::Ed),
                g(Measure::Dtw),
                g(Measure::Mdd),
                format!("{:.2}", report.train.train_seconds),
            ]);
        }
    }
    println!("\nall scores evaluate the generated series against the target ground truth:");
    print!("{}", table.render());
    println!(
        "\nreading guide: 'single' trains on the source machine only, 'cross' adds the\n\
         target history, 'reference' uses the target history alone (Definitions 4.1-4.3)."
    );
}
