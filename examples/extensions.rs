//! Extensions tour: the four additional Table-2 methods this
//! reproduction implements beyond the paper's benchmarked ten
//! (C-RNN-GAN, Sig-WGAN, COT-GAN, TSGM), the MMD extension measure,
//! and the random-search auto-tuner from the paper's future-work list.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use tsgb_eval::mmd;
use tsgbench::prelude::*;
use tsgbench::report::TextTable;
use tsgbench::tuner::{SearchSpace, Tuner};

fn main() {
    let data = DatasetSpec::get(DatasetId::Stock)
        .scaled(64)
        .with_max_len(16)
        .materialize(7);
    println!(
        "Stock (reduced): {} train windows of shape ({}, {})",
        data.train.samples(),
        data.train.seq_len(),
        data.train.features()
    );

    // 1. Run the four extension methods next to two of the paper's
    //    ten, scoring the deterministic suite plus MMD.
    let mut bench = Benchmark::quick();
    bench.train_cfg.epochs = 40;
    bench.eval_cfg = EvalConfig::deterministic_only();

    let roster: Vec<MethodId> = [MethodId::TimeVae, MethodId::Rgan]
        .into_iter()
        .chain(MethodId::EXTENDED)
        .collect();

    let mut table = TextTable::new(&["Method", "ED", "DTW", "MDD", "MMD^2", "Train (s)"]);
    for mid in roster {
        let mut m = mid.create(data.train.seq_len(), data.train.features());
        let report = bench.run_one(m.as_mut(), &data);
        let g = |msr: Measure| {
            report
                .scores
                .get(msr)
                .map(|s| format!("{:.4}", s.mean))
                .unwrap_or_else(|| "-".into())
        };
        let mmd2 = mmd::mmd2(&data.train, &report.generated);
        table.row(vec![
            mid.name().to_string(),
            g(Measure::Ed),
            g(Measure::Dtw),
            g(Measure::Mdd),
            format!("{mmd2:.4}"),
            format!("{:.2}", report.train.train_seconds),
        ]);
    }
    println!("\n== extension methods vs two benchmarked methods ==");
    print!("{}", table.render());

    // 2. Auto-tune TimeVAE on the DTW objective (paper future work:
    //    "automatic tuning").
    println!("\n== random-search tuning of TimeVAE (objective: DTW) ==");
    let tuner = Tuner {
        budget: 6,
        space: SearchSpace {
            epochs: (20, 80),
            ..SearchSpace::default()
        },
        objective: Measure::Dtw,
        seed: 23,
    };
    let result = tuner.tune(MethodId::TimeVae, &data, &bench);
    let mut ttable = TextTable::new(&["Trial", "epochs", "hidden", "latent", "lr", "DTW"]);
    for (i, t) in result.trials.iter().enumerate() {
        ttable.row(vec![
            (i + 1).to_string(),
            t.config.epochs.to_string(),
            t.config.hidden.to_string(),
            t.config.latent.to_string(),
            format!("{:.1e}", t.config.lr),
            format!("{:.3}", t.score),
        ]);
    }
    print!("{}", ttable.render());
    println!(
        "best: epochs={} hidden={} lr={:.1e} -> DTW {:.3}",
        result.best.config.epochs,
        result.best.config.hidden,
        result.best.config.lr,
        result.best.score
    );
}
