//! Quickstart: load a benchmark dataset, train one TSG method, and
//! evaluate the full measure suite.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tsgbench::prelude::*;

fn main() {
    // 1. Pick a dataset from the registry (Table 3) at reduced scale.
    //    `materialize` generates the substituted raw series and runs
    //    the standardized preprocessing pipeline of paper §4.1.
    let spec = DatasetSpec::get(DatasetId::Stock)
        .scaled(96)
        .with_max_len(24);
    let data = spec.materialize(7);
    println!(
        "dataset {} -> {} train / {} test windows of shape ({}, {})",
        data.name,
        data.train.samples(),
        data.test.samples(),
        data.train.seq_len(),
        data.train.features()
    );

    // 2. Train a method. TimeVAE is the paper's recommended starting
    //    point: consistently high-ranked and the fastest to train.
    let mut method = methods::timevae::TimeVae::new(data.train.seq_len(), data.train.features());
    let bench = Benchmark::quick();
    let report = bench.run_one(&mut method, &data);
    println!(
        "trained {} in {:.2}s (final loss {:.4})",
        report.method,
        report.train.train_seconds,
        report.train.final_loss()
    );

    // 3. Inspect the twelve-measure suite (§4.2). Lower is better for
    //    every measure.
    println!("\nmeasure            score");
    println!("------------------------");
    for (measure, score) in report.scores.iter() {
        println!(
            "{:<18} {}",
            measure.label(),
            tsgbench::report::fmt_score(score.mean, score.std)
        );
    }

    // 4. The generated windows are a (samples, l, N) tensor in [0, 1],
    //    ready for any downstream task.
    let g = &report.generated;
    println!(
        "\ngenerated tensor: {} windows, value range [{:.3}, {:.3}]",
        g.samples(),
        g.as_slice().iter().cloned().fold(f64::INFINITY, f64::min),
        g.as_slice()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    );
}
