//! Bring your own data: load a CSV series, run the §4.1 preprocessing
//! pipeline with ACF-based window selection, train a method, evaluate
//! — the complete downstream-user path, end to end.
//!
//! ```text
//! cargo run --release --example custom_data [path/to/series.csv]
//! ```
//!
//! Without an argument, the example writes a small demo CSV to a temp
//! directory first so it is runnable out of the box.

use std::path::PathBuf;
use tsgb_data::loader;
use tsgb_data::pipeline::{Pipeline, WindowLength};
use tsgbench::prelude::*;

fn demo_csv() -> PathBuf {
    let dir = std::env::temp_dir().join("tsgbench_custom_data");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("demo_series.csv");
    let mut body = String::from("load,temperature\n");
    for t in 0..400 {
        let tau = std::f64::consts::TAU;
        let load = 50.0 + 20.0 * (tau * t as f64 / 24.0).sin() + (t % 7) as f64;
        let temp = 18.0 + 5.0 * (tau * t as f64 / 24.0).cos();
        body.push_str(&format!("{load:.3},{temp:.3}\n"));
    }
    std::fs::write(&path, body).expect("write demo csv");
    path
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(demo_csv);
    println!("loading {}", path.display());
    let raw = match loader::load_csv(&path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("could not load CSV: {e}");
            std::process::exit(1);
        }
    };
    println!("raw series: {} steps x {} channels", raw.rows(), raw.cols());

    // The full §4.1 pipeline with automatic window-length selection:
    // the ACF picks the smallest candidate window that covers the
    // dominant period of every channel.
    let pipeline = Pipeline {
        window: WindowLength::Auto {
            candidates: vec![14, 24, 48, 96],
            default: 24,
        },
        ..Pipeline::default()
    };
    let data = pipeline.run(&raw, "custom", 7);
    println!(
        "pipeline selected l = {}; {} train / {} test windows",
        data.l,
        data.train.samples(),
        data.test.samples()
    );

    // Train and evaluate.
    let mut bench = Benchmark::quick();
    bench.train_cfg.epochs = 60;
    let mut method = MethodId::TimeVae.create(data.train.seq_len(), data.train.features());
    let report = bench.run_one(method.as_mut(), &data);
    println!("\n{} scores on your data (lower = better):", report.method);
    for (measure, score) in report.scores.iter() {
        println!(
            "  {:<14} {}",
            measure.label(),
            tsgbench::report::fmt_score(score.mean, score.std)
        );
    }

    // Denormalize a generated window back to the raw units.
    let mut generated = report.generated.clone();
    data.norm.denormalize(&mut generated);
    let first = generated.sample(0);
    println!("\nfirst generated window, back in raw units (first 5 steps):");
    for t in 0..first.rows().min(5) {
        let cells: Vec<String> = first.row(t).iter().map(|v| format!("{v:8.2}")).collect();
        println!("  t={t}: {}", cells.join(" "));
    }
}
