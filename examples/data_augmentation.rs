//! Data augmentation — the paper's opening motivation for TSG: when a
//! downstream model is data-starved, synthetic windows can stand in
//! for real ones. This example demonstrates the "Train on Synthetic,
//! Test on Real" (TSTR) scheme directly: a forecaster trained purely
//! on TimeVAE output is evaluated on held-out real windows and
//! compared against one trained on the small real set.
//!
//! ```text
//! cargo run --release --example data_augmentation
//! ```

use tsgb_rand::SeedableRng;
use tsgb_eval::model_based::{predictive_score, PostHocConfig, PsVariant};
use tsgbench::prelude::*;

fn main() {
    // A periodic appliance-load dataset, deliberately small.
    let spec = DatasetSpec::get(DatasetId::Energy)
        .scaled(80)
        .with_max_len(24);
    let data = spec.materialize(7);
    println!(
        "Energy (reduced): {} train windows, {} held-out windows",
        data.train.samples(),
        data.test.samples()
    );

    // Train the generator on the training windows.
    let mut method = methods::timevae::TimeVae::new(data.train.seq_len(), data.train.features());
    let mut rng = tsgb_rand::rngs::SmallRng::seed_from_u64(7);
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 120;
    let report = method.fit(&data.train, &cfg, &mut rng);
    println!(
        "TimeVAE trained in {:.2}s (final ELBO {:.4})",
        report.train_seconds,
        report.loss_history.last().unwrap()
    );

    // Synthesize 4x the real training volume.
    let synthetic = method.generate(data.train.samples() * 4, &mut rng);
    println!("generated {} synthetic windows", synthetic.samples());

    // TSTR: the predictive score trains a GRU forecaster on a source
    // set and reports its MAE on the *real held-out* windows.
    let post_hoc = PostHocConfig {
        hidden: 12,
        epochs: 150,
    };
    let mae_synthetic = predictive_score(
        &data.test,
        &synthetic,
        PsVariant::NextStep,
        &post_hoc,
        &mut rng,
    );
    let mae_real = predictive_score(
        &data.test,
        &data.train,
        PsVariant::NextStep,
        &post_hoc,
        &mut rng,
    );
    println!("\nnext-step forecasting MAE on real held-out windows:");
    println!("  trained on real windows       : {mae_real:.4}");
    println!("  trained on synthetic windows  : {mae_synthetic:.4}");
    let gap = (mae_synthetic - mae_real) / mae_real.max(1e-9) * 100.0;
    println!(
        "\nTSTR gap: {gap:+.1}% — a small gap means the synthetic data preserves\n\
         the temporal structure the forecaster needs (the paper's usefulness axis)."
    );
}
