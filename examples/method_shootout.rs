//! Method shoot-out: run several TSG methods on one dataset, rank them
//! with the Friedman/Conover analysis of paper §6.4, and print a
//! critical-difference summary — a miniature of Figures 1 and 8.
//!
//! ```text
//! cargo run --release --example method_shootout
//! ```

use tsgb_stats::critdiff::critical_difference;
use tsgbench::prelude::*;
use tsgbench::report::TextTable;

fn main() {
    // The financial pair from Table 3 plus the bimodal traffic data —
    // three datasets make the rank analysis meaningful.
    let specs = [
        DatasetSpec::get(DatasetId::Stock),
        DatasetSpec::get(DatasetId::Dlg),
        DatasetSpec::get(DatasetId::Exchange),
    ];
    let methods = [
        MethodId::TimeVae,
        MethodId::FourierFlow,
        MethodId::Ls4,
        MethodId::RtsGan,
        MethodId::Rgan,
    ];

    let mut bench = Benchmark::quick();
    bench.train_cfg.epochs = 30;
    bench.eval_cfg = EvalConfig::deterministic_only();

    println!(
        "training {} methods x {} datasets (deterministic measures only)...",
        methods.len(),
        specs.len()
    );
    let grid = bench.run_grid(&methods, &specs, 48, 16);

    // Per-measure score tables
    let measures = [Measure::Mdd, Measure::Acd, Measure::Ed, Measure::Dtw];
    for m in measures {
        let mut t = TextTable::new(&["Method", "Stock", "DLG", "Exchange"]);
        for &mid in &grid.methods {
            let mut row = vec![mid.name().to_string()];
            for d in &grid.datasets {
                let v = grid.score(mid, d, m).unwrap_or(f64::NAN);
                row.push(format!("{v:.4}"));
            }
            t.row(row);
        }
        println!("\n== {} (lower is better) ==", m.label());
        print!("{}", t.render());
    }

    // Friedman + Conover critical-difference analysis over all
    // (measure, dataset) blocks.
    let blocks = grid.friedman_blocks(&measures);
    let names: Vec<String> = grid.methods.iter().map(|m| m.name().to_string()).collect();
    let cd = critical_difference(&names, &blocks, 0.05);
    println!("\n== critical-difference analysis (Figure-8 style) ==");
    print!("{}", cd.ascii());
    println!(
        "Friedman chi2 = {:.3} (p = {:.3e}), Iman-Davenport F = {:.3} (p = {:.3e})",
        cd.friedman.chi2, cd.friedman.p_chi2, cd.friedman.f_stat, cd.friedman.p_f
    );
}
