#![warn(missing_docs)]

//! `tsgb-evalcache`: the content-addressed cache behind incremental
//! evaluation.
//!
//! TSGBench's twelve-measure suite re-derives everything from scratch
//! on every run — pairwise-distance blocks, reference embeddings,
//! DTW-NN pool structures — even when the reference side has not
//! changed by a byte. This crate makes "unchanged input" cost a
//! digest lookup:
//!
//! * [`encoding`] — canonical, bit-exact window-set encodings through
//!   the `tsgb-wire` JSON codec, digested with the shared
//!   FNV-1a/splitmix64 hash ([`tsgb_wire::digest`]).
//! * [`store`] — the [`EvalCache`]: typed in-memory LRU keyed on
//!   `(kind, reference digest, generated digest, parameter hash)`,
//!   with reference-only entries (`b = 0`) shared across every
//!   generated-set comparison.
//! * [`disk`] — an optional on-disk tier (atomic tmp+rename writes,
//!   checksummed reads, corrupt entries skipped with reasons) so warm
//!   state survives the process.
//!
//! The consuming layer is `tsgb-eval`: every producer a key maps to is
//! a deterministic pure function of the digested inputs, so cached
//! and recomputed values are bit-identical — the property the golden
//! suite re-run under `TSGB_EVAL_CACHE=on` pins.
//!
//! # Configuration
//!
//! | env variable          | default | meaning                                  |
//! |-----------------------|---------|------------------------------------------|
//! | `TSGB_EVAL_CACHE`     | off     | `on`/`1`/`true` enables the global cache |
//! | `TSGB_EVAL_CACHE_DIR` | unset   | directory for the on-disk tier           |
//!
//! Observability (`TSGB_OBS=1`): `evalcache.hits`, `evalcache.misses`,
//! `evalcache.evictions`, `evalcache.disk_hits`,
//! `evalcache.disk_writes`, `evalcache.disk_skipped` counters and an
//! `evalcache.bytes` gauge.

pub mod disk;
pub mod encoding;
pub mod store;

pub use disk::{DiskSkip, DiskTier, DISK_EXT};
pub use encoding::{
    decode_tensor, digest_matrix, digest_tensor, digest_tensor_unordered, digest_window,
    encode_tensor, tensor_to_json,
};
pub use store::{CacheKey, CacheStats, Codable, EvalCache};
// Re-exported so consumers hash parameter blocks with the same
// function the keys use, without a direct tsgb-wire dependency.
pub use tsgb_wire::digest::{fnv1a64, Fnv64};

use std::sync::OnceLock;

/// Whether the env-gated global cache is enabled (`TSGB_EVAL_CACHE`
/// set to `on`, `1`, or `true`; default off). Read per call — tests
/// and the verify matrix flip it per process.
pub fn enabled() -> bool {
    std::env::var("TSGB_EVAL_CACHE")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "on" || v == "1" || v == "true"
        })
        .unwrap_or(false)
}

/// The process-global cache, constructed on first use: disk tier at
/// `TSGB_EVAL_CACHE_DIR` when set (falling back to memory-only if the
/// directory cannot be created), memory-only otherwise.
pub fn global() -> &'static EvalCache {
    static GLOBAL: OnceLock<EvalCache> = OnceLock::new();
    GLOBAL.get_or_init(|| match std::env::var("TSGB_EVAL_CACHE_DIR") {
        Ok(dir) if !dir.trim().is_empty() => {
            EvalCache::with_disk(std::path::Path::new(dir.trim()))
                .unwrap_or_else(|_| EvalCache::in_memory())
        }
        _ => EvalCache::in_memory(),
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn disabled_by_default_in_a_clean_env() {
        // the test runner does not set TSGB_EVAL_CACHE for unit tests
        if std::env::var("TSGB_EVAL_CACHE").is_err() {
            assert!(!super::enabled());
        }
    }
}
