//! The content-addressed store: an in-memory LRU of typed entries in
//! front of an optional on-disk tier.
//!
//! Keys are [`CacheKey`] — a static `kind` tag plus three 64-bit
//! digests (`a` the reference side, `b` the generated side, `p` the
//! parameter hash). The split matters operationally: entries whose
//! value depends only on the reference set use `b = 0`, so one warm
//! reference block serves *every* generated-set comparison.
//!
//! Correctness contract: a cached value must be **bit-identical** to
//! recomputing it — every producer in `tsgb-eval` is a deterministic
//! pure function of the digested inputs, so hit-vs-miss can never
//! change a score (pinned by the golden-suite verify leg running with
//! `TSGB_EVAL_CACHE=on`). The cache therefore never needs
//! invalidation: a changed input is a different key.
//!
//! Concurrency: lookups take one mutex; builds run outside it, so two
//! threads racing on a cold key may both build — they insert equal
//! values and one wins. That trade keeps the suite's parallel jobs
//! from serializing on the cache.

use std::any::Any;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::disk::{DiskSkip, DiskTier};

/// A content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// What kind of intermediate this is (`"pairwise.xx"`,
    /// `"suite.MDD"`, ...). Static so keys are cheap to copy.
    pub kind: &'static str,
    /// Digest of the reference (real) side.
    pub a: u64,
    /// Digest of the generated side; `0` for reference-only entries.
    pub b: u64,
    /// Hash of every parameter that affects the value (config, seed,
    /// band, ...).
    pub p: u64,
}

impl CacheKey {
    /// A key from its four parts.
    pub fn new(kind: &'static str, a: u64, b: u64, p: u64) -> Self {
        Self { kind, a, b, p }
    }

    /// The disk-tier file stem: kind with path-hostile characters
    /// mapped away, plus the three digests in fixed-width hex.
    pub fn file_stem(&self) -> String {
        let kind: String = self
            .kind
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("{kind}-{:016x}-{:016x}-{:016x}", self.a, self.b, self.p)
    }
}

/// Values that can cross the process boundary through the disk tier.
pub trait Codable: Send + Sync + Sized + 'static {
    /// Serializes the value. The encoding must be self-contained —
    /// [`Codable::decode_bytes`] gets exactly these bytes back.
    fn encode_bytes(&self) -> Vec<u8>;
    /// Deserializes, returning `None` on any malformed input (the
    /// store treats `None` as a corrupt entry and rebuilds).
    fn decode_bytes(bytes: &[u8]) -> Option<Self>;
    /// Approximate in-memory footprint, for LRU accounting.
    fn approx_bytes(&self) -> usize;
}

impl Codable for f64 {
    fn encode_bytes(&self) -> Vec<u8> {
        self.to_bits().to_le_bytes().to_vec()
    }
    fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(f64::from_bits(u64::from_le_bytes(arr)))
    }
    fn approx_bytes(&self) -> usize {
        8
    }
}

struct Entry {
    val: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    bytes: usize,
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// In-memory lookup hits.
    pub hits: u64,
    /// Lookups that had to build (or fall through to disk).
    pub misses: u64,
    /// Misses satisfied by the disk tier without rebuilding.
    pub disk_hits: u64,
    /// Entries evicted by the LRU.
    pub evictions: u64,
    /// Current in-memory footprint.
    pub bytes: u64,
}

/// The content-addressed eval cache. See the module docs for the
/// keying and bit-identity contract.
pub struct EvalCache {
    inner: Mutex<Inner>,
    disk: Option<DiskTier>,
    cap_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    evictions: AtomicU64,
}

/// Default in-memory capacity: generous for the benchmark's window
/// sets (a pooled 2000×2000 distance block is 32 MB) without letting a
/// long-running monitor grow unbounded.
pub const DEFAULT_CAP_BYTES: usize = 256 * 1024 * 1024;

impl Default for EvalCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl EvalCache {
    /// A memory-only cache with the default capacity.
    pub fn in_memory() -> Self {
        Self::with_capacity(DEFAULT_CAP_BYTES)
    }

    /// A memory-only cache with an explicit LRU byte capacity.
    pub fn with_capacity(cap_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            disk: None,
            cap_bytes: cap_bytes.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Attaches an on-disk tier rooted at `dir` (created if missing).
    /// Codable entries written by other processes become warm starts;
    /// corrupt files are skipped with a recorded reason, never fatal.
    pub fn with_disk(dir: &Path) -> std::io::Result<Self> {
        let mut c = Self::in_memory();
        c.disk = Some(DiskTier::new(dir)?);
        Ok(c)
    }

    /// Whether a disk tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Disk entries skipped as corrupt since construction, with
    /// reasons — the checkpoint-registry pattern: report, don't die.
    pub fn disk_skips(&self) -> Vec<DiskSkip> {
        self.disk.as_ref().map(DiskTier::skips).unwrap_or_default()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.inner.lock().expect("evalcache poisoned").bytes as u64,
        }
    }

    /// Looks up `key`, building (and caching) the value on a miss.
    /// Memory tier only — for values that are cheap to rebuild across
    /// processes or have no stable byte encoding (fitted models, pool
    /// structures). `size_of` feeds the LRU accounting.
    pub fn get_or_insert_with<T, S, F>(&self, key: CacheKey, size_of: S, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        S: FnOnce(&T) -> usize,
        F: FnOnce() -> T,
    {
        if let Some(v) = self.lookup::<T>(&key) {
            return v;
        }
        self.record_miss(&key);
        let val = Arc::new(build());
        let bytes = size_of(&val);
        self.insert(key, val.clone(), bytes);
        val
    }

    /// Like [`EvalCache::get_or_insert_with`], but for [`Codable`]
    /// values: misses fall through to the disk tier before building,
    /// and built values are spilled back to disk.
    pub fn get_or_insert_codable<T, F>(&self, key: CacheKey, build: F) -> Arc<T>
    where
        T: Codable,
        F: FnOnce() -> T,
    {
        if let Some(v) = self.lookup::<T>(&key) {
            return v;
        }
        self.record_miss(&key);
        if let Some(disk) = &self.disk {
            if let Some(bytes) = disk.load(&key) {
                if let Some(val) = T::decode_bytes(&bytes) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    tsgb_obs::counter_add("evalcache.disk_hits", 1);
                    let val = Arc::new(val);
                    let b = val.approx_bytes();
                    self.insert(key, val.clone(), b);
                    return val;
                }
                disk.record_skip(&key, "payload decoded to no value");
            }
        }
        let val = Arc::new(build());
        if let Some(disk) = &self.disk {
            disk.store(&key, &val.encode_bytes());
        }
        let b = val.approx_bytes();
        self.insert(key, val.clone(), b);
        val
    }

    fn lookup<T: Send + Sync + 'static>(&self, key: &CacheKey) -> Option<Arc<T>> {
        let mut inner = self.inner.lock().expect("evalcache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(key) {
            e.last_used = tick;
            if let Ok(v) = e.val.clone().downcast::<T>() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                tsgb_obs::counter_add("evalcache.hits", 1);
                return Some(v);
            }
        }
        None
    }

    fn record_miss(&self, _key: &CacheKey) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        tsgb_obs::counter_add("evalcache.misses", 1);
    }

    fn insert(&self, key: CacheKey, val: Arc<dyn Any + Send + Sync>, bytes: usize) {
        let mut inner = self.inner.lock().expect("evalcache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                val,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        // LRU eviction down to capacity; never evict the entry just
        // inserted (the caller holds an Arc to it anyway).
        while inner.bytes > self.cap_bytes && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(e) = inner.map.remove(&k) {
                        inner.bytes -= e.bytes;
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        tsgb_obs::counter_add("evalcache.evictions", 1);
                    }
                }
                None => break,
            }
        }
        tsgb_obs::gauge_set("evalcache.bytes", inner.bytes as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_stem_is_path_safe_and_unique_per_key() {
        let a = CacheKey::new("pairwise.xx", 1, 2, 3);
        let b = CacheKey::new("pairwise.xx", 1, 2, 4);
        assert_ne!(a.file_stem(), b.file_stem());
        assert!(a.file_stem().chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
    }

    #[test]
    fn f64_codable_roundtrips_bits() {
        for v in [0.0f64, -0.0, 1.5, -1e300, f64::MIN_POSITIVE, 0.1] {
            let back = f64::decode_bytes(&v.encode_bytes()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        assert!(f64::decode_bytes(&[1, 2, 3]).is_none());
    }
}
