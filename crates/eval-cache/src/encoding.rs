//! Canonical, bit-exact window-set encodings and their digests.
//!
//! The cache is *content*-addressed: two window sets share a cache
//! entry exactly when their canonical encodings are byte-identical.
//! The encoding rides the `tsgb-wire` JSON codec, whose `f64` output
//! is shortest-roundtrip — every value parses back bit-identically —
//! so the encoding is both the digest input and a lossless
//! serialization (the on-disk tier stores the same bytes).
//!
//! Two digest flavors:
//!
//! * [`digest_tensor`] — positional: hashes the shape and the flat
//!   `(sample, time, feature)` value stream. Any reordering changes
//!   it. This is the safe default key for the suite, whose
//!   index-paired measures (ED, DTW) are order-sensitive.
//! * [`digest_tensor_unordered`] — hashes each window independently
//!   and folds the per-window digests with commutative reductions, so
//!   it is invariant to sample order. Use it only where the consuming
//!   measure treats windows as an i.i.d. bag (histograms, pooled
//!   moments).
//!
//! NaN payloads are outside the contract (NaN is not a JSON value and
//! every benchmark pipeline normalizes to finite `[0, 1]` data); the
//! helpers assert finiteness in debug builds.

use tsgb_linalg::{Matrix, Tensor3};
use tsgb_wire::digest::Fnv64;
use tsgb_wire::Json;

/// The canonical JSON form of a tensor: shape fields plus the flat
/// value stream in `(sample, time, feature)` order.
pub fn tensor_to_json(t: &Tensor3) -> Json {
    Json::Obj(vec![
        ("samples".into(), Json::Num(t.samples() as f64)),
        ("seq_len".into(), Json::Num(t.seq_len() as f64)),
        ("features".into(), Json::Num(t.features() as f64)),
        (
            "data".into(),
            Json::Arr(t.as_slice().iter().map(|&v| Json::Num(v)).collect()),
        ),
    ])
}

/// The canonical encoding: [`tensor_to_json`] through the wire codec.
pub fn encode_tensor(t: &Tensor3) -> String {
    tensor_to_json(t).encode()
}

/// Parses a canonical encoding back into a tensor. Every `f64` is
/// bit-identical to the encoded one (the codec's shortest-roundtrip
/// guarantee); shape or syntax problems come back as errors.
pub fn decode_tensor(text: &str) -> Result<Tensor3, String> {
    let v = Json::parse(text)?;
    let dim = |k: &str| -> Result<usize, String> {
        v.get(k)
            .and_then(Json::as_u64)
            .map(|x| x as usize)
            .ok_or_else(|| format!("missing or non-integer {k:?}"))
    };
    let (r, l, n) = (dim("samples")?, dim("seq_len")?, dim("features")?);
    let data = match v.get("data") {
        Some(Json::Arr(vals)) => vals
            .iter()
            .map(|x| x.as_f64().ok_or_else(|| "non-numeric data value".to_string()))
            .collect::<Result<Vec<f64>, String>>()?,
        _ => return Err("missing data array".into()),
    };
    Tensor3::from_vec(r, l, n, data).map_err(|e| format!("shape mismatch: {e:?}"))
}

/// Streams a float's raw bits into the hasher. Hashing bits rather
/// than decimal strings keeps the digest exactly as discriminating as
/// the canonical encoding (shortest-roundtrip text and bit pattern are
/// in bijection for non-NaN values) at a fraction of the cost.
fn absorb_f64(h: &mut Fnv64, v: f64) {
    debug_assert!(!v.is_nan(), "digests are defined on non-NaN data only");
    h.update_u64(v.to_bits());
}

/// Positional digest of a tensor: shape plus every value in
/// `(sample, time, feature)` order.
pub fn digest_tensor(t: &Tensor3) -> u64 {
    let mut h = Fnv64::new();
    h.update(b"tsgb.tensor3");
    h.update_u64(t.samples() as u64);
    h.update_u64(t.seq_len() as u64);
    h.update_u64(t.features() as u64);
    for &v in t.as_slice() {
        absorb_f64(&mut h, v);
    }
    h.finish()
}

/// Digest of one window: the `(seq_len, features)` shape plus its
/// values in `(time, feature)` order.
pub fn digest_window(rows: usize, cols: usize, values: &[f64]) -> u64 {
    assert_eq!(values.len(), rows * cols, "window shape mismatch");
    let mut h = Fnv64::new();
    h.update(b"tsgb.window");
    h.update_u64(rows as u64);
    h.update_u64(cols as u64);
    for &v in values {
        absorb_f64(&mut h, v);
    }
    h.finish()
}

/// Order-invariant digest: per-window digests folded with commutative
/// reductions (wrapping sum, xor, count), then re-hashed. Permuting
/// the windows of a set leaves it unchanged; changing any single bit
/// of any value changes the underlying window digest and therefore
/// (with overwhelming probability) the fold.
pub fn digest_tensor_unordered(t: &Tensor3) -> u64 {
    let (l, n) = (t.seq_len(), t.features());
    let mut sum = 0u64;
    let mut xor = 0u64;
    for s in 0..t.samples() {
        let d = digest_window(l, n, t.sample_slice(s));
        sum = sum.wrapping_add(d);
        xor ^= d;
    }
    let mut h = Fnv64::new();
    h.update(b"tsgb.tensor3.bag");
    h.update_u64(l as u64);
    h.update_u64(n as u64);
    h.update_u64(t.samples() as u64);
    h.update_u64(sum);
    h.update_u64(xor);
    h.finish()
}

/// Positional digest of a matrix (row-set), shape plus values in
/// row-major order — the key for cached pairwise-distance blocks.
pub fn digest_matrix(m: &Matrix) -> u64 {
    let mut h = Fnv64::new();
    h.update(b"tsgb.matrix");
    h.update_u64(m.rows() as u64);
    h.update_u64(m.cols() as u64);
    for &v in m.as_slice() {
        absorb_f64(&mut h, v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tensor3 {
        Tensor3::from_fn(3, 4, 2, |s, t, f| {
            0.5 + 0.4 * ((s * 31 + t * 7 + f) as f64 * 0.37).sin()
        })
    }

    #[test]
    fn encode_decode_is_bit_exact() {
        let t = small();
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn digest_separates_shape_from_data() {
        // same flat values, different shapes, different digests
        let flat: Vec<f64> = (0..12).map(|i| i as f64 / 12.0).collect();
        let a = Tensor3::from_vec(3, 2, 2, flat.clone()).unwrap();
        let b = Tensor3::from_vec(2, 3, 2, flat).unwrap();
        assert_ne!(digest_tensor(&a), digest_tensor(&b));
        assert_ne!(digest_tensor_unordered(&a), digest_tensor_unordered(&b));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode_tensor("{").is_err());
        assert!(decode_tensor("{\"samples\":1}").is_err());
        assert!(decode_tensor("{\"samples\":1,\"seq_len\":2,\"features\":2,\"data\":[1,2]}").is_err());
    }
}
