//! The optional on-disk cache tier.
//!
//! One file per entry under the configured directory, named by the
//! key's [`file_stem`](crate::CacheKey::file_stem) with a `.tsgbec`
//! extension. Writes are atomic (unique temp file + `rename`, the
//! checkpoint writer's idiom), so a crashed or concurrent process can
//! never leave a half-written entry visible. Reads validate a magic
//! header, an embedded key echo, a length, and an FNV checksum; any
//! mismatch skips the entry with a recorded reason — the
//! checkpoint-registry pattern: one corrupt file must not take down
//! the cache, it just costs one rebuild.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tsgb_wire::digest::fnv1a64;

use crate::store::CacheKey;

/// File format magic + version.
const MAGIC: &[u8; 8] = b"TSGBEC01";

/// Disk entry file extension.
pub const DISK_EXT: &str = "tsgbec";

/// One disk entry skipped as corrupt, with the reason.
#[derive(Debug, Clone)]
pub struct DiskSkip {
    /// File name inside the cache directory.
    pub file: String,
    /// Why it was skipped.
    pub reason: String,
}

/// The on-disk tier: a directory of checksummed entry files.
pub struct DiskTier {
    dir: PathBuf,
    skips: Mutex<Vec<DiskSkip>>,
}

impl DiskTier {
    /// Opens (creating if needed) the tier rooted at `dir`.
    pub fn new(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            skips: Mutex::new(Vec::new()),
        })
    }

    fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.{DISK_EXT}", key.file_stem()))
    }

    /// Records a skipped entry (also counted in
    /// `evalcache.disk_skipped`).
    pub fn record_skip(&self, key: &CacheKey, reason: &str) {
        tsgb_obs::counter_add("evalcache.disk_skipped", 1);
        self.skips.lock().expect("skips poisoned").push(DiskSkip {
            file: format!("{}.{DISK_EXT}", key.file_stem()),
            reason: reason.to_string(),
        });
    }

    /// Entries skipped so far.
    pub fn skips(&self) -> Vec<DiskSkip> {
        self.skips.lock().expect("skips poisoned").clone()
    }

    /// Loads the payload for `key`, or `None` if absent or corrupt
    /// (corruption is recorded, never fatal).
    pub fn load(&self, key: &CacheKey) -> Option<Vec<u8>> {
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.record_skip(key, &format!("read failed: {e}"));
                return None;
            }
        };
        match Self::parse(key, &bytes) {
            Ok(payload) => Some(payload.to_vec()),
            Err(reason) => {
                self.record_skip(key, &reason);
                None
            }
        }
    }

    fn parse<'a>(key: &CacheKey, bytes: &'a [u8]) -> Result<&'a [u8], String> {
        let header = 8 + 8 + 8 + 8 + 8; // magic, a, b, p, payload len
        if bytes.len() < header + 8 {
            return Err(format!("truncated header ({} bytes)", bytes.len()));
        }
        if &bytes[..8] != MAGIC {
            return Err("bad magic".into());
        }
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        if (u64_at(8), u64_at(16), u64_at(24)) != (key.a, key.b, key.p) {
            return Err("key echo mismatch".into());
        }
        let len = u64_at(32) as usize;
        if bytes.len() != header + len + 8 {
            return Err(format!(
                "length mismatch (declared {len}, file {})",
                bytes.len()
            ));
        }
        let payload = &bytes[header..header + len];
        let checksum = u64_at(header + len);
        if fnv1a64(payload) != checksum {
            return Err("checksum mismatch".into());
        }
        Ok(payload)
    }

    /// Writes the payload for `key` atomically. Failures are recorded
    /// and swallowed — the disk tier is an accelerator, not a
    /// dependency.
    pub fn store(&self, key: &CacheKey, payload: &[u8]) {
        let mut bytes = Vec::with_capacity(48 + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&key.a.to_le_bytes());
        bytes.extend_from_slice(&key.b.to_le_bytes());
        bytes.extend_from_slice(&key.p.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        // unique temp name per writer, then atomic rename
        let tmp = self.dir.join(format!(
            ".{}.tmp.{}.{:?}",
            key.file_stem(),
            std::process::id(),
            std::thread::current().id()
        ));
        let outcome = std::fs::write(&tmp, &bytes)
            .and_then(|()| std::fs::rename(&tmp, self.path_for(key)));
        if let Err(e) = outcome {
            let _ = std::fs::remove_file(&tmp);
            self.record_skip(key, &format!("write failed: {e}"));
        } else {
            tsgb_obs::counter_add("evalcache.disk_writes", 1);
        }
    }
}
