//! Store behavior: hit/miss accounting, LRU eviction, the disk tier's
//! warm starts and its corrupt-entry tolerance.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use tsgb_evalcache::{CacheKey, EvalCache};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tsgb_ec_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn memory_hits_return_the_same_arc_and_count() {
    let c = EvalCache::in_memory();
    let key = CacheKey::new("test.v", 1, 2, 3);
    let builds = AtomicUsize::new(0);
    let a = c.get_or_insert_with(key, |v: &Vec<f64>| v.len() * 8, || {
        builds.fetch_add(1, Ordering::SeqCst);
        vec![1.0, 2.0]
    });
    let b = c.get_or_insert_with(key, |v: &Vec<f64>| v.len() * 8, || {
        builds.fetch_add(1, Ordering::SeqCst);
        vec![9.0]
    });
    assert_eq!(builds.load(Ordering::SeqCst), 1, "second lookup must hit");
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    let s = c.stats();
    assert_eq!((s.hits, s.misses), (1, 1));
    assert_eq!(s.bytes, 16);
}

#[test]
fn lru_evicts_the_coldest_entry() {
    // capacity for two 8-byte floats; inserting a third evicts the
    // least recently used
    let c = EvalCache::with_capacity(16);
    let k1 = CacheKey::new("test.f", 1, 0, 0);
    let k2 = CacheKey::new("test.f", 2, 0, 0);
    let k3 = CacheKey::new("test.f", 3, 0, 0);
    c.get_or_insert_codable(k1, || 1.0f64);
    c.get_or_insert_codable(k2, || 2.0f64);
    // touch k1 so k2 becomes the coldest
    c.get_or_insert_codable(k1, || -> f64 { unreachable!("k1 must be warm") });
    c.get_or_insert_codable(k3, || 3.0f64);
    assert_eq!(c.stats().evictions, 1);
    // k2 was evicted: looking it up rebuilds
    let rebuilt = AtomicUsize::new(0);
    c.get_or_insert_codable(k2, || {
        rebuilt.fetch_add(1, Ordering::SeqCst);
        2.0f64
    });
    assert_eq!(rebuilt.load(Ordering::SeqCst), 1);
    // re-inserting k2 evicted the then-coldest entry (k1); the most
    // recently used key (k2 itself) must be resident
    c.get_or_insert_codable(k2, || -> f64 { unreachable!("k2 evicted right after insert") });
    assert_eq!(c.stats().evictions, 2);
}

#[test]
fn disk_tier_warms_a_fresh_cache() {
    let dir = tmpdir("warm");
    let key = CacheKey::new("test.xx", 7, 0, 9);
    {
        let c = EvalCache::with_disk(&dir).unwrap();
        c.get_or_insert_codable(key, || 42.5f64);
        assert_eq!(c.stats().disk_hits, 0);
    }
    // a new cache instance (fresh process, conceptually) loads from
    // disk without building
    let c2 = EvalCache::with_disk(&dir).unwrap();
    let v = c2.get_or_insert_codable(key, || -> f64 { unreachable!("must come from disk") });
    assert_eq!(v.to_bits(), 42.5f64.to_bits());
    assert_eq!(c2.stats().disk_hits, 1);
    assert!(c2.disk_skips().is_empty());
    // no temp litter
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(stray.is_empty(), "temp files left behind: {stray:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_disk_entries_are_skipped_with_reasons() {
    let dir = tmpdir("corrupt");
    let key = CacheKey::new("test.xx", 11, 0, 13);
    {
        let c = EvalCache::with_disk(&dir).unwrap();
        c.get_or_insert_codable(key, || 7.25f64);
    }
    // garble every entry file in the directory
    let mut garbled = 0;
    for e in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
        let p = e.path();
        if p.extension().and_then(|x| x.to_str()) == Some("tsgbec") {
            let mut bytes = std::fs::read(&p).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xff; // break the checksum
            std::fs::write(&p, &bytes).unwrap();
            garbled += 1;
        }
    }
    assert_eq!(garbled, 1);
    let c2 = EvalCache::with_disk(&dir).unwrap();
    let rebuilt = AtomicUsize::new(0);
    let v = c2.get_or_insert_codable(key, || {
        rebuilt.fetch_add(1, Ordering::SeqCst);
        7.25f64
    });
    assert_eq!(*v, 7.25);
    assert_eq!(rebuilt.load(Ordering::SeqCst), 1, "corrupt entry must rebuild");
    let skips = c2.disk_skips();
    assert_eq!(skips.len(), 1);
    assert!(
        skips[0].reason.contains("checksum"),
        "reason should name the failure: {:?}",
        skips[0]
    );
    // the rebuild rewrote the entry; a third instance warms cleanly
    let c3 = EvalCache::with_disk(&dir).unwrap();
    c3.get_or_insert_codable(key, || -> f64 { unreachable!("rewritten entry must load") });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_and_wrong_magic_files_are_skipped() {
    let dir = tmpdir("magic");
    let key = CacheKey::new("test.xx", 21, 0, 0);
    let c = EvalCache::with_disk(&dir).unwrap();
    // plant a wrong file where the entry would live
    let path = dir.join(format!("{}.tsgbec", key.file_stem()));
    std::fs::write(&path, b"not an entry").unwrap();
    let v = c.get_or_insert_codable(key, || 1.5f64);
    assert_eq!(*v, 1.5);
    let skips = c.disk_skips();
    assert_eq!(skips.len(), 1);
    assert!(
        skips[0].reason.contains("truncated") || skips[0].reason.contains("magic"),
        "{:?}",
        skips[0]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reference_only_keys_are_shared_across_generated_sides() {
    // the xx-block pattern: b = 0 keys hit regardless of which
    // generated set the caller is comparing against
    let c = EvalCache::in_memory();
    let ref_digest = 0xabcdu64;
    let key = CacheKey::new("pairwise.xx", ref_digest, 0, 0);
    let builds = AtomicUsize::new(0);
    for _generated in 0..5 {
        c.get_or_insert_with(key, |_: &Vec<f64>| 8, || {
            builds.fetch_add(1, Ordering::SeqCst);
            vec![1.0]
        });
    }
    assert_eq!(builds.load(Ordering::SeqCst), 1);
    assert_eq!(c.stats().hits, 4);
}
