//! Digest stability contract (the cache's whole correctness story):
//! canonical encodings round-trip bit-exactly through the `tsgb-wire`
//! codec, the unordered digest is invariant to window insertion order,
//! and flipping any single bit of any f64 changes both digests — over
//! a seeded corpus.

use tsgb_evalcache::{
    decode_tensor, digest_tensor, digest_tensor_unordered, encode_tensor,
};
use tsgb_linalg::rng::seeded;
use tsgb_linalg::Tensor3;
use tsgb_rand::Rng;

/// A corpus tensor mixing ordinary in-range values with adversarial
/// floats (negative zero, subnormals, huge magnitudes, long
/// fractions) — everything the shortest-roundtrip encoder must carry.
fn corpus_tensor(seed: u64, r: usize, l: usize, n: usize) -> Tensor3 {
    let mut rng = seeded(seed);
    let specials = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        1.0 / 3.0,
        f64::MIN_POSITIVE,
        f64::MIN_POSITIVE / 8.0, // subnormal
        1e300,
        -1e-300,
        f64::MAX,
    ];
    Tensor3::from_fn(r, l, n, |s, t, f| {
        if (s + t + f) % 5 == 0 {
            specials[rng.gen::<u64>() as usize % specials.len()]
        } else {
            rng.gen::<f64>() * 2.0 - 1.0
        }
    })
}

#[test]
fn canonical_encoding_roundtrips_bit_exactly() {
    for seed in 0..8u64 {
        let t = corpus_tensor(seed, 5, 7, 3);
        let text = encode_tensor(&t);
        let back = decode_tensor(&text).unwrap();
        assert_eq!(back.shape(), t.shape(), "seed {seed}");
        for (i, (a, b)) in t.as_slice().iter().zip(back.as_slice()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "seed {seed}, value {i}: {a} re-parsed as {b}"
            );
        }
        // and the re-encoding is byte-identical — the digest of the
        // encoding is well-defined
        assert_eq!(encode_tensor(&back), text, "seed {seed}");
    }
}

#[test]
fn digests_are_stable_across_calls() {
    let t = corpus_tensor(1, 6, 5, 2);
    assert_eq!(digest_tensor(&t), digest_tensor(&t));
    assert_eq!(digest_tensor_unordered(&t), digest_tensor_unordered(&t));
}

/// Permutes samples of a tensor.
fn permute_samples(t: &Tensor3, order: &[usize]) -> Tensor3 {
    assert_eq!(order.len(), t.samples());
    Tensor3::from_fn(t.samples(), t.seq_len(), t.features(), |s, step, f| {
        t.at(order[s], step, f)
    })
}

#[test]
fn unordered_digest_is_insertion_order_invariant() {
    for seed in 0..6u64 {
        let t = corpus_tensor(seed + 10, 9, 6, 2);
        let mut rng = seeded(seed + 100);
        // a few random permutations per corpus tensor
        for _ in 0..4 {
            let mut order: Vec<usize> = (0..t.samples()).collect();
            // Fisher-Yates with the vendored RNG
            for i in (1..order.len()).rev() {
                let j = rng.gen::<u64>() as usize % (i + 1);
                order.swap(i, j);
            }
            let p = permute_samples(&t, &order);
            assert_eq!(
                digest_tensor_unordered(&t),
                digest_tensor_unordered(&p),
                "seed {seed}: bag digest must ignore sample order"
            );
            if order.iter().enumerate().any(|(i, &o)| i != o) {
                // the positional digest must NOT be order-blind
                assert_ne!(
                    digest_tensor(&t),
                    digest_tensor(&p),
                    "seed {seed}: positional digest ignored a real permutation"
                );
            }
        }
    }
}

#[test]
fn any_single_bit_flip_changes_both_digests() {
    let mut rng = seeded(42);
    for trial in 0..64 {
        let t = corpus_tensor(trial, 4, 5, 2);
        let base = digest_tensor(&t);
        let base_bag = digest_tensor_unordered(&t);
        let mut data = t.as_slice().to_vec();
        let idx = rng.gen::<u64>() as usize % data.len();
        let bit = rng.gen::<u64>() as u32 % 64;
        let flipped = f64::from_bits(data[idx].to_bits() ^ (1u64 << bit));
        if flipped.is_nan() {
            continue; // NaN is outside the digest contract
        }
        data[idx] = flipped;
        let mutated = Tensor3::from_vec(4, 5, 2, data).unwrap();
        assert_ne!(
            digest_tensor(&mutated),
            base,
            "trial {trial}: flip of bit {bit} at {idx} kept the positional digest"
        );
        assert_ne!(
            digest_tensor_unordered(&mutated),
            base_bag,
            "trial {trial}: flip of bit {bit} at {idx} kept the bag digest"
        );
    }
}

#[test]
fn negative_zero_and_zero_are_distinct_content() {
    let a = Tensor3::from_vec(1, 1, 1, vec![0.0]).unwrap();
    let b = Tensor3::from_vec(1, 1, 1, vec![-0.0]).unwrap();
    // bit-exact addressing: -0.0 and 0.0 are different bytes
    assert_ne!(digest_tensor(&a), digest_tensor(&b));
    let back = decode_tensor(&encode_tensor(&b)).unwrap();
    assert_eq!(back.as_slice()[0].to_bits(), (-0.0f64).to_bits());
}
