#![warn(missing_docs)]

//! `tsgb-index`: the spatial-index subsystem behind the sublinear eval
//! kernels (Barnes-Hut t-SNE, KD-accelerated nearest neighbors).
//!
//! # The determinism contract
//!
//! Every structure in this crate is built and traversed in a **fixed
//! order** that depends only on the input point set — never on thread
//! count, timing, or allocation addresses:
//!
//! * [`QuadTree::build`] inserts points in index order `0..n`;
//!   subdivision thresholds and quadrant assignment are pure functions
//!   of the coordinates; [`QuadTree::for_each_summary`] walks children
//!   in quadrant order `0..4` via an explicit stack.
//! * [`KdTree::build`] splits on the median of a stable
//!   `(coordinate, index)` sort; [`KdTree::nearest`] breaks distance
//!   ties by the smaller point index, so its answer is *identical* to
//!   a brute-force `min_by (d², index)` scan.
//!
//! Because a query against a fixed tree is a pure function of the
//! query point, callers may fan independent queries out across the
//! `tsgb-par` pool and still get bit-identical results at any thread
//! count — the property the eval suite's golden fixtures pin.

mod kdtree;
mod quadtree;

pub use kdtree::KdTree;
pub use quadtree::{QuadTree, TraversalStats};
