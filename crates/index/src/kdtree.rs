//! Deterministic 2-D KD-tree for exact nearest-neighbor queries.
//!
//! Construction splits on the median of a stable `(coordinate,
//! index)` sort and queries break distance ties by the smaller point
//! index, so [`KdTree::nearest`] returns *exactly* what a brute-force
//! `min_by (d², index)` scan would — the tree only changes the cost,
//! never the answer.

/// A balanced 2-D KD-tree over an immutable point set.
pub struct KdTree {
    points: Vec<[f64; 2]>,
    /// `order[slot]` = point index stored at tree slot `slot`; slots
    /// form an implicit in-order layout: each recursion level stores
    /// its median first, then the left and right halves.
    nodes: Vec<TreeNode>,
    root: i32,
}

struct TreeNode {
    point: u32,
    axis: u8,
    left: i32,
    right: i32,
}

impl KdTree {
    /// Builds the tree; points are copied so queries need no external
    /// slice.
    pub fn build(points: &[[f64; 2]]) -> Self {
        let mut idx: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = Self {
            points: points.to_vec(),
            nodes: Vec::with_capacity(points.len()),
            root: -1,
        };
        let n = idx.len();
        tree.root = tree.build_rec(&mut idx, 0..n, 0);
        tree
    }

    fn build_rec(&mut self, idx: &mut [u32], range: std::ops::Range<usize>, depth: usize) -> i32 {
        if range.is_empty() {
            return -1;
        }
        let axis = (depth % 2) as u8;
        let slice = &mut idx[range.clone()];
        // stable, total order: coordinate then index — identical
        // medians on every build
        slice.sort_unstable_by(|&a, &b| {
            let ca = self.points[a as usize][axis as usize];
            let cb = self.points[b as usize][axis as usize];
            ca.partial_cmp(&cb)
                .expect("KdTree points must not contain NaN")
                .then(a.cmp(&b))
        });
        let mid = slice.len() / 2;
        let point = slice[mid];
        let id = self.nodes.len() as i32;
        self.nodes.push(TreeNode {
            point,
            axis,
            left: -1,
            right: -1,
        });
        let left = self.build_rec(idx, range.start..range.start + mid, depth + 1);
        let right = self.build_rec(idx, range.start + mid + 1..range.end, depth + 1);
        self.nodes[id as usize].left = left;
        self.nodes[id as usize].right = right;
        id
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `(index, squared distance)` of the point nearest to
    /// `query`, excluding index `exclude` (pass `usize::MAX` to
    /// exclude nothing). Ties on distance resolve to the smaller
    /// index; `None` only when no eligible point exists.
    pub fn nearest(&self, query: [f64; 2], exclude: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        if self.root >= 0 {
            self.nearest_rec(self.root, query, exclude, &mut best);
        }
        best
    }

    fn nearest_rec(&self, at: i32, query: [f64; 2], exclude: usize, best: &mut Option<(usize, f64)>) {
        let node = &self.nodes[at as usize];
        let pi = node.point as usize;
        if pi != exclude {
            let p = self.points[pi];
            let dx = query[0] - p[0];
            let dy = query[1] - p[1];
            let d2 = dx * dx + dy * dy;
            let better = match *best {
                None => true,
                Some((bi, bd)) => d2 < bd || (d2 == bd && pi < bi),
            };
            if better {
                *best = Some((pi, d2));
            }
        }
        let axis = node.axis as usize;
        let diff = query[axis] - self.points[pi][axis];
        let (near, far) = if diff < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if near >= 0 {
            self.nearest_rec(near, query, exclude, best);
        }
        // visit the far side unless it provably cannot hold a point
        // at distance < best (or tied — ties can still win on index)
        let must_check = match *best {
            None => true,
            Some((_, bd)) => diff * diff <= bd,
        };
        if far >= 0 && must_check {
            self.nearest_rec(far, query, exclude, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| [next() * 4.0, next() * 4.0]).collect()
    }

    fn brute(points: &[[f64; 2]], q: [f64; 2], exclude: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in points.iter().enumerate() {
            if i == exclude {
                continue;
            }
            let dx = q[0] - p[0];
            let dy = q[1] - p[1];
            let d2 = dx * dx + dy * dy;
            if best.is_none_or(|(_, bd)| d2 < bd) {
                best = Some((i, d2));
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        for seed in 1..6u64 {
            let pts = lcg_points(150, seed);
            let tree = KdTree::build(&pts);
            for qi in 0..pts.len() {
                assert_eq!(
                    tree.nearest(pts[qi], qi),
                    brute(&pts, pts[qi], qi),
                    "seed {seed} query {qi}"
                );
            }
        }
    }

    #[test]
    fn duplicate_coordinates_tie_break_to_smaller_index() {
        // three coincident points plus one far away
        let pts = vec![[1.0, 1.0], [1.0, 1.0], [1.0, 1.0], [9.0, 9.0]];
        let tree = KdTree::build(&pts);
        // querying from the duplicate position excluding index 1 must
        // pick index 0 (ties resolve downward), exactly like brute
        assert_eq!(tree.nearest([1.0, 1.0], 1), Some((0, 0.0)));
        assert_eq!(tree.nearest([1.0, 1.0], 0), Some((1, 0.0)));
    }

    #[test]
    fn empty_and_singleton_trees() {
        let empty = KdTree::build(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.nearest([0.0, 0.0], usize::MAX), None);
        let one = KdTree::build(&[[2.0, 3.0]]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.nearest([0.0, 0.0], usize::MAX), Some((0, 13.0)));
        assert_eq!(one.nearest([0.0, 0.0], 0), None);
    }

    #[test]
    fn off_sample_queries_match_brute_force() {
        let pts = lcg_points(97, 11);
        let tree = KdTree::build(&pts);
        for q in lcg_points(40, 12) {
            assert_eq!(tree.nearest(q, usize::MAX), brute(&pts, q, usize::MAX));
        }
    }
}
