//! Deterministic Barnes-Hut quadtree over 2-D points.
//!
//! The tree aggregates point count ("mass") and center of mass per
//! cell so a caller can approximate an all-pairs interaction in
//! O(n log n): distant cells are summarized by their aggregate when
//! the opening criterion `extent / distance < theta` holds, otherwise
//! the traversal descends.
//!
//! Leaves are *bucketed*: a cell keeps up to [`BUCKET`] resident
//! points before it splits, which shrinks the tree by roughly the
//! bucket factor. After construction the tree is *frozen* into flat
//! breadth-first arrays — compact nodes with contiguous sibling
//! blocks, plus one flat resident id/coordinate array — so the
//! traversal touches a small number of cache lines per visit and a
//! leaf enumeration reads coordinates sequentially.

/// Sentinel for "no child".
const NONE: u32 = u32::MAX;

/// Leaf capacity before a cell subdivides. Residents are enumerated
/// exactly by callers (unless the leaf itself passes the far-field
/// criterion), so the bucket size trades tree depth against per-leaf
/// pairwise work.
const BUCKET: usize = 16;

/// Past this depth cells are ~2^-48 of the root's extent — smaller
/// than f64 spacing for any sane embedding — so coincident points stop
/// subdividing and accumulate in one oversized bucket instead.
const MAX_DEPTH: usize = 48;

/// Traversal stack bound: DFS pops one node and pushes at most four
/// children, so the stack never exceeds `3 * depth + 4`.
const MAX_STACK: usize = 3 * MAX_DEPTH + 8;

/// Build-time node; replaced by [`Frozen`] before any traversal.
struct Node {
    /// Cell center (cells are squares).
    cx: f64,
    cy: f64,
    /// Half the cell side.
    hw: f64,
    /// Number of points in the subtree.
    mass: f64,
    /// Running coordinate sum; finalized into a center of mass.
    com: [f64; 2],
    /// Tight point bounds: `[min_x, max_x, min_y, max_y]`.
    bounds: [f64; 4],
    /// Child node ids in quadrant order (x<cx,y<cy), (x>=cx,y<cy),
    /// (x<cx,y>=cy), (x>=cx,y>=cy); [`NONE`] when absent.
    children: [u32; 4],
    /// Resident point indices (leaf cells only). At most [`BUCKET`]
    /// except for the coincident buckets at [`MAX_DEPTH`].
    ids: Vec<u32>,
}

impl Node {
    fn new(cx: f64, cy: f64, hw: f64) -> Self {
        Self {
            cx,
            cy,
            hw,
            mass: 0.0,
            com: [0.0; 2],
            bounds: [
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ],
            children: [NONE; 4],
            ids: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.children == [NONE; 4]
    }
}

struct Builder {
    nodes: Vec<Node>,
    depth: usize,
}

/// Frozen traversal node: the hot criterion fields plus either a
/// contiguous child block or a flat resident range.
struct Frozen {
    /// Center of mass.
    com: [f64; 2],
    /// Point count of the subtree.
    mass: f64,
    /// Squared longest side of the *tight* bounding box of the
    /// subtree's points (not the geometric cell): the opening
    /// criterion compares the true extent of the summarized mass,
    /// which both tightens the error bound and lets far-field
    /// acceptance fire much earlier than the cell side would.
    side2: f64,
    /// Tight point bounds: `[min_x, max_x, min_y, max_y]`.
    bounds: [f64; 4],
    /// Internal node: index of the first child in the frozen array
    /// (siblings are contiguous, quadrant order). Leaf: offset of the
    /// first resident in the flat id/coordinate arrays.
    first: u32,
    /// `(count << 1) | is_leaf` — child count or resident count.
    tag: u32,
}

/// A Barnes-Hut quadtree; see the crate docs for the determinism
/// contract.
pub struct QuadTree {
    frozen: Vec<Frozen>,
    ids_flat: Vec<u32>,
    coords_flat: Vec<[f64; 2]>,
    depth: usize,
}

/// Work accounting returned by [`QuadTree::for_each_summary`], fed to
/// `tsgb-obs` by callers (this crate stays dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Nodes popped off the traversal stack.
    pub nodes_visited: u64,
    /// Cells accepted as a far-field summary (vs. descended into).
    pub summaries: u64,
}

impl Builder {
    fn quadrant(node: &Node, p: [f64; 2]) -> usize {
        (p[0] >= node.cx) as usize + 2 * ((p[1] >= node.cy) as usize)
    }

    fn child_cell(node: &Node, q: usize) -> (f64, f64, f64) {
        let hw = 0.5 * node.hw;
        let cx = node.cx + if q & 1 == 1 { hw } else { -hw };
        let cy = node.cy + if q & 2 == 2 { hw } else { -hw };
        (cx, cy, hw)
    }

    /// Ensures child `q` of `at` exists and returns its id.
    fn child_or_new(&mut self, at: u32, q: usize) -> u32 {
        let existing = self.nodes[at as usize].children[q];
        if existing != NONE {
            return existing;
        }
        let (cx, cy, hw) = Self::child_cell(&self.nodes[at as usize], q);
        let id = self.nodes.len() as u32;
        self.nodes[at as usize].children[q] = id;
        self.nodes.push(Node::new(cx, cy, hw));
        id
    }

    fn insert(&mut self, mut at: u32, idx: u32, points: &[[f64; 2]], mut depth: usize) {
        let p = points[idx as usize];
        loop {
            self.depth = self.depth.max(depth);
            let node = &mut self.nodes[at as usize];
            node.mass += 1.0;
            node.com[0] += p[0];
            node.com[1] += p[1];
            node.bounds[0] = node.bounds[0].min(p[0]);
            node.bounds[1] = node.bounds[1].max(p[0]);
            node.bounds[2] = node.bounds[2].min(p[1]);
            node.bounds[3] = node.bounds[3].max(p[1]);
            if !node.is_leaf() {
                let q = Self::quadrant(node, p);
                at = self.child_or_new(at, q);
                depth += 1;
                continue;
            }
            if node.ids.len() < BUCKET || depth >= MAX_DEPTH {
                node.ids.push(idx);
                return;
            }
            // split: push the resident points one level down in stored
            // (= insertion) order; their mass/com contribution is
            // already aggregated here. Then keep descending with the
            // new point.
            let residents = std::mem::take(&mut node.ids);
            for rid in residents {
                let rq = Self::quadrant(&self.nodes[at as usize], points[rid as usize]);
                let rc = self.child_or_new(at, rq);
                self.insert(rc, rid, points, depth + 1);
            }
            let q = Self::quadrant(&self.nodes[at as usize], p);
            at = self.child_or_new(at, q);
            depth += 1;
        }
    }
}

impl QuadTree {
    /// Builds the tree over `points`, inserting in index order. The
    /// root cell is the smallest square centered on the bounding box
    /// that contains every point.
    pub fn build(points: &[[f64; 2]]) -> Self {
        let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in points {
            lo_x = lo_x.min(p[0]);
            hi_x = hi_x.max(p[0]);
            lo_y = lo_y.min(p[1]);
            hi_y = hi_y.max(p[1]);
        }
        if points.is_empty() {
            (lo_x, hi_x, lo_y, hi_y) = (0.0, 0.0, 0.0, 0.0);
        }
        // widen slightly so boundary points satisfy strict containment
        let hw = (0.5 * (hi_x - lo_x).max(hi_y - lo_y)).max(1e-12) * (1.0 + 1e-9);
        let root = Node::new(0.5 * (lo_x + hi_x), 0.5 * (lo_y + hi_y), hw);
        let mut b = Builder {
            nodes: vec![root],
            depth: 0,
        };
        b.nodes.reserve(points.len() / BUCKET * 4 + 4);
        for i in 0..points.len() {
            b.insert(0, i as u32, points, 0);
        }
        Self::freeze(b, points)
    }

    /// Lays the builder's nodes out breadth-first (sibling blocks
    /// contiguous, quadrant order preserved) and finalizes the
    /// aggregate fields. The relabeling does not change the traversal
    /// order: [`Self::for_each_summary`] is depth-first over the same
    /// child sequence either way.
    fn freeze(b: Builder, points: &[[f64; 2]]) -> Self {
        let n_nodes = b.nodes.len();
        // BFS order + position of each node's child block
        let mut order = Vec::with_capacity(n_nodes);
        order.push(0u32);
        let mut first_child = vec![0u32; n_nodes];
        let mut head = 0;
        while head < order.len() {
            let old = &b.nodes[order[head] as usize];
            first_child[head] = order.len() as u32;
            for q in 0..4 {
                if old.children[q] != NONE {
                    order.push(old.children[q]);
                }
            }
            head += 1;
        }
        let mut tree = Self {
            frozen: Vec::with_capacity(n_nodes),
            ids_flat: Vec::with_capacity(points.len()),
            coords_flat: Vec::with_capacity(points.len()),
            depth: b.depth,
        };
        for (pos, &old_id) in order.iter().enumerate() {
            let old = &b.nodes[old_id as usize];
            let inv_mass = if old.mass > 0.0 { 1.0 / old.mass } else { 0.0 };
            let side = (old.bounds[1] - old.bounds[0]).max(old.bounds[3] - old.bounds[2]);
            let (first, tag) = if old.is_leaf() {
                let start = tree.ids_flat.len() as u32;
                for &id in &old.ids {
                    tree.ids_flat.push(id);
                    tree.coords_flat.push(points[id as usize]);
                }
                (start, ((old.ids.len() as u32) << 1) | 1)
            } else {
                let nchild = old.children.iter().filter(|&&c| c != NONE).count() as u32;
                (first_child[pos], nchild << 1)
            };
            tree.frozen.push(Frozen {
                com: [old.com[0] * inv_mass, old.com[1] * inv_mass],
                mass: old.mass,
                side2: side * side,
                bounds: old.bounds,
                first,
                tag,
            });
        }
        tree
    }

    /// Number of points inserted.
    pub fn mass(&self) -> f64 {
        self.frozen[0].mass
    }

    /// Deepest level any point reached (root = 0).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Allocated tree nodes.
    pub fn node_count(&self) -> usize {
        self.frozen.len()
    }

    /// Walks the tree for `query`, calling `f(mass, com, leaf)` once
    /// per accepted cell: `leaf` is `Some((ids, coords))` for leaf
    /// cells — the residents in insertion order, coordinates stored
    /// in the tree's flat array — and `None` for far-field cells
    /// accepted by the `extent / dist < theta` criterion. Children are
    /// visited in quadrant order, so the call sequence is a pure
    /// function of `(tree, query, theta)`.
    ///
    /// The opening criterion uses each subtree's *tight* point bounds:
    /// `longest_bbox_side / dist_to_com < theta`. A cell is only ever
    /// summarized when the query lies strictly outside that bounding
    /// box — so for *any* `theta`, a query that is itself a tree point
    /// always reaches its own leaf and is enumerated there exactly
    /// once, and callers can correct for the self-interaction with a
    /// single exact term instead of branching per resident.
    pub fn for_each_summary(
        &self,
        query: [f64; 2],
        theta: f64,
        mut f: impl FnMut(f64, [f64; 2], Option<(&[u32], &[[f64; 2]])>),
    ) -> TraversalStats {
        let mut stats = TraversalStats::default();
        let mut stack = [0u32; MAX_STACK];
        let mut top = 1usize;
        let t2 = theta * theta;
        while top > 0 {
            top -= 1;
            let node = &self.frozen[stack[top] as usize];
            stats.nodes_visited += 1;
            if node.mass == 0.0 {
                continue;
            }
            let dx = query[0] - node.com[0];
            let dy = query[1] - node.com[1];
            let d2 = dx * dx + dy * dy;
            let b = &node.bounds;
            let far = node.side2 < t2 * d2
                && (query[0] < b[0] || query[0] > b[1] || query[1] < b[2] || query[1] > b[3]);
            if far {
                stats.summaries += 1;
                f(node.mass, node.com, None);
                continue;
            }
            let count = (node.tag >> 1) as usize;
            if node.tag & 1 == 1 {
                let lo = node.first as usize;
                f(
                    node.mass,
                    node.com,
                    Some((
                        &self.ids_flat[lo..lo + count],
                        &self.coords_flat[lo..lo + count],
                    )),
                );
                continue;
            }
            // push the contiguous child block in reverse so pop order
            // is quadrant 0,1,2,3
            debug_assert!(top + count <= MAX_STACK);
            for k in (0..count).rev() {
                stack[top] = node.first + k as u32;
                top += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small deterministic LCG so the tests need no RNG dependency.
    fn lcg_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| [next() * 10.0 - 5.0, next() * 6.0 - 3.0]).collect()
    }

    #[test]
    fn mass_and_com_match_the_point_set() {
        let pts = lcg_points(137, 1);
        let tree = QuadTree::build(&pts);
        assert_eq!(tree.mass(), 137.0);
        let mx: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / 137.0;
        let my: f64 = pts.iter().map(|p| p[1]).sum::<f64>() / 137.0;
        let root_com = {
            let mut com = [0.0; 2];
            // theta=0: every leaf is enumerated, so recover the root
            // center of mass from a mass-weighted leaf scan
            let mut m = 0.0;
            tree.for_each_summary([100.0, 100.0], 0.0, |mass, c, _| {
                com[0] += mass * c[0];
                com[1] += mass * c[1];
                m += mass;
            });
            [com[0] / m, com[1] / m]
        };
        assert!((root_com[0] - mx).abs() < 1e-9);
        assert!((root_com[1] - my).abs() < 1e-9);
    }

    #[test]
    fn theta_zero_enumerates_every_point_exactly_once() {
        let pts = lcg_points(64, 2);
        let tree = QuadTree::build(&pts);
        let mut seen = vec![0u32; 64];
        tree.for_each_summary(pts[0], 0.0, |_, _, leaf| {
            let (ids, coords) = leaf.expect("theta=0 must reach leaves");
            assert_eq!(ids.len(), coords.len());
            for (k, &i) in ids.iter().enumerate() {
                assert_eq!(coords[k], pts[i as usize], "stored coord mismatch");
                seen[i as usize] += 1;
            }
        });
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn coincident_points_bucket_without_runaway_splits() {
        // more coincident points than one bucket holds: the split
        // cascade must stop at MAX_DEPTH and collect them all
        let pts = vec![[1.25, -0.5]; BUCKET + 9];
        let tree = QuadTree::build(&pts);
        assert_eq!(tree.mass(), (BUCKET + 9) as f64);
        let mut total = 0.0;
        tree.for_each_summary([1.25, -0.5], 0.0, |m, _, leaf| {
            assert!(leaf.is_some());
            total += m;
        });
        assert_eq!(total, (BUCKET + 9) as f64);
    }

    #[test]
    fn query_point_is_always_enumerated_not_summarized() {
        // even at a huge theta the traversal must reach the query's own
        // leaf, because summaries require the query outside the tight
        // bounds — this is what lets callers subtract the self term
        let pts = lcg_points(300, 7);
        for qi in [0usize, 150, 299] {
            let mut saw_self = 0;
            QuadTree::build(&pts).for_each_summary(pts[qi], 4.0, |_, _, leaf| {
                if let Some((ids, _)) = leaf {
                    saw_self += ids.iter().filter(|&&i| i as usize == qi).count();
                }
            });
            assert_eq!(saw_self, 1, "query {qi} enumerated {saw_self} times");
        }
    }

    #[test]
    fn summary_approximates_brute_force_interaction() {
        // student-t style kernel sum, the Barnes-Hut use case
        let pts = lcg_points(300, 3);
        let tree = QuadTree::build(&pts);
        let q = pts[7];
        let brute: f64 = pts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 7)
            .map(|(_, p)| {
                let (dx, dy) = (q[0] - p[0], q[1] - p[1]);
                1.0 / (1.0 + dx * dx + dy * dy)
            })
            .sum();
        let mut approx = 0.0;
        tree.for_each_summary(q, 0.4, |mass, com, leaf| {
            if let Some((ids, coords)) = leaf {
                // enumerate residents exactly, skipping the query
                for (k, &i) in ids.iter().enumerate() {
                    if i != 7 {
                        let (dx, dy) = (q[0] - coords[k][0], q[1] - coords[k][1]);
                        approx += 1.0 / (1.0 + dx * dx + dy * dy);
                    }
                }
                return;
            }
            let (dx, dy) = (q[0] - com[0], q[1] - com[1]);
            approx += mass / (1.0 + dx * dx + dy * dy);
        });
        let rel = (approx - brute).abs() / brute;
        assert!(rel < 0.02, "approx {approx} vs brute {brute} (rel {rel})");
    }

    #[test]
    fn traversal_sequence_is_reproducible() {
        let pts = lcg_points(200, 4);
        let run = || {
            let tree = QuadTree::build(&pts);
            let mut log: Vec<(u64, u64)> = Vec::new();
            let stats = tree.for_each_summary(pts[42], 0.6, |m, c, leaf| {
                log.push((
                    (m as u64) << 1 | leaf.is_some() as u64,
                    c[0].to_bits() ^ c[1].to_bits(),
                ));
            });
            (log, stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bigger_theta_visits_fewer_nodes() {
        let pts = lcg_points(400, 5);
        let tree = QuadTree::build(&pts);
        let exact = tree.for_each_summary(pts[0], 0.0, |_, _, _| {});
        let coarse = tree.for_each_summary(pts[0], 0.8, |_, _, _| {});
        assert!(coarse.nodes_visited < exact.nodes_visited, "{coarse:?} vs {exact:?}");
        assert!(coarse.summaries > 0);
    }

    #[test]
    fn bucketed_leaves_keep_the_tree_small() {
        let pts = lcg_points(512, 6);
        let tree = QuadTree::build(&pts);
        // ~n/BUCKET leaves plus internals: far below one node per point
        assert!(tree.node_count() < 512 / 2, "{} nodes", tree.node_count());
    }
}
