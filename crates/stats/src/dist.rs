//! Probability distributions needed by the ranking analysis:
//! chi-square, Student t and F survival functions, built on the
//! regularized incomplete gamma and beta functions (Lanczos gamma,
//! series/continued-fraction evaluation — the Numerical Recipes
//! formulation).

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs a positive argument");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
pub fn gammp(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // series representation
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        1.0 - gammq_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x)` by continued fraction.
fn gammq_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1e300;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Chi-square survival function `P(X > x)` with `df` degrees of
/// freedom.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    (1.0 - gammp(df / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

/// Regularized incomplete beta `I_x(a, b)` (continued fraction).
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "betai domain");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp()
            * betacf(b, a, 1.0 - x)
            / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < 1e-300 {
        d = 1e-300;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of
/// freedom.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    betai(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Survival function of the F distribution.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    if f <= 0.0 {
        return 1.0;
    }
    betai(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..10u64 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-10, "n = {n}");
        }
        // Gamma(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi2_sf_reference_values() {
        // chi2 with 1 df: P(X > 3.841) ~ 0.05
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        // chi2 with 9 df: P(X > 16.919) ~ 0.05
        assert!((chi2_sf(16.919, 9.0) - 0.05).abs() < 1e-3);
        // median of chi2_2 is 2 ln 2
        assert!((chi2_sf(2.0 * 2.0f64.ln(), 2.0) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn t_two_sided_reference_values() {
        // t with 10 df: |t| = 2.228 -> p ~ 0.05
        assert!((t_sf_two_sided(2.228, 10.0) - 0.05).abs() < 1e-3);
        // t = 0 -> p = 1
        assert!((t_sf_two_sided(0.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f_sf_reference_values() {
        // F(3, 12): P(F > 3.49) ~ 0.05
        assert!((f_sf(3.49, 3.0, 12.0) - 0.05).abs() < 2e-3);
        assert_eq!(f_sf(0.0, 3.0, 12.0), 1.0);
    }

    #[test]
    fn betai_complements() {
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (5.0, 1.0, 0.2)] {
            let s = betai(a, b, x) + betai(b, a, 1.0 - x);
            assert!((s - 1.0).abs() < 1e-10, "a={a} b={b} x={x}: {s}");
        }
    }
}
