//! Rank correlation — quantifying the paper's §6.1 observation that
//! "within each dataset, the performance ranking across all four
//! [feature-based] measures appears to be consistent".
//!
//! [`spearman`] (rho over average ranks) and [`kendall`] (tau-b,
//! tie-adjusted) between two score vectors, plus a matrix helper that
//! produces the measure-agreement table the reproduction reports.

use tsgb_linalg::stats::average_ranks;

/// Spearman rank correlation between two equal-length score vectors
/// (ties averaged). Returns 0 when either side is constant.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman length mismatch");
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    tsgb_linalg::stats::pearson(&ra, &rb)
}

/// Kendall tau-b between two equal-length score vectors.
pub fn kendall(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kendall length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                // tied in both: counted in neither adjustment
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if (da > 0.0) == (db > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let denom = ((n0 - ties_a as f64) * (n0 - ties_b as f64)).sqrt();
    if denom < 1e-12 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Pairwise Spearman correlations between the rows of a
/// `measures x methods` score grid — the measure-agreement matrix.
pub fn agreement_matrix(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let m = rows.len();
    let mut out = vec![vec![1.0; m]; m];
    for i in 0..m {
        for j in i + 1..m {
            let r = spearman(&rows[i], &rows[j]);
            out[i][j] = r;
            out[j][i] = r;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert!((kendall(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_disagreement() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
        assert!((kendall(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_transform_invariance() {
        let a = [0.1f64, 0.5, 0.2, 0.9];
        let b: Vec<f64> = a.iter().map(|x| x.exp() * 3.0).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert!((kendall(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_handled() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall(&a, &b);
        assert!(tau > 0.7 && tau <= 1.0, "tau = {tau}");
        assert_eq!(
            kendall(&[2.0; 4], &b),
            0.0,
            "constant side has no correlation"
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric indexing reads clearer
    fn agreement_matrix_is_symmetric_with_unit_diagonal() {
        let rows = vec![
            vec![1.0, 2.0, 3.0],
            vec![3.0, 2.0, 1.0],
            vec![1.0, 3.0, 2.0],
        ];
        let m = agreement_matrix(&rows);
        for i in 0..3 {
            assert_eq!(m[i][i], 1.0);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
        assert!((m[0][1] + 1.0).abs() < 1e-12);
    }
}
