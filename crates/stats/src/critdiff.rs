//! The Figure-8 critical-difference diagram data: average ranks on a
//! number line plus bars joining statistically indistinguishable
//! methods.
//!
//! The paper validates the ranking with Friedman + Conover; the
//! rendered diagram also carries the classic Nemenyi critical
//! difference `CD = q_alpha sqrt(k(k+1) / 6b)` (Demšar 2006) as the
//! reference bar length.

use crate::conover::{conover_test, tiers, ConoverResult};
use crate::friedman::{friedman_test, FriedmanResult};

/// Studentized-range-based Nemenyi constants `q_alpha / sqrt(2)` for
/// `alpha = 0.05`, k = 2..=10 (Demšar 2006, Table 5).
const NEMENYI_Q05: [f64; 9] = [
    1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164,
];

/// Everything needed to draw Figure 8.
#[derive(Debug, Clone)]
pub struct CriticalDifference {
    /// Method labels in input order.
    pub methods: Vec<String>,
    /// Average rank per method.
    pub avg_ranks: Vec<f64>,
    /// The Nemenyi critical difference at alpha = 0.05.
    pub cd: f64,
    /// Tiers of statistically indistinguishable methods (best tier
    /// first), from Conover pairwise tests.
    pub tiers: Vec<Vec<usize>>,
    /// The underlying Friedman test.
    pub friedman: FriedmanResult,
    /// The pairwise Conover p-values.
    pub conover: ConoverResult,
}

/// Computes the critical-difference analysis from a
/// `scores[block][method]` matrix (lower = better).
pub fn critical_difference(
    methods: &[String],
    scores: &[Vec<f64>],
    alpha: f64,
) -> CriticalDifference {
    let k = methods.len();
    assert!((2..=10).contains(&k), "Nemenyi table covers 2..=10 methods");
    let friedman = friedman_test(scores);
    let conover = conover_test(&friedman);
    let groups = tiers(&friedman, &conover, alpha);
    let b = scores.len() as f64;
    let q = NEMENYI_Q05[k - 2];
    let cd = q * (k as f64 * (k as f64 + 1.0) / (6.0 * b)).sqrt();
    CriticalDifference {
        methods: methods.to_vec(),
        avg_ranks: friedman.avg_ranks.clone(),
        cd,
        tiers: groups,
        friedman,
        conover,
    }
}

impl CriticalDifference {
    /// ASCII rendering of the diagram: a rank axis with method ticks
    /// and tier annotations, for the terminal report.
    pub fn ascii(&self) -> String {
        let k = self.methods.len() as f64;
        let width = 60usize;
        let pos = |rank: f64| -> usize {
            (((rank - 1.0) / (k - 1.0).max(1e-9)) * (width - 1) as f64).round() as usize
        };
        let mut out = String::new();
        out.push_str(&format!(
            "CD = {:.3} (Nemenyi, alpha=0.05) | Friedman p = {:.2e}\n",
            self.cd, self.friedman.p_chi2
        ));
        let mut axis = vec![b'-'; width];
        for &r in &self.avg_ranks {
            axis[pos(r).min(width - 1)] = b'+';
        }
        out.push_str(std::str::from_utf8(&axis).expect("ascii"));
        out.push('\n');
        let mut order: Vec<usize> = (0..self.methods.len()).collect();
        order.sort_by(|&a, &b| {
            self.avg_ranks[a]
                .partial_cmp(&self.avg_ranks[b])
                .expect("finite ranks")
        });
        for (tier_idx, tier) in self.tiers.iter().enumerate() {
            let names: Vec<&str> = tier.iter().map(|&m| self.methods[m].as_str()).collect();
            out.push_str(&format!("tier {}: {}\n", tier_idx + 1, names.join(", ")));
        }
        for &m in &order {
            out.push_str(&format!(
                "  {:<12} avg rank {:.2}\n",
                self.methods[m], self.avg_ranks[m]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(k: usize) -> Vec<String> {
        (0..k).map(|i| format!("M{i}")).collect()
    }

    #[test]
    fn separated_methods_get_multiple_tiers() {
        let scores: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![1.0 + 0.01 * i as f64, 5.0, 9.0, 13.0])
            .collect();
        let cd = critical_difference(&names(4), &scores, 0.05);
        assert!(cd.tiers.len() >= 3, "tiers: {:?}", cd.tiers);
        assert!(cd.cd > 0.0);
        assert!(cd.friedman.p_chi2 < 0.01);
    }

    #[test]
    fn nemenyi_cd_reference_value() {
        // Demšar's example: k = 4, b = 14 -> CD ~ 1.25 at alpha 0.05
        let scores: Vec<Vec<f64>> = (0..14)
            .map(|i| vec![1.0, 2.0 + (i % 2) as f64, 3.0, 4.0])
            .collect();
        let cd = critical_difference(&names(4), &scores, 0.05);
        assert!((cd.cd - 1.25).abs() < 0.02, "cd = {}", cd.cd);
    }

    #[test]
    fn ascii_contains_all_methods() {
        let scores: Vec<Vec<f64>> = (0..8).map(|_| vec![0.1, 0.2, 0.3]).collect();
        let cd = critical_difference(&names(3), &scores, 0.05);
        let art = cd.ascii();
        for m in names(3) {
            assert!(art.contains(&m), "{art}");
        }
    }
}
