#![warn(missing_docs)]

//! `tsgb-stats`: the statistical ranking analysis of paper §6.4.
//!
//! * [`friedman`] — the Friedman rank test (chi-square and
//!   Iman–Davenport F forms) over a methods × datasets score matrix.
//! * [`conover`] — Conover's post-hoc pairwise test, as used by the
//!   paper (via `scikit-posthocs` in the original) to group methods
//!   into statistically indistinguishable tiers.
//! * [`ranking`] — the Figure-1 rank matrices: method rank per measure
//!   (aggregated over datasets) and per dataset (aggregated over
//!   measures).
//! * [`critdiff`] — the Figure-8 critical-difference diagram data:
//!   average ranks plus the pairwise significance groups.
//! * [`dist`] — the probability distributions (chi-square, F,
//!   Student t) needed to compute p-values from scratch.

pub mod conover;
pub mod correlation;
pub mod critdiff;
pub mod dist;
pub mod friedman;
pub mod ranking;

pub use critdiff::CriticalDifference;
pub use friedman::FriedmanResult;
