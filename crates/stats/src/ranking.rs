//! The Figure-1 ranking matrices: method rank per evaluation measure
//! (aggregated over datasets) and method rank per dataset (aggregated
//! over measures).

use tsgb_linalg::stats::average_ranks;

/// A labelled grid of scores: `scores[case][method]`, lower = better.
#[derive(Debug, Clone)]
pub struct ScoreGrid {
    /// Row labels (datasets or measures).
    pub cases: Vec<String>,
    /// Column labels (methods).
    pub methods: Vec<String>,
    /// `scores[case][method]`.
    pub scores: Vec<Vec<f64>>,
}

impl ScoreGrid {
    /// Builds a grid, validating shape.
    pub fn new(cases: Vec<String>, methods: Vec<String>, scores: Vec<Vec<f64>>) -> Self {
        assert_eq!(cases.len(), scores.len(), "row count mismatch");
        for row in &scores {
            assert_eq!(row.len(), methods.len(), "column count mismatch");
        }
        Self {
            cases,
            methods,
            scores,
        }
    }

    /// Per-case ranks: `ranks[case][method]` with ties averaged.
    pub fn rank_rows(&self) -> Vec<Vec<f64>> {
        self.scores.iter().map(|row| average_ranks(row)).collect()
    }

    /// Average rank of each method across all cases — one row of
    /// Figure 1.
    pub fn average_ranks(&self) -> Vec<f64> {
        let ranks = self.rank_rows();
        let k = self.methods.len();
        let mut avg = vec![0.0; k];
        for row in &ranks {
            for (a, r) in avg.iter_mut().zip(row) {
                *a += r;
            }
        }
        for a in &mut avg {
            *a /= ranks.len() as f64;
        }
        avg
    }

    /// Methods ordered best (lowest average rank) first.
    pub fn ordering(&self) -> Vec<usize> {
        let avg = self.average_ranks();
        let mut idx: Vec<usize> = (0..avg.len()).collect();
        idx.sort_by(|&a, &b| avg[a].partial_cmp(&avg[b]).expect("finite ranks"));
        idx
    }
}

/// The two Figure-1 panels assembled from a three-axis score cube
/// `scores[measure][dataset][method]`.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// Panel (a): `rank[measure][method]`, averaged over datasets.
    pub by_measure: ScoreGrid,
    /// Panel (b): `rank[dataset][method]`, averaged over measures.
    pub by_dataset: ScoreGrid,
}

/// Builds both Figure-1 panels. For panel (a), each measure's row is
/// the method's average rank across datasets; for panel (b), each
/// dataset's row is the average rank across measures.
pub fn figure1(
    measures: &[String],
    datasets: &[String],
    methods: &[String],
    scores: &[Vec<Vec<f64>>],
) -> Figure1 {
    assert_eq!(scores.len(), measures.len(), "measure axis mismatch");
    for per_measure in scores {
        assert_eq!(per_measure.len(), datasets.len(), "dataset axis mismatch");
        for row in per_measure {
            assert_eq!(row.len(), methods.len(), "method axis mismatch");
        }
    }
    let k = methods.len();

    // panel (a): average over datasets of per-dataset ranks
    let mut by_measure_rows = Vec::with_capacity(measures.len());
    for per_measure in scores {
        let grid = ScoreGrid::new(datasets.to_vec(), methods.to_vec(), per_measure.clone());
        by_measure_rows.push(grid.average_ranks());
    }

    // panel (b): average over measures of per-(measure,dataset) ranks
    let mut by_dataset_rows = vec![vec![0.0; k]; datasets.len()];
    for per_measure in scores {
        for (d, row) in per_measure.iter().enumerate() {
            let ranks = average_ranks(row);
            for (acc, r) in by_dataset_rows[d].iter_mut().zip(&ranks) {
                *acc += r;
            }
        }
    }
    for row in &mut by_dataset_rows {
        for v in row.iter_mut() {
            *v /= measures.len() as f64;
        }
    }

    Figure1 {
        by_measure: ScoreGrid::new(measures.to_vec(), methods.to_vec(), by_measure_rows),
        by_dataset: ScoreGrid::new(datasets.to_vec(), methods.to_vec(), by_dataset_rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn grid_ranks_lower_is_better() {
        let g = ScoreGrid::new(
            s(&["d1", "d2"]),
            s(&["m1", "m2", "m3"]),
            vec![vec![0.1, 0.2, 0.3], vec![0.1, 0.3, 0.2]],
        );
        let avg = g.average_ranks();
        assert_eq!(avg[0], 1.0);
        assert_eq!(avg[1], 2.5);
        assert_eq!(avg[2], 2.5);
        assert_eq!(g.ordering()[0], 0);
    }

    #[test]
    fn figure1_panels_have_right_shapes() {
        let measures = s(&["DS", "ED"]);
        let datasets = s(&["Stock", "Energy", "Air"]);
        let methods = s(&["A", "B"]);
        // scores[measure][dataset][method]
        let scores = vec![
            vec![vec![0.1, 0.2], vec![0.2, 0.1], vec![0.1, 0.2]],
            vec![vec![0.5, 0.6], vec![0.5, 0.6], vec![0.5, 0.6]],
        ];
        let f = figure1(&measures, &datasets, &methods, &scores);
        assert_eq!(f.by_measure.scores.len(), 2);
        assert_eq!(f.by_measure.scores[0].len(), 2);
        assert_eq!(f.by_dataset.scores.len(), 3);
        // ED always ranks A first: its row is [1, 2]
        assert_eq!(f.by_measure.scores[1], vec![1.0, 2.0]);
        // dataset Stock: A wins both measures -> [1, 2]
        assert_eq!(f.by_dataset.scores[0], vec![1.0, 2.0]);
        // dataset Energy: split -> [1.5, 1.5]
        assert_eq!(f.by_dataset.scores[1], vec![1.5, 1.5]);
    }
}
