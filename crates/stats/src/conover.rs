//! Conover's post-hoc pairwise test after Friedman (paper §6.4, via
//! `scikit-posthocs` in the original).
//!
//! Treatments `i` and `j` differ when
//! `|R_i - R_j| / s > t_{1-alpha/2; (b-1)(k-1)}` with
//! `s^2 = 2b (A1 - C1) (1 - T1 / (b(k-1))) / ((b-1)(k-1))`
//! (Conover 1999, eq. 5.8.12-style), where `R` are rank sums, `A1` the
//! sum of squared ranks, `C1 = b k (k+1)^2 / 4` and `T1` the
//! tie-corrected Friedman statistic.

use crate::dist::t_sf_two_sided;
use crate::friedman::FriedmanResult;

/// Pairwise p-value matrix from Conover's test.
#[derive(Debug, Clone)]
pub struct ConoverResult {
    /// `p[i][j]`: two-sided p-value for treatments i vs j (1 on the
    /// diagonal).
    pub p_values: Vec<Vec<f64>>,
    /// Degrees of freedom used, `(b-1)(k-1)`.
    pub df: f64,
}

/// Runs Conover's post-hoc on a completed Friedman test.
#[allow(clippy::needless_range_loop)] // symmetric matrix fill is clearer indexed
pub fn conover_test(f: &FriedmanResult) -> ConoverResult {
    let b = f.blocks as f64;
    let k = f.treatments as f64;
    let df = (b - 1.0) * (k - 1.0);
    // variance scale; clamp the (1 - T1/..) factor away from zero for
    // perfectly separated rankings
    let sep = (1.0 - f.chi2 / (b * (k - 1.0))).max(1e-9);
    let s2 = 2.0 * b * (f.a1 - f.c1).max(1e-12) * sep / df;
    let s = s2.sqrt().max(1e-12);

    let kk = f.treatments;
    let mut p = vec![vec![1.0f64; kk]; kk];
    for i in 0..kk {
        for j in i + 1..kk {
            let t = (f.rank_sums[i] - f.rank_sums[j]).abs() / s;
            let pv = t_sf_two_sided(t, df);
            p[i][j] = pv;
            p[j][i] = pv;
        }
    }
    ConoverResult { p_values: p, df }
}

/// Greedy grouping of treatments into statistically indistinguishable
/// tiers: sort by average rank, then extend each tier while every pair
/// inside stays above the significance level.
pub fn tiers(f: &FriedmanResult, conover: &ConoverResult, alpha: f64) -> Vec<Vec<usize>> {
    let k = f.treatments;
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        f.avg_ranks[a]
            .partial_cmp(&f.avg_ranks[b])
            .expect("finite ranks")
    });
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &m in &order {
        let fits = groups
            .last()
            .map(|g: &Vec<usize>| g.iter().all(|&other| conover.p_values[m][other] >= alpha));
        match fits {
            Some(true) => groups.last_mut().expect("non-empty").push(m),
            _ => groups.push(vec![m]),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::friedman::friedman_test;

    #[test]
    fn clear_separation_gives_small_pairwise_p() {
        let scores: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![1.0 + 0.01 * i as f64, 2.0, 3.0])
            .collect();
        let f = friedman_test(&scores);
        let c = conover_test(&f);
        assert!(c.p_values[0][2] < 0.01, "p02 = {}", c.p_values[0][2]);
        assert!(c.p_values[0][1] < c.p_values[0][2] + 1e-12);
        assert_eq!(c.p_values[1][1], 1.0);
        // symmetry
        assert_eq!(c.p_values[0][2], c.p_values[2][0]);
    }

    #[test]
    fn indistinguishable_methods_share_a_tier() {
        // two treatments that alternate wins, one always last
        let mut scores = Vec::new();
        for i in 0..10 {
            if i % 2 == 0 {
                scores.push(vec![1.0, 2.0, 9.0]);
            } else {
                scores.push(vec![2.0, 1.0, 9.0]);
            }
        }
        let f = friedman_test(&scores);
        let c = conover_test(&f);
        let g = tiers(&f, &c, 0.05);
        assert_eq!(g.len(), 2, "groups: {g:?}");
        assert_eq!(g[0].len(), 2);
        assert_eq!(g[1], vec![2]);
    }

    #[test]
    fn p_values_in_unit_interval() {
        let scores = vec![
            vec![0.3, 0.1, 0.4, 0.15],
            vec![0.2, 0.2, 0.5, 0.1],
            vec![0.25, 0.05, 0.45, 0.2],
            vec![0.5, 0.3, 0.2, 0.4],
        ];
        let f = friedman_test(&scores);
        let c = conover_test(&f);
        for row in &c.p_values {
            for &p in row {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
