//! The Friedman rank test (paper §6.4) over a blocks × treatments
//! score matrix — here, datasets(/measures) × methods, lower scores
//! better.
//!
//! Reports the tie-corrected chi-square statistic (Conover's `T1`),
//! the Iman–Davenport F statistic (`T2`) and both p-values, plus the
//! per-treatment average ranks consumed by Figure 1 and Figure 8.

use crate::dist::{chi2_sf, f_sf};
use tsgb_linalg::stats::average_ranks;

/// Result of a Friedman test.
#[derive(Debug, Clone)]
pub struct FriedmanResult {
    /// Average rank of each treatment (method); rank 1 = best (lowest
    /// score).
    pub avg_ranks: Vec<f64>,
    /// Rank sums per treatment.
    pub rank_sums: Vec<f64>,
    /// Tie-corrected chi-square statistic (Conover's T1).
    pub chi2: f64,
    /// p-value of the chi-square form (df = k - 1).
    pub p_chi2: f64,
    /// Iman–Davenport F statistic (T2).
    pub f_stat: f64,
    /// p-value of the F form (df = (k-1), (b-1)(k-1)).
    pub p_f: f64,
    /// Number of blocks (datasets).
    pub blocks: usize,
    /// Number of treatments (methods).
    pub treatments: usize,
    /// Sum of squared ranks (A1), reused by Conover's post hoc.
    pub a1: f64,
    /// The C1 constant `b k (k+1)^2 / 4`, reused by Conover.
    pub c1: f64,
}

/// Runs the Friedman test on `scores[block][treatment]` (lower =
/// better). Requires at least 2 blocks and 2 treatments.
pub fn friedman_test(scores: &[Vec<f64>]) -> FriedmanResult {
    let b = scores.len();
    assert!(b >= 2, "Friedman needs at least two blocks");
    let k = scores[0].len();
    assert!(k >= 2, "Friedman needs at least two treatments");
    for row in scores {
        assert_eq!(row.len(), k, "ragged score matrix");
    }

    let mut rank_sums = vec![0.0f64; k];
    let mut a1 = 0.0f64;
    for row in scores {
        let ranks = average_ranks(row);
        for (j, &r) in ranks.iter().enumerate() {
            rank_sums[j] += r;
            a1 += r * r;
        }
    }
    let avg_ranks: Vec<f64> = rank_sums.iter().map(|&s| s / b as f64).collect();
    let c1 = b as f64 * k as f64 * (k as f64 + 1.0).powi(2) / 4.0;
    let mean_rank_sum = b as f64 * (k as f64 + 1.0) / 2.0;
    let ssq: f64 = rank_sums.iter().map(|&r| (r - mean_rank_sum).powi(2)).sum();
    // Conover's tie-corrected T1
    let denom = (a1 - c1).max(1e-12);
    let chi2 = (k as f64 - 1.0) * ssq / denom;
    let p_chi2 = chi2_sf(chi2, k as f64 - 1.0);
    // Iman–Davenport T2
    let t2_denom = (b as f64 * (k as f64 - 1.0) - chi2).max(1e-12);
    let f_stat = ((b as f64 - 1.0) * chi2 / t2_denom).max(0.0);
    let p_f = f_sf(f_stat, k as f64 - 1.0, (b as f64 - 1.0) * (k as f64 - 1.0));

    FriedmanResult {
        avg_ranks,
        rank_sums,
        chi2,
        p_chi2,
        f_stat,
        p_f,
        blocks: b,
        treatments: k,
        a1,
        c1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // Conover's classic grass data layout (3 treatments, strong
        // effect): treatment 0 always best, 2 always worst.
        let scores: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![1.0 + i as f64 * 0.01, 2.0, 3.0])
            .collect();
        let r = friedman_test(&scores);
        assert_eq!(r.avg_ranks, vec![1.0, 2.0, 3.0]);
        assert!(r.p_chi2 < 1e-4, "p = {}", r.p_chi2);
        assert!(r.p_f < 1e-6);
    }

    #[test]
    fn no_effect_gives_high_p() {
        // rotate which treatment wins so average ranks equalize
        let mut scores = Vec::new();
        for i in 0..9 {
            let mut row = vec![2.0, 2.0, 2.0];
            row[i % 3] = 1.0;
            row[(i + 1) % 3] = 3.0;
            scores.push(row);
        }
        let r = friedman_test(&scores);
        assert!(r.p_chi2 > 0.5, "p = {}", r.p_chi2);
        for ar in &r.avg_ranks {
            assert!((ar - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn handles_ties() {
        let scores = vec![
            vec![1.0, 1.0, 2.0],
            vec![1.0, 2.0, 2.0],
            vec![1.0, 1.5, 1.5],
            vec![3.0, 1.0, 1.0],
        ];
        let r = friedman_test(&scores);
        assert!(r.chi2.is_finite());
        assert!((0.0..=1.0).contains(&r.p_chi2));
        // rank sums must total b*k(k+1)/2 even with ties
        let total: f64 = r.rank_sums.iter().sum();
        assert!((total - 4.0 * 6.0).abs() < 1e-9);
    }

    #[test]
    fn matches_scipy_reference() {
        // scipy.stats.friedmanchisquare([85,90,78],[70,65,72],[60,62,58])
        // arranged as blocks x treatments:
        let scores = vec![
            vec![85.0, 70.0, 60.0],
            vec![90.0, 65.0, 62.0],
            vec![78.0, 72.0, 58.0],
        ];
        let r = friedman_test(&scores);
        // classic (untied) Friedman chi2 = 12/(3*3*4) * (sum R^2) - 3*3*4
        // R = [9, 6, 3] -> chi2 = (12/(3*3*4))*(81+36+9) - 36 = 42 - 36 = 6
        assert!((r.chi2 - 6.0).abs() < 1e-9, "chi2 = {}", r.chi2);
        assert!((r.p_chi2 - chi2_sf(6.0, 2.0)).abs() < 1e-12);
    }
}
