#![warn(missing_docs)]

//! `tsgb-obs`: process-wide observability for the benchmark.
//!
//! Three primitives, all std-only and all safe to call from any
//! thread:
//!
//! * **metrics** — named [counters](counter_add), [gauges](gauge_set)
//!   and [histograms](observe) with fixed log-scale buckets, stored in
//!   a process-wide registry;
//! * **spans** — [`span`] returns a guard that times a scope and
//!   records the duration as both a histogram sample and an ordered
//!   manifest event;
//! * **sinks** — [`snapshot`] reads every metric deterministically
//!   (sorted by name), and [`write_manifest`] serializes the run
//!   header, the span log, and the final metric values as JSONL.
//!
//! # The no-op contract
//!
//! Recording is **off** unless the `TSGB_OBS` environment variable is
//! set to a non-`0` value or [`set_enabled`]`(true)` was called. While
//! off, every recording entry point reduces to one relaxed atomic load
//! and a branch — no clock reads, no locks, no allocation — so
//! instrumented hot paths (one tape reset per train step, one hook per
//! epoch) stay within the <2% overhead budget of the
//! `BENCH_train.json` step probes.
//!
//! # The determinism contract
//!
//! Metrics are observed, never fed back: nothing in this crate is read
//! by any computation, so enabling recording cannot perturb results,
//! and the `parallel == serial` bit-identity contract of `tsgb-par`
//! is preserved. Recording order from worker threads is
//! nondeterministic, but counters and histogram buckets are
//! commutative sums, and [`snapshot`] sorts by name, so the *final*
//! snapshot of a deterministic workload is itself deterministic
//! (histogram f64 sums are the one exception: they may differ in the
//! last bits across thread interleavings, which is why golden tests
//! pin suite *outputs*, not metric sums).
//!
//! Environment variables:
//!
//! | variable        | effect                                         |
//! |-----------------|------------------------------------------------|
//! | `TSGB_OBS`      | `1`/`true` enables recording at startup        |
//! | `TSGB_OBS_FILE` | default path for the JSONL run manifest        |

mod manifest;
mod metrics;
mod span;

pub use manifest::{manifest_path, write_manifest};
pub use metrics::{snapshot, HistogramSnapshot, Snapshot};
pub use span::{span, span_events, Span, SpanEvent};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = not yet read from the environment, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether recording is currently enabled. The first call reads
/// `TSGB_OBS` from the environment; later calls are one relaxed load.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => init_enabled(),
        state => state == 2,
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = std::env::var("TSGB_OBS")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
        })
        .unwrap_or(false);
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Turns recording on or off for the whole process, overriding the
/// environment. Binaries that always emit a manifest (e.g.
/// `reproduce`) call `set_enabled(true)` at startup.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Adds `n` to the named monotonic counter (no-op while disabled).
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if enabled() {
        metrics::counter_add_slow(name, n);
    }
}

/// Sets the named gauge to `v`, keeping the latest value (no-op while
/// disabled).
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        metrics::gauge_set_slow(name, v);
    }
}

/// Records one sample into the named histogram (no-op while
/// disabled). Buckets are fixed powers of two over the sample's
/// magnitude; see [`HistogramSnapshot`].
#[inline]
pub fn observe(name: &str, v: f64) {
    if enabled() {
        metrics::observe_slow(name, v);
    }
}

/// Clears every metric, span event, and the run clock. Call at the
/// start of a run (or between tests) so the manifest describes one run
/// only. Does not change the enabled state.
pub fn reset() {
    metrics::reset_registry();
    span::reset_events();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Recording state is process-global; tests that toggle it must
    /// not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_recording<R>(f: impl FnOnce() -> R) -> R {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let r = f();
        set_enabled(false);
        r
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        counter_add("t.dropped", 5);
        gauge_set("t.dropped_gauge", 1.0);
        observe("t.dropped_hist", 1.0);
        set_enabled(true);
        let s = snapshot();
        set_enabled(false);
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let s = with_recording(|| {
            counter_add("t.b", 2);
            counter_add("t.a", 1);
            counter_add("t.b", 3);
            snapshot()
        });
        assert_eq!(
            s.counters,
            vec![("t.a".to_string(), 1), ("t.b".to_string(), 5)]
        );
    }

    #[test]
    fn gauge_keeps_latest() {
        let s = with_recording(|| {
            gauge_set("t.g", 1.5);
            gauge_set("t.g", -2.25);
            snapshot()
        });
        assert_eq!(s.gauges, vec![("t.g".to_string(), -2.25)]);
    }

    #[test]
    fn histogram_counts_sum_and_buckets() {
        let s = with_recording(|| {
            observe("t.h", 1.0); // exponent 0 bucket (0.5 < 1 <= 1)
            observe("t.h", 3.0); // exponent 2 bucket (2 < 3 <= 4)
            observe("t.h", 4.0); // exponent 2 bucket
            observe("t.h", 0.0); // underflow bucket
            snapshot()
        });
        let (name, h) = &s.histograms[0];
        assert_eq!(name, "t.h");
        assert_eq!(h.count, 4);
        assert!((h.sum - 8.0).abs() < 1e-12);
        let total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
        assert!(h.buckets.iter().any(|&(e, c)| e == 2 && c == 2));
    }

    #[test]
    fn spans_record_events_and_histograms() {
        let (s, events) = with_recording(|| {
            {
                let _sp = span("t.phase");
                std::hint::black_box(0u64);
            }
            (snapshot(), span_events())
        });
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "t.phase");
        assert!(events[0].ms >= 0.0);
        assert!(s
            .histograms
            .iter()
            .any(|(n, h)| n == "span.t.phase_ms" && h.count == 1));
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let s = with_recording(|| {
            std::thread::scope(|sc| {
                for _ in 0..4 {
                    sc.spawn(|| {
                        for _ in 0..1000 {
                            counter_add("t.conc", 1);
                        }
                    });
                }
            });
            snapshot()
        });
        assert_eq!(s.counters, vec![("t.conc".to_string(), 4000)]);
    }

    #[test]
    fn manifest_is_valid_jsonl() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        counter_add("t.m", 7);
        {
            let _sp = span("t.mphase");
        }
        let dir = std::env::temp_dir().join("tsgb_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.jsonl");
        write_manifest(&path, &[("seed", "7".into()), ("kind", "\"test\"".into())]).unwrap();
        set_enabled(false);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "run + span + counter lines");
        assert!(lines[0].starts_with("{\"type\":\"run\""));
        assert!(lines[0].contains("\"seed\":7"));
        assert!(text.contains("\"type\":\"span\""));
        assert!(text.contains("\"type\":\"counter\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line {l}");
        }
        std::fs::remove_file(&path).ok();
    }
}
