//! Lightweight span timers.
//!
//! A [`Span`] guard times the scope it lives in. On drop (with
//! recording enabled) it records the duration into the histogram
//! `span.<name>_ms` and appends an ordered [`SpanEvent`] to the run's
//! event log, which [`crate::write_manifest`] serializes as one JSONL
//! line per span. With recording disabled the guard is inert: no clock
//! is read and nothing is stored.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span, in completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// The span name given to [`span`].
    pub name: String,
    /// Start offset in milliseconds since the run clock started (the
    /// first recorded span of the run, or the last [`crate::reset`]).
    pub start_ms: f64,
    /// Duration in milliseconds.
    pub ms: f64,
}

struct EventLog {
    epoch: Instant,
    events: Vec<SpanEvent>,
}

fn event_log() -> &'static Mutex<Option<EventLog>> {
    static LOG: OnceLock<Mutex<Option<EventLog>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(None))
}

pub(crate) fn reset_events() {
    *event_log().lock().unwrap() = None;
}

/// Completed spans so far, in completion order.
pub fn span_events() -> Vec<SpanEvent> {
    event_log()
        .lock()
        .unwrap()
        .as_ref()
        .map(|l| l.events.clone())
        .unwrap_or_default()
}

/// Times the enclosing scope under `name`. Hold the returned guard for
/// the duration of the phase:
///
/// ```
/// {
///     let _span = tsgb_obs::span("eval.suite");
///     // ... timed work ...
/// } // recorded here
/// ```
pub fn span(name: &str) -> Span {
    Span {
        inner: crate::enabled().then(|| (name.to_string(), Instant::now())),
    }
}

/// Scope-timing guard returned by [`span`].
pub struct Span {
    /// `None` when recording was disabled at creation.
    inner: Option<(String, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, start)) = self.inner.take() else {
            return;
        };
        let end = Instant::now();
        let ms = end.duration_since(start).as_secs_f64() * 1e3;
        crate::metrics::observe_slow(&format!("span.{name}_ms"), ms);
        let mut log = event_log().lock().unwrap();
        let log = log.get_or_insert_with(|| EventLog {
            epoch: start,
            events: Vec::new(),
        });
        let start_ms = start
            .checked_duration_since(log.epoch)
            .map_or(0.0, |d| d.as_secs_f64() * 1e3);
        log.events.push(SpanEvent {
            name,
            start_ms,
            ms,
        });
    }
}
