//! The JSONL run-manifest sink.
//!
//! A manifest is one file describing one run, one JSON object per
//! line:
//!
//! ```text
//! {"type":"run","seed":7,"threads":8,...}
//! {"type":"span","name":"figure5","start_ms":0.0,"ms":8123.4}
//! {"type":"counter","name":"nn.tape.steps","value":42000}
//! {"type":"gauge","name":"train.loss.RGAN","value":0.693}
//! {"type":"histogram","name":"span.eval.suite_ms","count":12,"sum":..,"buckets":[[4,3],...]}
//! ```
//!
//! Spans appear in completion order; metrics are sorted by name, so
//! two runs of the same deterministic workload produce manifests that
//! differ only in timings.

use crate::metrics::snapshot;
use crate::span::span_events;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The manifest path requested via `TSGB_OBS_FILE`, if set.
pub fn manifest_path() -> Option<PathBuf> {
    std::env::var_os("TSGB_OBS_FILE")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes an f64 as JSON (NaN/inf have no JSON form; they are
/// emitted as null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` on a finite f64 is shortest-roundtrip, always parseable
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Writes the run manifest: one `run` header line built from
/// `run_fields` (values must already be valid JSON — quote strings
/// yourself), then every completed span in order, then a name-sorted
/// snapshot of every counter, gauge, and histogram.
pub fn write_manifest(path: &Path, run_fields: &[(&str, String)]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut out = Vec::new();

    let mut header = String::from("{\"type\":\"run\"");
    for (k, v) in run_fields {
        header.push_str(&format!(",\"{}\":{}", json_escape(k), v));
    }
    header.push('}');
    out.push(header);

    for e in span_events() {
        out.push(format!(
            "{{\"type\":\"span\",\"name\":\"{}\",\"start_ms\":{},\"ms\":{}}}",
            json_escape(&e.name),
            json_f64(e.start_ms),
            json_f64(e.ms)
        ));
    }

    let snap = snapshot();
    for (name, value) in &snap.counters {
        out.push(format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        ));
    }
    for (name, value) in &snap.gauges {
        out.push(format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            json_f64(*value)
        ));
    }
    for (name, h) in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(e, c)| format!("[{e},{c}]"))
            .collect();
        out.push(format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            json_escape(name),
            h.count,
            json_f64(h.sum),
            buckets.join(",")
        ));
    }

    let mut f = std::fs::File::create(path)?;
    for line in out {
        writeln!(f, "{line}")?;
    }
    Ok(())
}
