//! The process-wide metric registry: counters, gauges, and fixed
//! log-scale-bucket histograms.
//!
//! Registration happens lazily on first record. The slow paths here
//! are only reached while recording is enabled; the per-record cost is
//! one `HashMap` lookup under a mutex plus a handful of relaxed atomic
//! operations, which instrumented call sites keep off per-element hot
//! loops (they record per step, per epoch, or per measure).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Histogram bucket layout: one bucket per power-of-two magnitude,
/// exponent clamped to `[MIN_EXP, MAX_EXP]`. A sample `v` lands in the
/// bucket whose exponent is `ceil(log2(|v|))` — i.e. bucket `e` covers
/// `(2^(e-1), 2^e]`. Non-positive samples land in the underflow
/// bucket `MIN_EXP - 1`.
const MIN_EXP: i32 = -32;
/// See [`MIN_EXP`].
const MAX_EXP: i32 = 32;
const N_BUCKETS: usize = (MAX_EXP - MIN_EXP + 2) as usize;

pub(crate) struct Counter {
    value: AtomicU64,
}

pub(crate) struct Gauge {
    /// f64 bits.
    value: AtomicU64,
}

pub(crate) struct Histogram {
    count: AtomicU64,
    /// f64 bits, updated by compare-exchange.
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Bucket slot for a sample; slot 0 is the underflow bucket.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    // ceil(log2(v)) without libm edge surprises: log2 then ceil is
    // accurate enough for bucketing (ties at exact powers of two may
    // land one bucket up or down, which the layout tolerates).
    let e = v.log2().ceil() as i32;
    (e.clamp(MIN_EXP, MAX_EXP) - MIN_EXP + 1) as usize
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<HashMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

pub(crate) fn reset_registry() {
    registry().lock().unwrap().clear();
}

pub(crate) fn counter_add_slow(name: &str, n: u64) {
    let handle = {
        let mut reg = registry().lock().unwrap();
        match reg.get(name) {
            Some(Metric::Counter(c)) => c.clone(),
            Some(_) => return, // name already used by another kind
            None => {
                let c = Arc::new(Counter {
                    value: AtomicU64::new(0),
                });
                reg.insert(name.to_string(), Metric::Counter(c.clone()));
                c
            }
        }
    };
    handle.value.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn gauge_set_slow(name: &str, v: f64) {
    let handle = {
        let mut reg = registry().lock().unwrap();
        match reg.get(name) {
            Some(Metric::Gauge(g)) => g.clone(),
            Some(_) => return,
            None => {
                let g = Arc::new(Gauge {
                    value: AtomicU64::new(v.to_bits()),
                });
                reg.insert(name.to_string(), Metric::Gauge(g.clone()));
                g
            }
        }
    };
    handle.value.store(v.to_bits(), Ordering::Relaxed);
}

pub(crate) fn observe_slow(name: &str, v: f64) {
    let handle = {
        let mut reg = registry().lock().unwrap();
        match reg.get(name) {
            Some(Metric::Histogram(h)) => h.clone(),
            Some(_) => return,
            None => {
                let h = Arc::new(Histogram::new());
                reg.insert(name.to_string(), Metric::Histogram(h.clone()));
                h
            }
        }
    };
    handle.record(v);
}

/// Read-only view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (thread-interleaving dependent in the last
    /// bits; see the crate docs).
    pub sum: f64,
    /// `(bucket exponent, sample count)` for every non-empty bucket,
    /// ascending. Bucket `e` covers `(2^(e-1), 2^e]`; the underflow
    /// bucket (non-positive samples) is reported as `MIN_EXP - 1`.
    pub buckets: Vec<(i32, u64)>,
}

/// A deterministic (name-sorted) copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` of every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, latest value)` of every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` of every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Reads every metric, sorted by name within each kind.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().unwrap();
    let mut out = Snapshot::default();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => out
                .counters
                .push((name.clone(), c.value.load(Ordering::Relaxed))),
            Metric::Gauge(g) => out
                .gauges
                .push((name.clone(), f64::from_bits(g.value.load(Ordering::Relaxed)))),
            Metric::Histogram(h) => {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let c = b.load(Ordering::Relaxed);
                        (c > 0).then_some((MIN_EXP - 1 + i as i32, c))
                    })
                    .collect();
                out.histograms.push((
                    name.clone(),
                    HistogramSnapshot {
                        count: h.count.load(Ordering::Relaxed),
                        sum: f64::from_bits(h.sum.load(Ordering::Relaxed)),
                        buckets,
                    },
                ));
            }
        }
    }
    out.counters.sort_by(|a, b| a.0.cmp(&b.0));
    out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    out
}
