//! Bench: training time of every method (the Figure-5 M8 row) on a
//! Stock-shaped dataset at reduced scale. The relative ordering —
//! VAEs/flows fast, adversarial and ODE methods slow — is the paper's
//! training-efficiency finding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsgb_data::spec::{DatasetId, DatasetSpec};
use tsgb_linalg::rng::seeded;
use tsgb_methods::common::{MethodId, TrainConfig};

fn bench_fit(c: &mut Criterion) {
    let data = DatasetSpec::get(DatasetId::Stock)
        .scaled(48)
        .with_max_len(12)
        .materialize(7);
    let cfg = TrainConfig {
        epochs: 5,
        hidden: 8,
        ..TrainConfig::fast()
    };
    let mut group = c.benchmark_group("fit_5_epochs");
    group.sample_size(10);
    for mid in MethodId::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(mid.name()), &mid, |b, &mid| {
            b.iter(|| {
                let mut rng = seeded(11);
                let mut m = mid.create(data.train.seq_len(), data.train.features());
                m.fit(&data.train, &cfg, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_generate(c: &mut Criterion) {
    let data = DatasetSpec::get(DatasetId::Stock)
        .scaled(48)
        .with_max_len(12)
        .materialize(7);
    let cfg = TrainConfig {
        epochs: 3,
        hidden: 8,
        ..TrainConfig::fast()
    };
    let mut group = c.benchmark_group("generate_64");
    group.sample_size(10);
    for mid in MethodId::ALL {
        let mut rng = seeded(13);
        let mut m = mid.create(data.train.seq_len(), data.train.features());
        m.fit(&data.train, &cfg, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(mid.name()), &mid, |b, _| {
            b.iter(|| {
                let mut rng = seeded(17);
                m.generate(64, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_generate);
criterion_main!(benches);
