//! Bench: the §4.1 preprocessing pipeline (Table 3's production step)
//! plus the DESIGN.md ablation of stride-1 overlapping windows vs
//! disjoint windows and ACF-based vs fixed window-length selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsgb_data::pipeline::{Pipeline, WindowLength};
use tsgb_data::spec::{DatasetId, DatasetSpec};
use tsgb_eval::feature_based;
use tsgb_linalg::rng::seeded;
use tsgb_linalg::Matrix;
use tsgb_signal::window;

fn periodic_raw(len: usize, n: usize) -> Matrix {
    Matrix::from_fn(len, n, |t, f| {
        (std::f64::consts::TAU * t as f64 / 24.0 + f as f64).sin() + 0.1 * f as f64
    })
}

fn bench_pipeline_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    for &len in &[512usize, 2048] {
        let raw = periodic_raw(len, 6);
        let fixed = Pipeline {
            window: WindowLength::Fixed(24),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("fixed_l24", len), &raw, |b, raw| {
            b.iter(|| fixed.run(raw, "bench", 7))
        });
        let auto = Pipeline::default();
        group.bench_with_input(BenchmarkId::new("acf_auto_l", len), &raw, |b, raw| {
            b.iter(|| auto.run(raw, "bench", 7))
        });
    }
    group.finish();
}

/// Ablation: stride-1 overlapping windows (the paper's choice) vs
/// disjoint windows. Reports window counts and the downstream ACD a
/// generator-free baseline (resampled windows) achieves — overlap
/// yields far more training windows at equal raw length.
fn bench_stride_ablation(c: &mut Criterion) {
    let raw = periodic_raw(1024, 3);
    let mut group = c.benchmark_group("stride_ablation");
    for &stride in &[1usize, 24] {
        group.bench_with_input(BenchmarkId::new("segment", stride), &stride, |b, &s| {
            b.iter(|| window::sliding_windows(&raw, 24, s))
        });
    }
    group.finish();

    // printed summary (shape evidence for DESIGN.md ablation 2)
    let overlapping = window::sliding_windows(&raw, 24, 1);
    let disjoint = window::sliding_windows(&raw, 24, 24);
    let mut rng = seeded(3);
    let resampled = {
        use tsgb_rand::Rng;
        let idx: Vec<usize> = (0..disjoint.samples())
            .map(|_| rng.gen_range(0..overlapping.samples()))
            .collect();
        overlapping.select_samples(&idx)
    };
    println!(
        "stride ablation: stride1 R = {}, disjoint R = {}, ACD(disjoint vs resampled-overlap) = {:.4}",
        overlapping.samples(),
        disjoint.samples(),
        feature_based::acd(&disjoint, &resampled),
    );
}

fn bench_materialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialize");
    group.sample_size(10);
    for id in [DatasetId::Stock, DatasetId::Energy, DatasetId::Boiler] {
        let spec = DatasetSpec::get(id).scaled(128).with_max_len(24);
        group.bench_function(spec.name, |b| b.iter(|| spec.materialize(7)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_run,
    bench_stride_ablation,
    bench_materialize
);
criterion_main!(benches);
