//! Ablation bench (DESIGN.md #4): fixed-step Euler vs RK4 in GT-GAN's
//! continuous-time blocks. RK4 costs four ODE-function evaluations per
//! substep against Euler's one; the paper's adaptive solvers sit
//! between the two in cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsgb_data::spec::{DatasetId, DatasetSpec};
use tsgb_linalg::rng::seeded;
use tsgb_methods::common::{TrainConfig, TsgMethod};
use tsgb_methods::gtgan::{GtGan, OdeSolver};

fn bench_solvers(c: &mut Criterion) {
    let data = DatasetSpec::get(DatasetId::Stock)
        .scaled(32)
        .with_max_len(12)
        .materialize(7);
    let cfg = TrainConfig {
        epochs: 3,
        hidden: 8,
        ..TrainConfig::fast()
    };
    let mut group = c.benchmark_group("gtgan_solver");
    group.sample_size(10);
    for (name, solver) in [("euler", OdeSolver::Euler), ("rk4", OdeSolver::Rk4)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &solver, |b, &solver| {
            b.iter(|| {
                let mut rng = seeded(21);
                let mut m =
                    GtGan::new(data.train.seq_len(), data.train.features()).with_solver(solver);
                m.fit(&data.train, &cfg, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
