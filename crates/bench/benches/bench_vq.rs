//! Ablation bench (DESIGN.md #5): TimeVQVAE codebook size and EMA
//! decay. Larger codebooks reconstruct better but cost more per
//! nearest-code search; slower EMA decay stabilizes codes at the price
//! of adaptation speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsgb_data::spec::{DatasetId, DatasetSpec};
use tsgb_linalg::rng::seeded;
use tsgb_methods::common::{TrainConfig, TsgMethod};
use tsgb_methods::timevqvae::TimeVqVae;

fn bench_codebook_size(c: &mut Criterion) {
    let data = DatasetSpec::get(DatasetId::Energy)
        .scaled(32)
        .with_max_len(24)
        .materialize(7);
    let cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::fast()
    };
    let mut group = c.benchmark_group("vq_codebook");
    group.sample_size(10);
    for &codes in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("codes", codes), &codes, |b, &codes| {
            b.iter(|| {
                let mut rng = seeded(31);
                let mut m = TimeVqVae::new(data.train.seq_len(), data.train.features())
                    .with_codebook(codes, 0.97);
                m.fit(&data.train, &cfg, &mut rng)
            })
        });
    }
    group.finish();

    // quality side of the ablation, printed once: final VQ loss per size
    for &codes in &[8usize, 32, 128] {
        let mut rng = seeded(31);
        let mut m =
            TimeVqVae::new(data.train.seq_len(), data.train.features()).with_codebook(codes, 0.97);
        let report = m.fit(
            &data.train,
            &TrainConfig {
                epochs: 40,
                ..TrainConfig::fast()
            },
            &mut rng,
        );
        println!(
            "vq ablation: codes = {codes:>4}, final loss = {:.5}",
            report.final_loss()
        );
    }
}

fn bench_ema_decay(c: &mut Criterion) {
    let data = DatasetSpec::get(DatasetId::Energy)
        .scaled(32)
        .with_max_len(24)
        .materialize(7);
    let cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::fast()
    };
    let mut group = c.benchmark_group("vq_ema");
    group.sample_size(10);
    for &decay in &[0.8f64, 0.97, 0.995] {
        group.bench_with_input(
            BenchmarkId::new("decay", format!("{decay}")),
            &decay,
            |b, &decay| {
                b.iter(|| {
                    let mut rng = seeded(33);
                    let mut m = TimeVqVae::new(data.train.seq_len(), data.train.features())
                        .with_codebook(32, decay);
                    m.fit(&data.train, &cfg, &mut rng)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codebook_size, bench_ema_decay);
criterion_main!(benches);
