//! Bench: cost of each evaluation measure (the paper's §4.2 argument
//! for distance-based measures: ED/DTW are deterministic and orders of
//! magnitude cheaper than the post-hoc-trained DS/PS).

use criterion::{criterion_group, criterion_main, Criterion};
use tsgb_data::sine::sine_dataset;
use tsgb_eval::distance;
use tsgb_eval::feature_based;
use tsgb_eval::model_based::{self, PostHocConfig, PsVariant};
use tsgb_linalg::rng::seeded;

fn bench_measures(c: &mut Criterion) {
    let mut rng = seeded(5);
    let a = sine_dataset(128, 24, 5, &mut rng);
    let b = sine_dataset(128, 24, 5, &mut rng);

    let mut group = c.benchmark_group("measures");
    group.sample_size(10);
    group.bench_function("ED", |bch| bch.iter(|| distance::ed(&a, &b)));
    group.bench_function("DTW", |bch| bch.iter(|| distance::dtw(&a, &b)));
    group.bench_function("MDD", |bch| bch.iter(|| feature_based::mdd(&a, &b)));
    group.bench_function("ACD", |bch| bch.iter(|| feature_based::acd(&a, &b)));
    group.bench_function("SD", |bch| bch.iter(|| feature_based::sd(&a, &b)));
    group.bench_function("KD", |bch| bch.iter(|| feature_based::kd(&a, &b)));

    let post_hoc = PostHocConfig {
        hidden: 8,
        epochs: 20,
    };
    group.bench_function("DS(post-hoc)", |bch| {
        bch.iter(|| {
            let mut r = seeded(9);
            model_based::discriminative_score(&a, &b, &post_hoc, &mut r)
        })
    });
    group.bench_function("PS(post-hoc)", |bch| {
        bch.iter(|| {
            let mut r = seeded(9);
            model_based::predictive_score(&a, &b, PsVariant::NextStep, &post_hoc, &mut r)
        })
    });
    group.bench_function("C-FID(post-hoc)", |bch| {
        bch.iter(|| {
            let mut r = seeded(9);
            model_based::contextual_fid(&a, &b, 6, 20, &mut r)
        })
    });
    group.finish();
}

fn bench_dtw_scaling(c: &mut Criterion) {
    // DTW is O(l^2) per pair; show the Table-3 length spread
    let mut group = c.benchmark_group("dtw_by_length");
    group.sample_size(10);
    for &l in &[24usize, 125, 192] {
        let mut rng = seeded(7);
        let a = sine_dataset(32, l, 5, &mut rng);
        let b = sine_dataset(32, l, 5, &mut rng);
        group.bench_function(format!("l{l}"), |bch| bch.iter(|| distance::dtw(&a, &b)));
    }
    group.finish();
}

criterion_group!(benches, bench_measures, bench_dtw_scaling);
criterion_main!(benches);
