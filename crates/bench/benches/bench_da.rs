//! Bench: one Figure-7 domain-adaptation scenario end to end
//! (materialize → train → generate → evaluate), for the methods the
//! paper highlights as efficient enough for DA deployment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsgb_data::domain::{DaScale, DaScenario, DaTask};
use tsgb_eval::suite::EvalConfig;
use tsgb_methods::common::{MethodId, TrainConfig};
use tsgbench::runner::Benchmark;

fn bench_da_scenarios(c: &mut Criterion) {
    let task = &DaTask::all()[0]; // HAPT U14 -> U0
    let scale = DaScale {
        source_windows: 32,
        his_windows: 8,
        gt_windows: 32,
        max_l: 16,
    };
    let data = task.materialize(&scale, 7);

    let mut bench = Benchmark::quick();
    bench.train_cfg = TrainConfig {
        epochs: 5,
        hidden: 8,
        ..TrainConfig::fast()
    };
    bench.eval_cfg = EvalConfig::deterministic_only();

    let mut group = c.benchmark_group("da_scenario");
    group.sample_size(10);
    for mid in [MethodId::TimeVae, MethodId::RtsGan, MethodId::Ls4] {
        for scenario in DaScenario::ALL {
            group.bench_with_input(
                BenchmarkId::new(mid.name(), scenario.label()),
                &(mid, scenario),
                |b, &(mid, scenario)| b.iter(|| bench.run_da_scenario(mid, &data, scenario)),
            );
        }
    }
    group.finish();
}

fn bench_da_materialize(c: &mut Criterion) {
    let scale = DaScale::fast();
    let mut group = c.benchmark_group("da_materialize");
    group.sample_size(10);
    for task in DaTask::all().into_iter().step_by(4) {
        group.bench_function(task.label(), |b| b.iter(|| task.materialize(&scale, 7)));
    }
    group.finish();
}

criterion_group!(benches, bench_da_scenarios, bench_da_materialize);
criterion_main!(benches);
