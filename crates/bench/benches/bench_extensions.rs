//! Bench: the four extension methods' training cost next to RGAN (the
//! closest benchmarked relative), plus the signature and Sinkhorn
//! substrates in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsgb_data::spec::{DatasetId, DatasetSpec};
use tsgb_eval::mmd;
use tsgb_linalg::rng::seeded;
use tsgb_linalg::Matrix;
use tsgb_methods::common::{MethodId, TrainConfig};
use tsgb_signal::signature::{signature, time_augment};

fn bench_extension_fit(c: &mut Criterion) {
    let data = DatasetSpec::get(DatasetId::Stock)
        .scaled(32)
        .with_max_len(12)
        .materialize(7);
    let cfg = TrainConfig {
        epochs: 4,
        hidden: 8,
        ..TrainConfig::fast()
    };
    let mut group = c.benchmark_group("extension_fit");
    group.sample_size(10);
    let roster: Vec<MethodId> = std::iter::once(MethodId::Rgan)
        .chain(MethodId::EXTENDED)
        .collect();
    for mid in roster {
        group.bench_with_input(BenchmarkId::from_parameter(mid.name()), &mid, |b, &mid| {
            b.iter(|| {
                let mut rng = seeded(41);
                let mut m = mid.create(data.train.seq_len(), data.train.features());
                m.fit(&data.train, &cfg, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_signature(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature");
    for &(l, d) in &[(24usize, 3usize), (125, 3), (24, 6)] {
        let path = Matrix::from_fn(l, d, |t, f| ((t * (f + 1)) as f64 * 0.1).sin());
        let aug = time_augment(&path);
        group.bench_function(format!("depth2_l{l}_d{d}"), |b| {
            b.iter(|| signature(&aug, 2))
        });
        group.bench_function(format!("depth3_l{l}_d{d}"), |b| {
            b.iter(|| signature(&aug, 3))
        });
    }
    group.finish();
}

fn bench_mmd(c: &mut Criterion) {
    let data = DatasetSpec::get(DatasetId::Stock)
        .scaled(64)
        .with_max_len(16)
        .materialize(9);
    let mut group = c.benchmark_group("mmd");
    group.sample_size(10);
    group.bench_function("mmd2_64x64", |b| {
        b.iter(|| mmd::mmd2(&data.train, &data.train))
    });
    group.finish();
}

criterion_group!(benches, bench_extension_fit, bench_signature, bench_mmd);
criterion_main!(benches);
