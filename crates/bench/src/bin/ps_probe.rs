//! `ps_probe` — a diagnostic for the paper's §6.3 finding that the
//! Predictive Score depends heavily on its post-hoc training budget.
//!
//! Trains the PS forecaster at increasing capacity/epoch budgets on
//! the Table-4 sine data and prints the MAE trajectory. The
//! "predict-zero" floor for `sin` values in [-1, 1] is
//! `E|sin| = 2/pi ≈ 0.637`; scores near it mean the post-hoc model has
//! not converged — exactly the unreliability the paper attributes to
//! PS (and the motivation for the distance-based measures).
//!
//! ```text
//! cargo run -p tsgb-bench --release --bin ps_probe
//! ```

use tsgb_data::sine::sine_dataset;
use tsgb_eval::model_based::{predictive_score, PostHocConfig, PsVariant};
use tsgb_linalg::rng::seeded;

fn main() {
    let mut rng = seeded(5);
    let a = sine_dataset(500, 24, 5, &mut rng);
    let b = sine_dataset(500, 24, 5, &mut rng);
    println!(
        "predict-zero MAE floor for sin data: {:.4}",
        2.0 / std::f64::consts::PI
    );
    for (h, e) in [(8, 60), (16, 300), (24, 800), (32, 1500)] {
        let cfg = PostHocConfig {
            hidden: h,
            epochs: e,
        };
        let mut r = seeded(9);
        let ps = predictive_score(&a, &b, PsVariant::NextStep, &cfg, &mut r);
        println!("hidden {h:>2} epochs {e:>4}: PS = {ps:.4}");
    }
}
