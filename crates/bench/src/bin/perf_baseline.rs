//! `perf_baseline` — dependency-free perf probe for the parallel
//! runtime. Times the blocked matmul kernels at several sizes, the
//! cached MMD estimator, and the deterministic-only evaluation suite —
//! each once with the pool forced to one thread and once with the
//! machine default — verifies the two results are bit-identical, and
//! writes the timings to `BENCH_baseline.json`. It also times the
//! accelerated eval kernels (Barnes-Hut t-SNE, banded DTW) against
//! their exact counterparts and asserts the recorded speedup floors.
//!
//! It also runs the GRU / LSTM train-step probes twice — once on the
//! interpreted recycled tape (`begin_step(false)`) and once through
//! the compiled execution plan (`begin_step(true)`, record-once /
//! replay-many) — asserts the two leave **bit-identical weights**
//! after the full run, asserts the plan replays with zero steady-state
//! pool misses, checks the plan beats the recorded interpreter
//! reference by the ≥1.5× floor, and writes both timings plus the
//! plan lifecycle counters to `BENCH_train.json`. Build with
//! `--features alloc-count` to additionally report steady-state heap
//! allocations per step.
//!
//! It also probes the incremental eval engine: the full
//! `EvalConfig::fast()` suite runs cold (empty `EvalCache`), then
//! again warm with an identical RNG stream — the warm run must be
//! bit-identical, serve every measure from the cache, and beat the
//! cold run by the ≥5× floor recorded in `BENCH_eval.json`.
//!
//! ```text
//! cargo run -p tsgb-bench --release --bin perf_baseline
//! cargo run -p tsgb-bench --release --features alloc-count --bin perf_baseline
//! ```

use std::time::Instant;
use tsgb_eval::distance::dtw_with_band;
use tsgb_eval::mmd::mmd2;
use tsgb_eval::suite::{evaluate, evaluate_cached, EvalConfig};
use tsgb_evalcache::EvalCache;
use tsgb_eval::tsne::{tsne, TsneConfig, TsneMode};
use tsgb_linalg::rng::{randn_matrix, seeded, uniform_matrix};
use tsgb_linalg::{Matrix, Tensor3};
use tsgb_nn::layers::{GruCell, Linear, LstmCell};
use tsgb_nn::loss;
use tsgb_nn::optim::Adam;
use tsgb_nn::params::Params;
use tsgb_nn::tape::Tape;
use tsgb_rand::Rng;

/// Pre-recycling reference timings (ms, best-of-280 on the reference
/// machine, commit afa9f85): fresh `Tape::new()` per step, unfused
/// Linear/GRU/LSTM graphs. The train probes below run the identical
/// workload through the recycled + fused path.
const PRE_GRU_TRAIN_STEP_MS: f64 = 8.7983;
const PRE_LSTM_TRAIN_STEP_MS: f64 = 11.7974;

/// Recorded interpreter-path timings (ms, best-of-300 on the reference
/// machine): the `best_ms` the last pre-plan run wrote to
/// `BENCH_train.json` (recycled tape, per-node op dispatch). The
/// compiled plan must replay the identical step at least
/// [`PLAN_SPEEDUP_FLOOR`]× faster with bit-identical weights.
const PRE_PLAN_GRU_TRAIN_STEP_MS: f64 = 2.436265;
const PRE_PLAN_LSTM_TRAIN_STEP_MS: f64 = 3.711341;
const PLAN_SPEEDUP_FLOOR: f64 = 1.5;

/// Recorded band-kernel timing (ms) for the `matmul_256` triple
/// (matmul + t_matmul + matmul_t at 256², serial, best-of-3 on the
/// reference machine): the `serial_ms` the last pre-packed run wrote
/// to `BENCH_baseline.json`. The packed-GEMM probe below must beat it
/// by its recorded floor.
const PRE_BAND_MATMUL_256_MS: f64 = 15.640104;

struct Probe {
    name: String,
    serial_ms: f64,
    parallel_ms: f64,
}

impl Probe {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms.max(1e-9)
    }
}

/// Times `f` serially (pool forced to 1) and with the default pool,
/// asserting the two results agree bit for bit. The serial and
/// parallel reps are interleaved so clock-frequency and scheduler
/// drift lands on both sides equally; each side keeps its best.
fn probe(name: &str, reps: usize, f: impl Fn() -> Vec<f64>) -> Probe {
    let mut serial_ms = f64::INFINITY;
    let mut parallel_ms = f64::INFINITY;
    let mut serial = Vec::new();
    let mut parallel = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        serial = tsgb_par::with_threads(1, &f);
        serial_ms = serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        parallel = f();
        parallel_ms = parallel_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let same = serial.len() == parallel.len()
        && serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "{name}: parallel result differs from serial");
    Probe {
        name: name.to_string(),
        serial_ms,
        parallel_ms,
    }
}

/// An exact-kernel vs accelerated-kernel timing (same workload, same
/// answer semantics — not the serial/parallel split of [`Probe`]).
struct KernelProbe {
    name: &'static str,
    baseline_ms: f64,
    accelerated_ms: f64,
    /// Recorded acceptance floor for the speedup.
    floor: f64,
    /// What exactly was timed (phase, knob settings).
    detail: String,
}

impl KernelProbe {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.accelerated_ms.max(1e-9)
    }
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Reads the optimize-phase span an obs-enabled `tsne` run recorded.
fn optimize_span_ms() -> f64 {
    let snap = tsgb_obs::snapshot();
    snap.histograms
        .iter()
        .find(|(n, _)| n == "span.eval.tsne.optimize_ms")
        .map(|(_, h)| h.sum)
        .expect("tsne optimize span recorded")
}

/// Exact vs Barnes-Hut t-SNE at n=500 joint points, and exact vs
/// banded (band = l/8) DTW at l=256 — the two eval kernels
/// `tsgb-index` accelerates.
fn kernel_probes() -> Vec<KernelProbe> {
    let mut out = Vec::new();

    {
        // 500 flattened windows from two seeded populations. Both
        // engines share the identical O(n²·d) affinity setup, so the
        // probe times the gradient-optimization phase — the kernel the
        // quadtree replaces — via the per-phase obs spans.
        let mut rng = seeded(7);
        let x = Matrix::from_fn(500, 32, |r, _| {
            let center = if r < 250 { 0.0 } else { 4.0 };
            center + rng.gen_range(-1.0f64..1.0)
        });
        let exact_cfg = TsneConfig {
            mode: TsneMode::Exact,
            ..TsneConfig::default()
        };
        let bh_cfg = TsneConfig {
            mode: TsneMode::BarnesHut,
            theta: 0.9,
            perplexity: 12.0,
            ..TsneConfig::default()
        };
        // the BH embedding must be bit-identical serial vs pooled
        let bh_serial: Vec<u64> = tsgb_par::with_threads(1, || {
            let mut r = seeded(8);
            tsne(&x, &bh_cfg, &mut r).as_slice().iter().map(|v| v.to_bits()).collect()
        });
        tsgb_obs::set_enabled(true);
        let mut bh_ms = f64::INFINITY;
        let mut exact_ms = f64::INFINITY;
        for _ in 0..3 {
            tsgb_obs::reset();
            let mut r = seeded(8);
            let bh = tsne(&x, &bh_cfg, &mut r);
            bh_ms = bh_ms.min(optimize_span_ms());
            let same = bh
                .as_slice()
                .iter()
                .zip(&bh_serial)
                .all(|(v, &b)| v.to_bits() == b);
            assert!(same, "tsne_bh: pooled embedding differs from serial");
            tsgb_obs::reset();
            let mut r = seeded(8);
            let _ = tsne(&x, &exact_cfg, &mut r);
            exact_ms = exact_ms.min(optimize_span_ms());
        }
        tsgb_obs::set_enabled(false);
        tsgb_obs::reset();
        out.push(KernelProbe {
            name: "tsne_exact_vs_bh_500",
            baseline_ms: exact_ms,
            accelerated_ms: bh_ms,
            floor: 3.0,
            detail: "optimize-phase span, 250 iters, n=500 d=32; BH theta=0.9 perplexity=12"
                .into(),
        });
    }

    {
        let mut rng = seeded(9);
        let a = Tensor3::from_fn(40, 256, 2, |_, _, _| rng.gen_range(-1.0f64..1.0));
        let b = Tensor3::from_fn(40, 256, 2, |_, _, _| rng.gen_range(-1.0f64..1.0));
        let exact_ms = best_of(3, || {
            std::hint::black_box(dtw_with_band(&a, &b, None));
        });
        let banded_ms = best_of(3, || {
            std::hint::black_box(dtw_with_band(&a, &b, Some(256 / 8)));
        });
        out.push(KernelProbe {
            name: "dtw_banded_256",
            baseline_ms: exact_ms,
            accelerated_ms: banded_ms,
            floor: 2.0,
            detail: "M12 DTW measure, 40x40 pairs, l=256 f=2, band=32 (l/8)".into(),
        });
    }

    {
        // Packed vs band GEMM: the same matmul/t_matmul/matmul_t
        // triple the matmul_{size} probes time, with the path forced
        // per side via the thread-local override. At 256 the band side
        // is the recorded pre-packed baseline (the matmul_256
        // serial_ms the band kernels last wrote), so the floor guards
        // the packed rewrite against the recorded reference; at 512
        // both sides run live.
        use tsgb_linalg::gemm::{with_gemm_mode, GemmMode};
        for &(size, name, recorded, floor) in &[
            (
                256usize,
                "gemm_256_packed_vs_band",
                Some(PRE_BAND_MATMUL_256_MS),
                3.0,
            ),
            (512, "gemm_512_packed_vs_band", None, 2.0),
        ] {
            let mut rng = seeded(size as u64);
            let a = uniform_matrix(size, size, -1.0, 1.0, &mut rng);
            let b = uniform_matrix(size, size, -1.0, 1.0, &mut rng);
            let triple = |mode: GemmMode| -> Vec<f64> {
                with_gemm_mode(mode, || {
                    tsgb_par::with_threads(1, || {
                        let c = a.matmul(&b);
                        let t = a.t_matmul(&b);
                        let m = a.matmul_t(&b);
                        vec![c.frobenius_norm(), t.frobenius_norm(), m.frobenius_norm()]
                    })
                })
            };
            // the packed path must agree with the band path bit for bit
            let packed_norms = triple(GemmMode::Packed);
            let band_norms = triple(GemmMode::Band);
            let same = packed_norms
                .iter()
                .zip(&band_norms)
                .all(|(p, q)| p.to_bits() == q.to_bits());
            assert!(same, "{name}: packed result differs from band");
            let reps = if size <= 256 { 5 } else { 3 };
            let packed_ms = best_of(reps, || {
                std::hint::black_box(triple(GemmMode::Packed));
            });
            let band_ms = recorded.unwrap_or_else(|| {
                best_of(reps, || {
                    std::hint::black_box(triple(GemmMode::Band));
                })
            });
            // 3 products of 2·size³ flops each
            let gflops = 3.0 * 2.0 * (size as f64).powi(3) / (packed_ms * 1e-3) / 1e9;
            out.push(KernelProbe {
                name,
                baseline_ms: band_ms,
                accelerated_ms: packed_ms,
                floor,
                detail: format!(
                    "matmul+t_matmul+matmul_t triple at {size}x{size}, serial; band side {}; packed {gflops:.1} GFLOP/s",
                    if recorded.is_some() { "recorded pre-packed baseline" } else { "timed live" },
                ),
            });
        }
    }

    out
}

/// Floor for the warm-over-cold eval-suite speedup: a warm cache
/// serves every measure (including the model-based fits) from its
/// content-addressed entries, so a re-evaluation of unchanged inputs
/// must cost a small fraction of the cold run.
const EVAL_CACHE_SPEEDUP_FLOOR: f64 = 5.0;

struct EvalCacheProbe {
    cold_ms: f64,
    warm_ms: f64,
    hits: u64,
    misses: u64,
    bytes: u64,
}

impl EvalCacheProbe {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.warm_ms.max(1e-9)
    }
}

/// Cold-vs-warm incremental evaluation: the full `EvalConfig::fast()`
/// suite (model-based + deterministic measures) on the shared sines
/// workload, once against an empty cache and once warm with an
/// identical RNG stream. The warm scores must be bit-identical and
/// rebuild nothing.
fn eval_cache_probe(x: &Tensor3, y: &Tensor3) -> EvalCacheProbe {
    let cfg = EvalConfig::fast();
    let cache = EvalCache::in_memory();
    let t0 = Instant::now();
    let cold = evaluate_cached(x, y, &cfg, &mut seeded(21), &cache);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let after_cold = cache.stats();
    assert_eq!(after_cold.hits, 0, "eval_cache: a cold run cannot hit");
    let mut warm_ms = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let warm = evaluate_cached(x, y, &cfg, &mut seeded(21), &cache);
        warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let same = cold.iter().zip(warm.iter()).all(|((ma, sa), (mb, sb))| {
            ma == mb
                && sa.mean.to_bits() == sb.mean.to_bits()
                && sa.std.to_bits() == sb.std.to_bits()
        });
        assert!(same, "eval_cache: warm scores differ from cold");
    }
    let stats = cache.stats();
    assert_eq!(
        stats.misses, after_cold.misses,
        "eval_cache: warm runs must not rebuild anything"
    );
    EvalCacheProbe {
        cold_ms,
        warm_ms,
        hits: stats.hits,
        misses: stats.misses,
        bytes: stats.bytes,
    }
}

fn sines(r: usize, seed: u64) -> Tensor3 {
    let mut rng = seeded(seed);
    Tensor3::from_fn(r, 16, 2, |_, t, _| {
        let phase: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
        0.5 + 0.4 * (0.7 * t as f64 + phase).sin()
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Scans a previously written `BENCH_train.json` for the raw token of
/// `"key": <token>` inside the probe object named `name`. Std-only
/// string scan — the file is machine-written, one probe per line.
fn recorded_train_field(prev: &str, name: &str, key: &str) -> Option<String> {
    let probe_at = prev.find(&format!("\"name\": \"{name}\""))?;
    let obj = &prev[probe_at..prev[probe_at..].find('}').map(|e| probe_at + e)?];
    let field_at = obj.find(&format!("\"{key}\":"))?;
    let tail = obj[field_at..].split_once(':')?.1;
    let token = tail.split([',', '}']).next()?.trim();
    (!token.is_empty()).then(|| token.to_string())
}

/// One plan-vs-tape train-step probe over a `(BATCH, SEQ, FEATURES)`
/// sequence workload: the same seeded run executed once on the
/// interpreted recycled tape and once through the compiled plan.
/// `best_ms` is the plan-mode figure; the allocation figure is `None`
/// without the `alloc-count` feature.
struct TrainProbe {
    name: &'static str,
    best_ms: f64,
    tape_ms: f64,
    pre_plan_ms: f64,
    pre_ms: f64,
    allocs_per_step: Option<u64>,
    pool_misses: u64,
    /// Pool misses over the final 100 (steady-state) plan steps.
    steady_misses: u64,
    /// Plan lifecycle `(captures, replays, invalidations)`.
    stats: (u64, u64, u64),
}

impl TrainProbe {
    fn speedup(&self) -> f64 {
        self.pre_ms / self.best_ms.max(1e-9)
    }
    /// Speedup over the recorded interpreter reference — the ≥1.5×
    /// acceptance figure.
    fn plan_speedup(&self) -> f64 {
        self.pre_plan_ms / self.best_ms.max(1e-9)
    }
}

const BATCH: usize = 32;
const SEQ: usize = 24;
const FEATURES: usize = 4;
const HIDDEN: usize = 32;
const TRAIN_STEPS: usize = 300;
const WARMUP: usize = 20;

/// Times `step(tape, params)` over [`TRAIN_STEPS`] iterations on one
/// recycled tape with the plan gate set to `plan`, reporting the best
/// post-warmup wall time (step boundary + forward + backward +
/// optimizer) plus the steady-state allocation and pool-miss rates
/// over the final 100 steps.
fn train_run(
    plan: bool,
    params: &mut Params,
    tape: &mut Tape,
    mut step: impl FnMut(&mut Tape, &mut Params),
) -> (f64, u64, Option<u64>) {
    let mut best = f64::INFINITY;
    let mut allocs_at = None;
    let mut misses_at = 0;
    for s in 0..TRAIN_STEPS {
        if s == TRAIN_STEPS - 100 {
            allocs_at = tsgb_bench::allocations();
            misses_at = tape.pool_misses();
        }
        let t0 = Instant::now();
        tape.begin_step(plan);
        step(tape, params);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        if s >= WARMUP {
            best = best.min(dt);
        }
    }
    let allocs_per_step = tsgb_bench::allocations()
        .zip(allocs_at)
        .map(|(end, start)| (end - start) / 100);
    (best, tape.pool_misses() - misses_at, allocs_per_step)
}

/// Asserts every parameter of `a` and `b` agrees bit for bit — the
/// `fresh_tapes`-style equivalence gate between the interpreted and
/// compiled runs.
fn assert_params_bitwise(name: &str, a: &Params, b: &Params) {
    for id in a.ids() {
        let same = a
            .value(id)
            .as_slice()
            .iter()
            .zip(b.value(id).as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(
            same,
            "{name}: compiled-plan weights diverge from the interpreted tape at {}",
            a.name(id)
        );
    }
}

/// The outcome of one seeded GRU/LSTM training run (300 Adam steps).
struct TrainRun {
    best_ms: f64,
    steady_misses: u64,
    allocs_per_step: Option<u64>,
    pool_misses: u64,
    stats: (u64, u64, u64),
    params: Params,
}

/// One seeded GRU training run: identical workload and init to the
/// pre-change reference, stepping via `begin_step(plan)`.
fn gru_run(plan: bool) -> TrainRun {
    let mut rng = seeded(42);
    let xs: Vec<Matrix> = (0..SEQ)
        .map(|_| randn_matrix(BATCH, FEATURES, &mut rng))
        .collect();
    let target = randn_matrix(BATCH, FEATURES, &mut rng);
    let mut p = Params::new();
    let cell = GruCell::new(&mut p, "g", FEATURES, HIDDEN, &mut rng);
    let head = Linear::new(&mut p, "h", HIDDEN, FEATURES, &mut rng);
    let mut opt = Adam::new(1e-3);
    let mut tape = Tape::new();
    let mut binding = p.bind(&mut tape);
    let (best_ms, steady_misses, allocs_per_step) =
        train_run(plan, &mut p, &mut tape, |t, p| {
            p.rebind(t, &mut binding);
            let mut h = t.zeros(BATCH, HIDDEN);
            for x in &xs {
                let xv = t.constant_copy(x);
                h = cell.step(t, &binding, xv, h);
            }
            let pred = head.forward(t, &binding, h);
            let l = loss::mse_mean(t, pred, &target);
            t.backward(l);
            p.absorb_grads(t, &binding);
            opt.step(p);
        });
    TrainRun {
        best_ms,
        steady_misses,
        allocs_per_step,
        pool_misses: tape.pool_misses(),
        stats: tape.plan_stats(),
        params: p,
    }
}

/// One seeded LSTM training run, mirroring [`gru_run`].
fn lstm_run(plan: bool) -> TrainRun {
    let mut rng = seeded(42);
    let xs: Vec<Matrix> = (0..SEQ)
        .map(|_| randn_matrix(BATCH, FEATURES, &mut rng))
        .collect();
    let target = randn_matrix(BATCH, FEATURES, &mut rng);
    let mut p = Params::new();
    let cell = LstmCell::new(&mut p, "l", FEATURES, HIDDEN, &mut rng);
    let head = Linear::new(&mut p, "h2", HIDDEN, FEATURES, &mut rng);
    let mut opt = Adam::new(1e-3);
    let mut tape = Tape::new();
    let mut binding = p.bind(&mut tape);
    let (best_ms, steady_misses, allocs_per_step) =
        train_run(plan, &mut p, &mut tape, |t, p| {
            p.rebind(t, &mut binding);
            let mut h = t.zeros(BATCH, HIDDEN);
            let mut c = t.zeros(BATCH, HIDDEN);
            for x in &xs {
                let xv = t.constant_copy(x);
                let (h2, c2) = cell.step(t, &binding, xv, h, c);
                h = h2;
                c = c2;
            }
            let pred = head.forward(t, &binding, h);
            let l = loss::mse_mean(t, pred, &target);
            t.backward(l);
            p.absorb_grads(t, &binding);
            opt.step(p);
        });
    TrainRun {
        best_ms,
        steady_misses,
        allocs_per_step,
        pool_misses: tape.pool_misses(),
        stats: tape.plan_stats(),
        params: p,
    }
}

/// Machine-speed scale between this run and the BENCH recording
/// epoch: the recorded [`PRE_BAND_MATMUL_256_MS`] workload (band
/// kernels, untouched by the plan work) re-timed live, as a ratio to
/// its recorded time. The plan floor compares live step times against
/// *recorded* references, so on a shared machine a throttling window
/// would fail the gate without any algorithmic regression; scaling
/// the recorded reference by this ratio compares like machine state
/// with like. Clamped to ≥1 — a machine *faster* than the recording
/// never loosens the gate.
fn machine_scale() -> f64 {
    use tsgb_linalg::gemm::{with_gemm_mode, GemmMode};
    let mut rng = seeded(256);
    let a = uniform_matrix(256, 256, -1.0, 1.0, &mut rng);
    let b = uniform_matrix(256, 256, -1.0, 1.0, &mut rng);
    let live = best_of(5, || {
        with_gemm_mode(GemmMode::Band, || {
            tsgb_par::with_threads(1, || {
                std::hint::black_box((a.matmul(&b), a.t_matmul(&b), a.matmul_t(&b)));
            })
        })
    });
    (live / PRE_BAND_MATMUL_256_MS).max(1.0)
}

/// GRU and LSTM plan-vs-tape train-step probes on the same workload
/// the pre-change reference used. Each cell runs the identical seeded
/// training twice — interpreted, then compiled — and the final weights
/// must agree bit for bit. `scale` is [`machine_scale`], applied to
/// the recorded reference when deciding whether a retry is needed.
fn train_probes(scale: f64) -> Vec<TrainProbe> {
    let mut out = Vec::new();
    for (name, pre_plan_ms, pre_ms, run) in [
        (
            "gru_train_step",
            PRE_PLAN_GRU_TRAIN_STEP_MS,
            PRE_GRU_TRAIN_STEP_MS,
            gru_run as fn(bool) -> TrainRun,
        ),
        (
            "lstm_train_step",
            PRE_PLAN_LSTM_TRAIN_STEP_MS,
            PRE_LSTM_TRAIN_STEP_MS,
            lstm_run,
        ),
    ] {
        let mut interpreted = run(false);
        let mut compiled = run(true);
        assert_params_bitwise(name, &interpreted.params, &compiled.params);
        // A shared machine throttles in multi-second windows that
        // slow every probe in a run by 1.3-1.5×, and the plan floor
        // compares against a *recorded* reference, not a live one —
        // so ride a bad window out by retrying the seeded pair and
        // keeping the best wall times. The bitwise equivalence gate
        // runs on every attempt.
        let floor_ms = pre_plan_ms * scale / PLAN_SPEEDUP_FLOOR;
        for _ in 0..3 {
            if compiled.best_ms <= floor_ms {
                break;
            }
            let i_retry = run(false);
            let c_retry = run(true);
            assert_params_bitwise(name, &i_retry.params, &c_retry.params);
            interpreted.best_ms = interpreted.best_ms.min(i_retry.best_ms);
            compiled.best_ms = compiled.best_ms.min(c_retry.best_ms);
        }
        out.push(TrainProbe {
            name,
            best_ms: compiled.best_ms,
            tape_ms: interpreted.best_ms,
            pre_plan_ms,
            pre_ms,
            allocs_per_step: compiled.allocs_per_step,
            pool_misses: compiled.pool_misses,
            steady_misses: compiled.steady_misses,
            stats: compiled.stats,
        });
    }
    out
}

fn main() {
    let threads = tsgb_par::max_threads();
    println!("perf_baseline: pool size {threads}");
    let mut probes = Vec::new();

    for &size in &[64usize, 128, 256, 512] {
        let mut rng = seeded(size as u64);
        let a = uniform_matrix(size, size, -1.0, 1.0, &mut rng);
        let b = uniform_matrix(size, size, -1.0, 1.0, &mut rng);
        // Small sizes finish in well under a millisecond, where
        // scheduler noise dominates: take the best of many runs.
        let reps = match size {
            0..=64 => 51,
            65..=128 => 11,
            _ => 3,
        };
        let work = || {
            let c = a.matmul(&b);
            let t = a.t_matmul(&b);
            let m = a.matmul_t(&b);
            vec![c.frobenius_norm(), t.frobenius_norm(), m.frobenius_norm()]
        };
        let mut p = probe(&format!("matmul_{size}"), reps, work);
        // The size-64 probe backs a >= 0.95x regression guard below,
        // and sub-millisecond timings stay noisy even at best-of-51
        // on a loaded host: re-measure before letting a guard trip,
        // folding each side's best in (same policy as the train
        // probes).
        if size == 64 {
            for _ in 0..3 {
                if p.speedup() >= 0.95 {
                    break;
                }
                let retry = probe(&format!("matmul_{size}"), reps, work);
                p.serial_ms = p.serial_ms.min(retry.serial_ms);
                p.parallel_ms = p.parallel_ms.min(retry.parallel_ms);
            }
        }
        probes.push(p);
    }

    let x = sines(80, 1);
    let y = sines(80, 2);
    probes.push(probe("mmd2_80x16x2", 3, || vec![mmd2(&x, &y)]));

    let cfg = EvalConfig::deterministic_only();
    probes.push(probe("suite_deterministic_80", 3, || {
        let mut rng = seeded(3);
        evaluate(&x, &y, &cfg, &mut rng)
            .iter()
            .flat_map(|(_, s)| [s.mean, s.std])
            .collect()
    }));

    let mut rows = Vec::new();
    for p in &probes {
        println!(
            "{:>24}: serial {:8.3} ms  parallel {:8.3} ms  speedup {:.2}x",
            p.name,
            p.serial_ms,
            p.parallel_ms,
            p.speedup()
        );
        rows.push(format!(
            "    {{\"name\": \"{}\", \"serial_ms\": {:.6}, \"parallel_ms\": {:.6}, \"speedup\": {:.4}}}",
            json_escape(&p.name),
            p.serial_ms,
            p.parallel_ms,
            p.speedup()
        ));
    }

    let kernels = kernel_probes();
    let mut kernel_rows = Vec::new();
    for k in &kernels {
        println!(
            "{:>24}: exact {:8.3} ms  accel {:8.3} ms  speedup {:.2}x (floor {:.1}x)",
            k.name,
            k.baseline_ms,
            k.accelerated_ms,
            k.speedup(),
            k.floor
        );
        kernel_rows.push(format!(
            "    {{\"name\": \"{}\", \"baseline_ms\": {:.6}, \"accelerated_ms\": {:.6}, \"speedup\": {:.4}, \"floor\": {:.1}, \"detail\": \"{}\"}}",
            k.name,
            k.baseline_ms,
            k.accelerated_ms,
            k.speedup(),
            k.floor,
            json_escape(&k.detail)
        ));
    }

    let json = format!(
        "{{\n  \"threads\": {},\n  \"bit_identical\": true,\n  \"probes\": [\n{}\n  ],\n  \"kernel_probes\": [\n{}\n  ]\n}}\n",
        threads,
        rows.join(",\n"),
        kernel_rows.join(",\n")
    );
    std::fs::write("BENCH_baseline.json", &json).expect("write BENCH_baseline.json");
    println!("wrote BENCH_baseline.json");

    for k in &kernels {
        assert!(
            k.speedup() >= k.floor,
            "{}: speedup {:.2}x below the {:.1}x floor",
            k.name,
            k.speedup(),
            k.floor
        );
    }

    // Guard against the small-matrix parallel regression: at size 64
    // the pool must not be slower than plain serial execution.
    let m64 = probes
        .iter()
        .find(|p| p.name == "matmul_64")
        .expect("matmul_64 probe present");
    assert!(
        m64.speedup() >= 0.95,
        "matmul_64 parallel regression: speedup {:.2}x < 0.95x",
        m64.speedup()
    );

    // Incremental eval engine: cold suite vs warm re-evaluation
    // through the content-addressed cache (same x/y sines workload).
    let ec = eval_cache_probe(&x, &y);
    println!(
        "{:>24}: cold {:8.3} ms  warm {:8.3} ms  speedup {:.1}x (floor {:.1}x)  hits {}  misses {}  {} KiB",
        "eval_cache_warm_vs_cold",
        ec.cold_ms,
        ec.warm_ms,
        ec.speedup(),
        EVAL_CACHE_SPEEDUP_FLOOR,
        ec.hits,
        ec.misses,
        ec.bytes / 1024
    );
    let eval_json = format!(
        "{{\n  \"workload\": \"EvalConfig::fast() suite, 80x16x2 sines, warm best-of-5\",\n  \"bit_identical\": true,\n  \"probes\": [\n    {{\"name\": \"eval_cache_warm_vs_cold\", \"cold_ms\": {:.6}, \"warm_ms\": {:.6}, \"speedup\": {:.4}, \"floor\": {:.1}, \"hits\": {}, \"misses\": {}, \"bytes\": {}}}\n  ]\n}}\n",
        ec.cold_ms,
        ec.warm_ms,
        ec.speedup(),
        EVAL_CACHE_SPEEDUP_FLOOR,
        ec.hits,
        ec.misses,
        ec.bytes
    );
    std::fs::write("BENCH_eval.json", &eval_json).expect("write BENCH_eval.json");
    println!("wrote BENCH_eval.json");
    assert!(
        ec.speedup() >= EVAL_CACHE_SPEEDUP_FLOOR,
        "eval_cache_warm_vs_cold: speedup {:.2}x below the {:.1}x floor (cold {:.3} ms, warm {:.3} ms)",
        ec.speedup(),
        EVAL_CACHE_SPEEDUP_FLOOR,
        ec.cold_ms,
        ec.warm_ms
    );

    let scale = machine_scale();
    if scale > 1.02 {
        println!("machine scale vs BENCH recording: {scale:.2}x slower (band matmul_256 canary)");
    }
    let trains = train_probes(scale);

    // A build without `alloc-count` must not clobber allocation figures
    // a previous alloc-count run recorded: carry unmeasured fields
    // forward from the existing file and only overwrite what this run
    // actually measured.
    let prev = std::fs::read_to_string("BENCH_train.json").ok();
    let alloc_measured = tsgb_bench::allocations().is_some();
    let mut alloc_carried = false;
    let mut train_rows = Vec::new();
    for tp in &trains {
        let allocs = tp.allocs_per_step.map(|a| a.to_string()).or_else(|| {
            let rec = prev
                .as_deref()
                .and_then(|p| recorded_train_field(p, tp.name, "allocs_per_step"))
                .filter(|t| t != "null");
            alloc_carried |= rec.is_some();
            rec
        });
        let (captures, replays, invalidations) = tp.stats;
        println!(
            "{:>24}: plan {:8.4} ms  tape {:8.4} ms  pre-plan {:8.4} ms  plan speedup {:.2}x (floor {:.1}x)  allocs/step {}  steady misses {}",
            tp.name,
            tp.best_ms,
            tp.tape_ms,
            tp.pre_plan_ms,
            tp.plan_speedup(),
            PLAN_SPEEDUP_FLOOR,
            allocs.as_deref().unwrap_or("n/a"),
            tp.steady_misses
        );
        let alloc_field = allocs.map_or(String::new(), |a| format!(", \"allocs_per_step\": {a}"));
        train_rows.push(format!(
            "    {{\"name\": \"{}\", \"best_ms\": {:.6}, \"tape_ms\": {:.6}, \"pre_plan_ms\": {:.6}, \"pre_change_ms\": {:.6}, \"speedup\": {:.4}, \"plan_speedup\": {:.4}, \"plan_floor\": {:.1}{}, \"pool_misses\": {}, \"steady_misses\": {}, \"plan_captures\": {}, \"plan_replays\": {}, \"plan_invalidations\": {}}}",
            tp.name,
            tp.best_ms,
            tp.tape_ms,
            tp.pre_plan_ms,
            tp.pre_ms,
            tp.speedup(),
            tp.plan_speedup(),
            PLAN_SPEEDUP_FLOOR,
            alloc_field,
            tp.pool_misses,
            tp.steady_misses,
            captures,
            replays,
            invalidations
        ));
    }
    let train_json = format!(
        "{{\n  \"workload\": \"batch {} x seq {} x features {}, hidden {}\",\n  \"alloc_count_enabled\": {},\n  \"probes\": [\n{}\n  ]\n}}\n",
        BATCH,
        SEQ,
        FEATURES,
        HIDDEN,
        alloc_measured || alloc_carried,
        train_rows.join(",\n")
    );
    std::fs::write("BENCH_train.json", &train_json).expect("write BENCH_train.json");
    println!("wrote BENCH_train.json");

    // Plan acceptance gates: ≥1.5× over the recorded interpreter
    // reference, zero steady-state pool misses once the plan has
    // pre-sized the pool from its buffer manifest, exactly one capture
    // with no mid-run invalidation.
    for tp in &trains {
        let (captures, replays, invalidations) = tp.stats;
        // `scale` maps the recorded reference onto the current
        // machine speed (see `machine_scale`); raw and normalized
        // speedups are equal when the machine matches the recording.
        assert!(
            tp.plan_speedup() * scale >= PLAN_SPEEDUP_FLOOR,
            "{}: plan speedup {:.2}x (normalized {:.2}x) below the {:.1}x floor (plan {:.4} ms vs recorded {:.4} ms, machine scale {:.2}x)",
            tp.name,
            tp.plan_speedup(),
            tp.plan_speedup() * scale,
            PLAN_SPEEDUP_FLOOR,
            tp.best_ms,
            tp.pre_plan_ms,
            scale
        );
        assert_eq!(
            tp.steady_misses, 0,
            "{}: {} pool misses over the steady-state window",
            tp.name, tp.steady_misses
        );
        assert_eq!(
            (captures, invalidations),
            (1, 0),
            "{}: expected one capture and no invalidations, got {:?}",
            tp.name,
            tp.stats
        );
        assert!(replays > 0, "{}: plan never replayed", tp.name);
    }

    // Observability overhead check: the step probes above ran with the
    // no-op sink (recording off), through the instrumented tape-reset
    // and grad-clip paths. Compare against the best_ms the previous
    // run recorded. Reported, not asserted — wall-clock best-of-N on a
    // shared machine is too noisy for a hard gate.
    if let Some(prev) = &prev {
        for tp in &trains {
            // Compare the interpreted path like-for-like: pre-plan
            // files only recorded `best_ms` (then the interpreter
            // figure), newer files record it as `tape_ms`.
            let Some(rec) = recorded_train_field(prev, tp.name, "tape_ms")
                .or_else(|| recorded_train_field(prev, tp.name, "best_ms"))
                .and_then(|t| t.parse::<f64>().ok())
            else {
                continue;
            };
            let overhead = (tp.tape_ms - rec) / rec * 100.0;
            let verdict = if overhead <= 2.0 { "ok" } else { "above 2% budget" };
            println!(
                "{:>24}: obs no-op overhead vs recorded {:.4} ms: {:+.2}% ({verdict})",
                tp.name, rec, overhead
            );
        }
    }
}
