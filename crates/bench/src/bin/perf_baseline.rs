//! `perf_baseline` — dependency-free perf probe for the parallel
//! runtime. Times the blocked matmul kernels at several sizes, the
//! cached MMD estimator, and the deterministic-only evaluation suite —
//! each once with the pool forced to one thread and once with the
//! machine default — verifies the two results are bit-identical, and
//! writes the timings to `BENCH_baseline.json`.
//!
//! ```text
//! cargo run -p tsgb-bench --release --bin perf_baseline
//! ```

use std::time::Instant;
use tsgb_eval::mmd::mmd2;
use tsgb_eval::suite::{evaluate, EvalConfig};
use tsgb_linalg::rng::{seeded, uniform_matrix};
use tsgb_linalg::Tensor3;
use tsgb_rand::Rng;

struct Probe {
    name: String,
    serial_ms: f64,
    parallel_ms: f64,
}

impl Probe {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms.max(1e-9)
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// Times `f` serially (pool forced to 1) and with the default pool,
/// asserting the two results agree bit for bit.
fn probe(name: &str, reps: usize, f: impl Fn() -> Vec<f64>) -> Probe {
    let (serial_ms, serial) = time_ms(reps, || tsgb_par::with_threads(1, &f));
    let (parallel_ms, parallel) = time_ms(reps, &f);
    let same = serial.len() == parallel.len()
        && serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "{name}: parallel result differs from serial");
    Probe {
        name: name.to_string(),
        serial_ms,
        parallel_ms,
    }
}

fn sines(r: usize, seed: u64) -> Tensor3 {
    let mut rng = seeded(seed);
    Tensor3::from_fn(r, 16, 2, |_, t, _| {
        let phase: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
        0.5 + 0.4 * (0.7 * t as f64 + phase).sin()
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let threads = tsgb_par::max_threads();
    println!("perf_baseline: pool size {threads}");
    let mut probes = Vec::new();

    for &size in &[64usize, 128, 256] {
        let mut rng = seeded(size as u64);
        let a = uniform_matrix(size, size, -1.0, 1.0, &mut rng);
        let b = uniform_matrix(size, size, -1.0, 1.0, &mut rng);
        let reps = if size >= 256 { 3 } else { 5 };
        probes.push(probe(&format!("matmul_{size}"), reps, || {
            let c = a.matmul(&b);
            let t = a.t_matmul(&b);
            let m = a.matmul_t(&b);
            vec![c.frobenius_norm(), t.frobenius_norm(), m.frobenius_norm()]
        }));
    }

    let x = sines(80, 1);
    let y = sines(80, 2);
    probes.push(probe("mmd2_80x16x2", 3, || vec![mmd2(&x, &y)]));

    let cfg = EvalConfig::deterministic_only();
    probes.push(probe("suite_deterministic_80", 3, || {
        let mut rng = seeded(3);
        evaluate(&x, &y, &cfg, &mut rng)
            .iter()
            .flat_map(|(_, s)| [s.mean, s.std])
            .collect()
    }));

    let mut rows = Vec::new();
    for p in &probes {
        println!(
            "{:>24}: serial {:8.3} ms  parallel {:8.3} ms  speedup {:.2}x",
            p.name,
            p.serial_ms,
            p.parallel_ms,
            p.speedup()
        );
        rows.push(format!(
            "    {{\"name\": \"{}\", \"serial_ms\": {:.6}, \"parallel_ms\": {:.6}, \"speedup\": {:.4}}}",
            json_escape(&p.name),
            p.serial_ms,
            p.parallel_ms,
            p.speedup()
        ));
    }

    let json = format!(
        "{{\n  \"threads\": {},\n  \"bit_identical\": true,\n  \"probes\": [\n{}\n  ]\n}}\n",
        threads,
        rows.join(",\n")
    );
    std::fs::write("BENCH_baseline.json", &json).expect("write BENCH_baseline.json");
    println!("wrote BENCH_baseline.json");
}
