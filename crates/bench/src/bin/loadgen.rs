//! `loadgen` — a closed-loop load probe for `tsgb-serve`.
//!
//! Trains a TimeVAE in-process, serves it three times — batching
//! disabled (`max_batch = 1`), default fused batching
//! (`max_batch = 8`), and fused batching on the f32 compute tier —
//! and drives each server with closed-loop clients at concurrency 1
//! and 8. Writes the measured throughput and latency percentiles
//! (p50/p95/p99) to `BENCH_serve.json` and asserts the two wins the
//! service is built around: at concurrency 8, fused batches must
//! deliver at least 2× the unbatched throughput, and the f32 tier at
//! least 1.8× the batched f64 throughput. The workload is sized so
//! the fixed per-call cost of a decoder pass dominates the per-sample
//! cost (`l = 256`, one window per request): fusing 8 requests into
//! one forward pass then costs far less than 8 serial passes, which
//! is exactly the regime request batching exists for.
//!
//! A second stage probes the *sharded tier*: a `tsgb-router` fronting
//! 1 then 2 spawned `tsgbench serve` worker processes, closed-loop at
//! concurrency 8, asserting ≥ 1.7× aggregate throughput at 2 workers.
//! Workers run latency-bound (`TSGB_SERVE_FWD_DELAY_MS`, small
//! `TSGB_SERVE_BATCH`) so the scaling measures tier aggregation —
//! overlapping waits across processes — rather than raw CPU
//! parallelism, which a single-core host cannot provide; the rows in
//! `BENCH_serve.json` record the injected delay so the regime is
//! explicit.
//!
//! A third stage probes `POST /generate/stream`: for one big request
//! it measures time-to-first-chunk and the steady chunk rate at two
//! chunk sizes, against the one-shot `/generate` wall time for the
//! same `(n, seed)`. The rows land in `BENCH_serve.json` under
//! `"stream_probes"`, and the probe asserts the point of streaming:
//! the first windows arrive before the one-shot response would have.
//!
//! ```text
//! cargo build --release && cargo run -p tsgb-bench --release --bin loadgen
//! ```
//!
//! (The release `tsgbench` binary must exist next to `loadgen` — the
//! router stage spawns it as the worker process.)

use std::net::TcpStream;
use std::time::{Duration, Instant};

use tsgb_data::sine::sine_dataset;
use tsgb_linalg::rng::seeded;
use tsgb_methods::{MethodId, TrainConfig};
use tsgb_serve::{Registry, ServeConfig, ServeDtype, Server};
use tsgb_wire::client::{http_request, http_request_stream};

const MODEL: &str = "timevae";
const SEQ_LEN: usize = 256;
const FEATURES: usize = 4;
const N_PER_REQUEST: usize = 1;
const REQUESTS_PER_CLIENT: usize = 50;
const WARMUP_PER_CLIENT: usize = 5;
const CONCURRENCIES: [usize; 2] = [1, 8];

/// Forward-pass delay injected into router-stage workers (see the
/// module docs: this makes the tier latency-bound so worker-count
/// scaling is measurable on any host).
const ROUTER_FWD_DELAY_MS: u64 = 25;
/// Worker batch cap for the router stage: small enough that one
/// worker cannot amortise the whole closed loop into a single pass.
const ROUTER_WORKER_BATCH: usize = 2;

/// Windows per streamed request in the stream-probe stage; sized so
/// sampling the full request takes visibly longer than the first chunk.
const STREAM_N: usize = 32;
/// Chunk sizes the stream probe measures.
const STREAM_CHUNKS: [usize; 2] = [1, 8];

struct StreamProbe {
    chunk: usize,
    ttfc_ms: f64,
    total_ms: f64,
    one_shot_ms: f64,
    chunks: usize,
    chunk_rate_per_s: f64,
}

struct Probe {
    name: String,
    max_batch: usize,
    concurrency: usize,
    dtype: ServeDtype,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
    /// Injected per-forward-pass delay (router stage only; 0 for the
    /// in-process probes).
    fwd_delay_ms: u64,
}

fn main() {
    tsgb_obs::set_enabled(true);
    let registry = trained_registry();
    let mut probes: Vec<Probe> = Vec::new();

    let setups = [
        ("unbatched", 1usize, ServeDtype::F64),
        ("batched", 8, ServeDtype::F64),
        ("batched_f32", 8, ServeDtype::F32),
    ];
    for (label, max_batch, dtype) in setups {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_batch,
            linger_ms: if max_batch == 1 { 0 } else { 5 },
            queue_cap: 256,
            dtype,
            ..ServeConfig::default()
        };
        let server = Server::start(rebuild(&registry), cfg).expect("start server");
        let addr = server.addr().to_string();
        for concurrency in CONCURRENCIES {
            tsgb_obs::reset();
            let probe = run_probe(&addr, label, max_batch, dtype, concurrency);
            println!(
                "{:<16} concurrency {concurrency}: {:>8.1} req/s  p50 {:>6.2} ms  p95 {:>6.2} ms  p99 {:>6.2} ms  mean batch {:.2}",
                probe.name, probe.rps, probe.p50_ms, probe.p95_ms, probe.p99_ms, probe.mean_batch
            );
            probes.push(probe);
        }
        server.shutdown();
    }

    // ---- stage 2: the sharded tier (router + spawned workers) ----
    for workers in [1usize, 2] {
        probes.push(run_router_probe(&registry, workers));
    }

    // ---- stage 3: streaming vs one-shot on a single server ----
    let stream_probes = run_stream_probes(&registry);

    let rps_of = |name: &str| probes.iter().find(|p| p.name == name).unwrap().rps;
    let speedup_c8 = rps_of("batched_c8") / rps_of("unbatched_c8");
    println!("batching speedup at concurrency 8: {speedup_c8:.2}x");
    let f32_tier_speedup_c8 = rps_of("batched_f32_c8") / rps_of("batched_c8");
    println!("f32 tier speedup at concurrency 8: {f32_tier_speedup_c8:.2}x");
    let router_scaling_w2 = rps_of("router_w2_c8") / rps_of("router_w1_c8");
    println!("router aggregate scaling at 2 workers: {router_scaling_w2:.2}x");

    let json = render_json(
        &probes,
        &stream_probes,
        speedup_c8,
        f32_tier_speedup_c8,
        router_scaling_w2,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    // streaming's reason to exist: the first windows of a big request
    // arrive well before the one-shot response would have
    for p in &stream_probes {
        assert!(
            p.ttfc_ms < p.one_shot_ms,
            "chunk {}: first chunk after {:.2} ms but one-shot takes {:.2} ms",
            p.chunk,
            p.ttfc_ms,
            p.one_shot_ms
        );
    }

    assert!(
        speedup_c8 >= 2.0,
        "fused batching must be >= 2x unbatched at concurrency 8, got {speedup_c8:.2}x"
    );
    assert!(
        f32_tier_speedup_c8 >= 1.8,
        "f32 tier must be >= 1.8x the batched f64 tier at concurrency 8, got {f32_tier_speedup_c8:.2}x"
    );
    assert!(
        router_scaling_w2 >= 1.7,
        "2 workers must deliver >= 1.7x one worker's aggregate rps, got {router_scaling_w2:.2}x"
    );
}

/// Probes the router tier with `workers` spawned worker processes at
/// concurrency 8. Every worker holds the model (`replicas = workers`),
/// and the injected forward delay makes each worker latency-bound, so
/// adding a worker adds real aggregate capacity even on one core.
fn run_router_probe(ckpt: &[u8], workers: usize) -> Probe {
    use tsgb_router::{Router, RouterConfig};

    let dir = std::env::temp_dir().join(format!("tsgb_loadgen_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("checkpoint dir");
    std::fs::write(dir.join(format!("{MODEL}.tsgbnn")), ckpt).expect("write checkpoint");

    let bin = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .join("tsgbench");
    assert!(
        bin.exists(),
        "worker binary {} missing — build it first (cargo build --release)",
        bin.display()
    );

    let cfg = RouterConfig {
        addr: "127.0.0.1:0".into(),
        replicas: workers,
        health_interval: Duration::from_millis(100),
        worker_env: vec![
            (
                "TSGB_SERVE_FWD_DELAY_MS".into(),
                ROUTER_FWD_DELAY_MS.to_string(),
            ),
            ("TSGB_SERVE_BATCH".into(), ROUTER_WORKER_BATCH.to_string()),
            // a short linger lets the second request of a pair arrive;
            // with linger 0 the tier wastes whole fwd-delays on
            // singleton passes and 2-worker scaling drops to ~1.6x
            ("TSGB_SERVE_LINGER_MS".into(), "3".into()),
            ("TSGB_SERVE_QUEUE".into(), "256".into()),
        ],
        ..RouterConfig::default()
    };
    let router = Router::start_spawned(bin, dir.clone(), workers, cfg).expect("start router tier");
    let addr = router.addr().to_string();
    tsgb_obs::reset(); // worker processes own their histograms; clear ours
    let probe = run_probe(&addr, &format!("router_w{workers}"), ROUTER_WORKER_BATCH, ServeDtype::F64, 8);
    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    Probe {
        fwd_delay_ms: ROUTER_FWD_DELAY_MS,
        ..probe
    }
}

/// Streams one `STREAM_N`-window request per chunk size and measures
/// time-to-first-chunk, total stream time, and steady chunk rate
/// against the one-shot wall time for the same `(n, seed)`.
fn run_stream_probes(ckpt: &[u8]) -> Vec<StreamProbe> {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    };
    let server = Server::start(rebuild(ckpt), cfg).expect("start server");
    let addr = server.addr().to_string();

    // one-shot baseline (median of 3 runs irons out scheduler noise)
    let one_shot_ms = {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.set_nodelay(true).ok();
        let body = format!("{{\"model\":\"{MODEL}\",\"n\":{STREAM_N},\"seed\":1}}");
        let mut runs: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let resp = http_request(&mut stream, "POST", "/generate", body.as_bytes())
                    .expect("one-shot generate");
                assert_eq!(resp.status, 200);
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        runs.sort_by(f64::total_cmp);
        runs[1]
    };

    let probes: Vec<StreamProbe> = STREAM_CHUNKS
        .iter()
        .map(|&chunk| {
            let mut conn = TcpStream::connect(&addr).expect("connect");
            conn.set_nodelay(true).ok();
            let body = format!(
                "{{\"model\":\"{MODEL}\",\"n\":{STREAM_N},\"seed\":1,\"chunk\":{chunk}}}"
            );
            let t0 = Instant::now();
            let mut resp =
                http_request_stream(&mut conn, "POST", "/generate/stream", body.as_bytes())
                    .expect("open stream");
            assert_eq!(resp.status, 200);
            let mut ttfc_ms = 0.0;
            let mut data_chunks = 0usize;
            while let Some(frame) = resp.next_chunk(&mut conn).expect("read chunk") {
                // data frames carry "offset"; the head and tail don't
                if frame.windows(8).any(|w| w == b"\"offset\"") {
                    if data_chunks == 0 {
                        ttfc_ms = t0.elapsed().as_secs_f64() * 1e3;
                    }
                    data_chunks += 1;
                }
            }
            let total_ms = t0.elapsed().as_secs_f64() * 1e3;
            let probe = StreamProbe {
                chunk,
                ttfc_ms,
                total_ms,
                one_shot_ms,
                chunks: data_chunks,
                chunk_rate_per_s: data_chunks as f64 / (total_ms / 1e3),
            };
            println!(
                "stream chunk {:<2}: ttfc {:>7.2} ms  total {:>7.2} ms  {} chunks ({:.1}/s)  one-shot {:>7.2} ms",
                probe.chunk, probe.ttfc_ms, probe.total_ms, probe.chunks, probe.chunk_rate_per_s, probe.one_shot_ms
            );
            probe
        })
        .collect();
    server.shutdown();
    probes
}

/// Trains the served model once; servers get fresh registries rebuilt
/// from its checkpoint bytes so both configurations serve the
/// identical model.
fn trained_registry() -> Vec<u8> {
    let mut rng = seeded(7);
    let train = sine_dataset(24, SEQ_LEN, FEATURES, &mut rng);
    let mut method = MethodId::TimeVae.create(SEQ_LEN, FEATURES);
    let cfg = TrainConfig {
        epochs: 3,
        hidden: 192,
        latent: 16,
        ..TrainConfig::fast()
    };
    method.fit(&train, &cfg, &mut rng);
    method.save().expect("fitted model serializes")
}

fn rebuild(ckpt: &[u8]) -> Registry {
    let model = tsgb_methods::load_method(ckpt).expect("checkpoint loads");
    let mut registry = Registry::new();
    registry.insert(MODEL, model).expect("register model");
    registry
}

fn run_probe(
    addr: &str,
    label: &str,
    max_batch: usize,
    dtype: ServeDtype,
    concurrency: usize,
) -> Probe {
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|client| {
                s.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    let mut lat = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for i in 0..WARMUP_PER_CLIENT + REQUESTS_PER_CLIENT {
                        let seed = (client * 10_000 + i) as u64;
                        let t0 = Instant::now();
                        let status = generate(&mut stream, seed);
                        assert_eq!(status, 200, "generate must succeed under load");
                        if i >= WARMUP_PER_CLIENT {
                            lat.push(t0.elapsed());
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();
    let total = concurrency * (WARMUP_PER_CLIENT + REQUESTS_PER_CLIENT);
    let mut sorted = latencies;
    sorted.sort();
    let pct = |q: f64| {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    };
    let snap = tsgb_obs::snapshot();
    let mean_batch = snap
        .histograms
        .iter()
        .find(|(n, _)| n == "serve.batch_size")
        .map(|(_, h)| h.sum / h.count.max(1) as f64)
        .unwrap_or(0.0);
    Probe {
        name: format!("{label}_c{concurrency}"),
        max_batch,
        concurrency,
        dtype,
        rps: total as f64 / wall.as_secs_f64(),
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        mean_batch,
        fwd_delay_ms: 0,
    }
}

/// One keep-alive `POST /generate` via the shared wire client;
/// returns the status code.
fn generate(stream: &mut TcpStream, seed: u64) -> u16 {
    let body = format!("{{\"model\":\"{MODEL}\",\"n\":{N_PER_REQUEST},\"seed\":{seed}}}");
    http_request(stream, "POST", "/generate", body.as_bytes())
        .expect("exchange with server")
        .status
}

fn render_json(
    probes: &[Probe],
    stream_probes: &[StreamProbe],
    speedup_c8: f64,
    f32_tier_speedup_c8: f64,
    router_scaling_w2: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"model\": \"{MODEL}\", \"n_per_request\": {N_PER_REQUEST}, \"requests_per_client\": {REQUESTS_PER_CLIENT}, \"warmup_per_client\": {WARMUP_PER_CLIENT}, \"router_fwd_delay_ms\": {ROUTER_FWD_DELAY_MS}, \"router_worker_batch\": {ROUTER_WORKER_BATCH}}},\n"
    ));
    out.push_str("  \"probes\": [\n");
    for (i, p) in probes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"max_batch\": {}, \"concurrency\": {}, \"dtype\": \"{}\", \"rps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_batch\": {:.2}, \"fwd_delay_ms\": {}}}{}\n",
            p.name,
            p.max_batch,
            p.concurrency,
            p.dtype.name(),
            p.rps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.mean_batch,
            p.fwd_delay_ms,
            if i + 1 == probes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"stream_probes\": [\n");
    for (i, p) in stream_probes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {STREAM_N}, \"chunk\": {}, \"ttfc_ms\": {:.3}, \"total_ms\": {:.3}, \"one_shot_ms\": {:.3}, \"chunks\": {}, \"chunk_rate_per_s\": {:.1}}}{}\n",
            p.chunk,
            p.ttfc_ms,
            p.total_ms,
            p.one_shot_ms,
            p.chunks,
            p.chunk_rate_per_s,
            if i + 1 == stream_probes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"speedup_c8\": {speedup_c8:.2},\n"));
    out.push_str(&format!(
        "  \"f32_tier_speedup_c8\": {f32_tier_speedup_c8:.2},\n"
    ));
    out.push_str(&format!(
        "  \"router_scaling_w2\": {router_scaling_w2:.2}\n"
    ));
    out.push_str("}\n");
    out
}
