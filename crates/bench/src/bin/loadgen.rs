//! `loadgen` — a closed-loop load probe for `tsgb-serve`.
//!
//! Trains a TimeVAE in-process, serves it three times — batching
//! disabled (`max_batch = 1`), default fused batching
//! (`max_batch = 8`), and fused batching on the f32 compute tier —
//! and drives each server with closed-loop clients at concurrency 1
//! and 8. Writes the measured throughput and latency percentiles
//! (p50/p95/p99) to `BENCH_serve.json` and asserts the two wins the
//! service is built around: at concurrency 8, fused batches must
//! deliver at least 2× the unbatched throughput, and the f32 tier at
//! least 1.8× the batched f64 throughput. The workload is sized so
//! the fixed per-call cost of a decoder pass dominates the per-sample
//! cost (`l = 256`, one window per request): fusing 8 requests into
//! one forward pass then costs far less than 8 serial passes, which
//! is exactly the regime request batching exists for.
//!
//! ```text
//! cargo run -p tsgb-bench --release --bin loadgen
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tsgb_data::sine::sine_dataset;
use tsgb_linalg::rng::seeded;
use tsgb_methods::{MethodId, TrainConfig};
use tsgb_serve::{Registry, ServeConfig, ServeDtype, Server};

const MODEL: &str = "timevae";
const SEQ_LEN: usize = 256;
const FEATURES: usize = 4;
const N_PER_REQUEST: usize = 1;
const REQUESTS_PER_CLIENT: usize = 50;
const WARMUP_PER_CLIENT: usize = 5;
const CONCURRENCIES: [usize; 2] = [1, 8];

struct Probe {
    name: String,
    max_batch: usize,
    concurrency: usize,
    dtype: ServeDtype,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
}

fn main() {
    tsgb_obs::set_enabled(true);
    let registry = trained_registry();
    let mut probes: Vec<Probe> = Vec::new();

    let setups = [
        ("unbatched", 1usize, ServeDtype::F64),
        ("batched", 8, ServeDtype::F64),
        ("batched_f32", 8, ServeDtype::F32),
    ];
    for (label, max_batch, dtype) in setups {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_batch,
            linger_ms: if max_batch == 1 { 0 } else { 5 },
            queue_cap: 256,
            dtype,
            ..ServeConfig::default()
        };
        let server = Server::start(rebuild(&registry), cfg).expect("start server");
        let addr = server.addr().to_string();
        for concurrency in CONCURRENCIES {
            tsgb_obs::reset();
            let probe = run_probe(&addr, label, max_batch, dtype, concurrency);
            println!(
                "{:<16} concurrency {concurrency}: {:>8.1} req/s  p50 {:>6.2} ms  p95 {:>6.2} ms  p99 {:>6.2} ms  mean batch {:.2}",
                probe.name, probe.rps, probe.p50_ms, probe.p95_ms, probe.p99_ms, probe.mean_batch
            );
            probes.push(probe);
        }
        server.shutdown();
    }

    let rps_of = |name: &str| probes.iter().find(|p| p.name == name).unwrap().rps;
    let speedup_c8 = rps_of("batched_c8") / rps_of("unbatched_c8");
    println!("batching speedup at concurrency 8: {speedup_c8:.2}x");
    let f32_tier_speedup_c8 = rps_of("batched_f32_c8") / rps_of("batched_c8");
    println!("f32 tier speedup at concurrency 8: {f32_tier_speedup_c8:.2}x");

    let json = render_json(&probes, speedup_c8, f32_tier_speedup_c8);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    assert!(
        speedup_c8 >= 2.0,
        "fused batching must be >= 2x unbatched at concurrency 8, got {speedup_c8:.2}x"
    );
    assert!(
        f32_tier_speedup_c8 >= 1.8,
        "f32 tier must be >= 1.8x the batched f64 tier at concurrency 8, got {f32_tier_speedup_c8:.2}x"
    );
}

/// Trains the served model once; servers get fresh registries rebuilt
/// from its checkpoint bytes so both configurations serve the
/// identical model.
fn trained_registry() -> Vec<u8> {
    let mut rng = seeded(7);
    let train = sine_dataset(24, SEQ_LEN, FEATURES, &mut rng);
    let mut method = MethodId::TimeVae.create(SEQ_LEN, FEATURES);
    let cfg = TrainConfig {
        epochs: 3,
        hidden: 192,
        latent: 16,
        ..TrainConfig::fast()
    };
    method.fit(&train, &cfg, &mut rng);
    method.save().expect("fitted model serializes")
}

fn rebuild(ckpt: &[u8]) -> Registry {
    let model = tsgb_methods::load_method(ckpt).expect("checkpoint loads");
    let mut registry = Registry::new();
    registry.insert(MODEL, model).expect("register model");
    registry
}

fn run_probe(
    addr: &str,
    label: &str,
    max_batch: usize,
    dtype: ServeDtype,
    concurrency: usize,
) -> Probe {
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|client| {
                s.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    let mut lat = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for i in 0..WARMUP_PER_CLIENT + REQUESTS_PER_CLIENT {
                        let seed = (client * 10_000 + i) as u64;
                        let t0 = Instant::now();
                        let status = generate(&mut stream, seed);
                        assert_eq!(status, 200, "generate must succeed under load");
                        if i >= WARMUP_PER_CLIENT {
                            lat.push(t0.elapsed());
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();
    let total = concurrency * (WARMUP_PER_CLIENT + REQUESTS_PER_CLIENT);
    let mut sorted = latencies;
    sorted.sort();
    let pct = |q: f64| {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    };
    let snap = tsgb_obs::snapshot();
    let mean_batch = snap
        .histograms
        .iter()
        .find(|(n, _)| n == "serve.batch_size")
        .map(|(_, h)| h.sum / h.count.max(1) as f64)
        .unwrap_or(0.0);
    Probe {
        name: format!("{label}_c{concurrency}"),
        max_batch,
        concurrency,
        dtype,
        rps: total as f64 / wall.as_secs_f64(),
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        mean_batch,
    }
}

/// One keep-alive `POST /generate`; returns the status code.
fn generate(stream: &mut TcpStream, seed: u64) -> u32 {
    let body = format!("{{\"model\":\"{MODEL}\",\"n\":{N_PER_REQUEST},\"seed\":{seed}}}");
    let req = format!(
        "POST /generate HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    read_response(stream)
}

/// Reads one `Content-Length`-framed HTTP/1.1 response, leaving the
/// connection ready for the next request.
fn read_response(stream: &mut TcpStream) -> u32 {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find(&buf, b"\r\n\r\n") {
            break pos + 4;
        }
        let k = stream.read(&mut chunk).expect("read response");
        assert!(k > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..k]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).expect("ascii headers");
    let status: u32 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("content-length header");
    while buf.len() < header_end + content_length {
        let k = stream.read(&mut chunk).expect("read body");
        assert!(k > 0, "server closed mid-body");
        buf.extend_from_slice(&chunk[..k]);
    }
    status
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn render_json(probes: &[Probe], speedup_c8: f64, f32_tier_speedup_c8: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"model\": \"{MODEL}\", \"n_per_request\": {N_PER_REQUEST}, \"requests_per_client\": {REQUESTS_PER_CLIENT}, \"warmup_per_client\": {WARMUP_PER_CLIENT}}},\n"
    ));
    out.push_str("  \"probes\": [\n");
    for (i, p) in probes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"max_batch\": {}, \"concurrency\": {}, \"dtype\": \"{}\", \"rps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_batch\": {:.2}}}{}\n",
            p.name,
            p.max_batch,
            p.concurrency,
            p.dtype.name(),
            p.rps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.mean_batch,
            if i + 1 == probes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"speedup_c8\": {speedup_c8:.2},\n"));
    out.push_str(&format!(
        "  \"f32_tier_speedup_c8\": {f32_tier_speedup_c8:.2}\n"
    ));
    out.push_str("}\n");
    out
}
