//! `reproduce` — regenerates every table and figure of the paper at a
//! chosen scale.
//!
//! ```text
//! cargo run -p tsgb-bench --release --bin reproduce -- --all
//! cargo run -p tsgb-bench --release --bin reproduce -- --figure5 --scale fast
//! cargo run -p tsgb-bench --release --bin reproduce -- --table4 --out results
//! ```
//!
//! Artifacts: tables print to stdout and are written as CSV under the
//! output directory (default `results/`).

use std::path::PathBuf;
use std::process::ExitCode;
use tsgb_bench::experiments::{self, ExperimentCtx, Scale};
use tsgb_methods::common::MethodId;

struct Args {
    scale: Scale,
    out: PathBuf,
    seed: u64,
    run_table2: bool,
    run_table3: bool,
    run_table4: bool,
    run_figure1: bool,
    run_figure4: bool,
    run_figure5: bool,
    run_figure6: bool,
    run_figure7: bool,
    run_figure8: bool,
    methods: Option<Vec<MethodId>>,
}

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [--all] [--table2|--table3|--table4|--figure1|--figure4|--figure5|--figure6|--figure7|--figure8]...\n\
         \x20        [--scale smoke|fast|standard] [--out DIR] [--seed N] [--methods NAME,NAME,...]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Fast,
        out: PathBuf::from("results"),
        seed: 7,
        run_table2: false,
        run_table3: false,
        run_table4: false,
        run_figure1: false,
        run_figure4: false,
        run_figure5: false,
        run_figure6: false,
        run_figure7: false,
        run_figure8: false,
        methods: None,
    };
    let mut it = std::env::args().skip(1);
    let mut any = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => {
                args.run_table2 = true;
                args.run_table3 = true;
                args.run_table4 = true;
                args.run_figure1 = true;
                args.run_figure4 = true;
                args.run_figure5 = true;
                args.run_figure6 = true;
                args.run_figure7 = true;
                args.run_figure8 = true;
                any = true;
            }
            "--table2" => {
                args.run_table2 = true;
                any = true;
            }
            "--table3" => {
                args.run_table3 = true;
                any = true;
            }
            "--table4" => {
                args.run_table4 = true;
                any = true;
            }
            "--figure1" => {
                args.run_figure1 = true;
                any = true;
            }
            "--figure4" => {
                args.run_figure4 = true;
                any = true;
            }
            "--figure5" => {
                args.run_figure5 = true;
                any = true;
            }
            "--figure6" => {
                args.run_figure6 = true;
                any = true;
            }
            "--figure7" => {
                args.run_figure7 = true;
                any = true;
            }
            "--figure8" => {
                args.run_figure8 = true;
                any = true;
            }
            "--scale" => {
                args.scale = match it.next().as_deref() {
                    Some("smoke") => Scale::Smoke,
                    Some("fast") => Scale::Fast,
                    Some("standard") => Scale::Standard,
                    _ => usage(),
                };
            }
            "--out" => {
                args.out = PathBuf::from(it.next().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--methods" => {
                let list = it.next().unwrap_or_else(|| usage());
                let methods: Vec<MethodId> = list
                    .split(',')
                    .map(|name| {
                        MethodId::ALL
                            .into_iter()
                            .chain(MethodId::EXTENDED)
                            .find(|m| m.name().eq_ignore_ascii_case(name.trim()))
                            .unwrap_or_else(|| {
                                eprintln!("unknown method: {name}");
                                usage()
                            })
                    })
                    .collect();
                args.methods = Some(methods);
            }
            _ => usage(),
        }
    }
    if !any {
        usage();
    }
    args
}

fn heading(title: &str) {
    println!("\n==== {title} ====");
}

fn main() -> ExitCode {
    let args = parse_args();
    // reproduce always records a run manifest: metrics are observed,
    // never fed back, so this cannot perturb any reproduced number.
    tsgb_obs::set_enabled(true);
    tsgb_obs::reset();
    let mut ctx = ExperimentCtx::new(args.scale, &args.out);
    ctx.bench.seed = args.seed;
    if let Some(m) = args.methods {
        ctx.methods = m;
    }
    println!(
        "TSGBench reproduction | scale: {:?} | methods: {} | out: {}",
        args.scale,
        ctx.methods
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", "),
        args.out.display()
    );

    if args.run_table2 {
        let _span = tsgb_obs::span("table2");
        heading("Table 2: taxonomy of TSG methods");
        print!("{}", experiments::table2().render());
    }
    if args.run_figure4 {
        let _span = tsgb_obs::span("figure4");
        heading("Figure 4: evaluation measures used by prior methods");
        print!("{}", experiments::figure4().render());
    }
    if args.run_table3 {
        let _span = tsgb_obs::span("table3");
        heading("Table 3: dataset statistics (paper vs this run)");
        print!("{}", experiments::table3(&ctx).render());
    }
    if args.run_table4 {
        let _span = tsgb_obs::span("table4");
        heading("Table 4: robustness test on the evaluation measures");
        print!("{}", experiments::table4(&ctx).render());
    }

    let needs_grid = args.run_figure5 || args.run_figure1 || args.run_figure8 || args.run_figure6;
    let grid = if needs_grid {
        let _span = tsgb_obs::span("figure5");
        heading("Figure 5: TSG benchmarking grid (this trains every method on every dataset)");
        let (grid, tables) = experiments::figure5(&ctx);
        for (m, t) in &tables {
            println!("\n-- {} --", m.label());
            print!("{}", t.render());
        }
        Some(grid)
    } else {
        None
    };

    if args.run_figure6 {
        let _span = tsgb_obs::span("figure6");
        heading("Figure 6: t-SNE overlap and distribution-plot divergence");
        let grid = grid.as_ref().expect("grid computed above");
        print!("{}", experiments::figure6(&ctx, grid).render());
    }
    if args.run_figure1 {
        let _span = tsgb_obs::span("figure1");
        heading("Figure 1: method ranking heatmaps");
        let grid = grid.as_ref().expect("grid computed above");
        let (by_measure, by_dataset) = experiments::figure1(&ctx, grid);
        println!("-- rank by measure (averaged over datasets) --");
        print!("{}", by_measure.render());
        println!("-- rank by dataset (averaged over measures) --");
        print!("{}", by_dataset.render());
        println!("-- measure agreement (mean per-dataset Spearman) --");
        print!("{}", experiments::measure_agreement(&ctx, grid).render());
    }
    if args.run_figure8 {
        let _span = tsgb_obs::span("figure8");
        heading("Figure 8: critical-difference analysis");
        let grid = grid.as_ref().expect("grid computed above");
        let (cd, table) = experiments::figure8(&ctx, grid);
        print!("{}", cd.ascii());
        print!("{}", table.render());
    }
    if args.run_figure7 {
        let _span = tsgb_obs::span("figure7");
        heading("Figure 7: generalization test (single/cross/reference DA)");
        let (_, table) = experiments::figure7(&ctx);
        print!("{}", table.render());
    }

    let manifest = tsgb_obs::manifest_path().unwrap_or_else(|| args.out.join("run_manifest.jsonl"));
    let fields = [
        ("bin", "\"reproduce\"".to_string()),
        ("seed", args.seed.to_string()),
        ("threads", tsgb_par::max_threads().to_string()),
        ("scale", format!("\"{:?}\"", args.scale)),
        (
            "methods",
            format!(
                "\"{}\"",
                ctx.methods
                    .iter()
                    .map(|m| m.name())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        ),
    ];
    match tsgb_obs::write_manifest(&manifest, &fields) {
        Ok(()) => println!("run manifest written to {}", manifest.display()),
        Err(e) => eprintln!("run manifest write failed ({}): {e}", manifest.display()),
    }

    println!("\nCSV artifacts written under {}", args.out.display());
    ExitCode::SUCCESS
}
