#![warn(missing_docs)]

//! `tsgb-bench`: the benchmark harness.
//!
//! Two entry points:
//!
//! * the `reproduce` binary (`cargo run -p tsgb-bench --release --bin
//!   reproduce -- --all`) regenerates every table and figure of the
//!   paper at reduced scale, printing the same row/column structure and
//!   writing CSV artifacts under `results/`;
//! * the Criterion benches (`cargo bench -p tsgb-bench`) time the
//!   pieces the paper's training-efficiency row (M8) and our ablation
//!   studies rely on.
//!
//! The library part hosts the shared experiment drivers so the binary
//! and the benches do not duplicate orchestration logic.

pub mod experiments;

pub use experiments::{ExperimentCtx, Scale};
