#![warn(missing_docs)]

//! `tsgb-bench`: the benchmark harness.
//!
//! Two entry points:
//!
//! * the `reproduce` binary (`cargo run -p tsgb-bench --release --bin
//!   reproduce -- --all`) regenerates every table and figure of the
//!   paper at reduced scale, printing the same row/column structure and
//!   writing CSV artifacts under `results/`;
//! * the Criterion benches (`cargo bench -p tsgb-bench`) time the
//!   pieces the paper's training-efficiency row (M8) and our ablation
//!   studies rely on.
//!
//! The library part hosts the shared experiment drivers so the binary
//! and the benches do not duplicate orchestration logic.

pub mod experiments;

pub use experiments::{ExperimentCtx, Scale};

/// Heap-allocation counting for the perf probes (opt-in).
///
/// Compiled with `--features alloc-count`, this installs a global
/// allocator that counts every `alloc`/`realloc` call, letting
/// `perf_baseline` report allocations per recycled train step. Off by
/// default so ordinary builds keep the system allocator untouched.
#[cfg(feature = "alloc-count")]
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// System allocator wrapper that counts allocation calls.
    pub struct CountingAlloc;

    // SAFETY: defers entirely to `System`; the counter is a relaxed
    // atomic with no allocation of its own.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Total allocation calls since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

/// Allocation calls so far, or `None` when the `alloc-count` feature
/// (and its counting global allocator) is not compiled in.
pub fn allocations() -> Option<u64> {
    #[cfg(feature = "alloc-count")]
    {
        Some(alloc_count::allocations())
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}
