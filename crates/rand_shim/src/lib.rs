#![warn(missing_docs)]

//! `tsgb-rand`: a vendored, dependency-free subset of the `rand` crate
//! API surface this workspace actually uses.
//!
//! The benchmark environment builds with no access to the crates.io
//! registry, so the external `rand` dependency is replaced by this
//! in-tree shim. It provides:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64 (the same
//!   algorithm family `rand 0.8` uses for its 64-bit `SmallRng`);
//! * [`SeedableRng::seed_from_u64`] — deterministic construction;
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] — the sampling
//!   calls used by the data generators, methods, and eval suite.
//!
//! Everything is deterministic given a seed, on every platform: integer
//! range sampling uses widening-multiply rejection (no `usize`-width
//! dependence beyond the requested type) and `f64` sampling uses the
//! standard 53-bit mantissa scaling.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64` words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 state
    /// expansion; the same seed always yields the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution:
/// `[0, 1)` for floats, the full range for unsigned integers.
pub trait Standard: Sized {
    /// One standard draw from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full double precision
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform in `[0, bound)` by widening multiplication with rejection,
/// so the result is exactly uniform and platform-independent.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire's method: reject the biased low zone.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// One uniform draw from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full-width inclusive range
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i64, i32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A standard draw: `[0, 1)` for floats, full-range for integers.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// family `rand 0.8` backs its 64-bit `SmallRng` with.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start at the all-zero state
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval_with_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn int_ranges_hit_all_values_uniformly() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
        // inclusive range reaches its upper bound
        let mut saw_hi = false;
        for _ in 0..200 {
            if rng.gen_range(0..=3usize) == 3 {
                saw_hi = true;
            }
        }
        assert!(saw_hi);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
