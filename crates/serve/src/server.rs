//! The HTTP server: a `TcpListener` accept loop, one handler thread
//! per connection, per-model batching workers, and a graceful
//! drain-on-shutdown protocol. The accept/connection mechanics and
//! the drain lifecycle live in [`tsgb_wire::server`], shared with the
//! router so the two processes cannot drift on drain semantics.
//!
//! ## Endpoints
//!
//! | route            | behaviour                                        |
//! |------------------|--------------------------------------------------|
//! | `GET /healthz`   | liveness + model count + queue depth + pid       |
//! | `GET /models`    | registered models with their window shapes       |
//! | `POST /generate` | `{"model","n","seed"?,"deadline_ms"?,"condition"?}` → windows |
//! | `POST /generate/stream` | same request (+`"chunk"?`) → chunked window stream |
//! | `POST /shutdown` | signals [`Server::wait`] to return               |
//!
//! ## Streaming
//!
//! `/generate/stream` emits windows over `Transfer-Encoding: chunked`
//! as they are sampled: a head object (model identity + shape + chunk
//! size), one `{"offset","count","samples"}` object per chunk, and a
//! `{"done":true,...}` trailer. A sampling thread runs the method's
//! [`open_stream`](tsgb_methods::TsgMethod::open_stream) and hands
//! rendered chunks to the connection thread over a channel bounded by
//! `stream_inflight` — a slow client therefore pauses sampling
//! (backpressure) instead of buffering the whole response. The
//! deadline is re-checked per chunk; on expiry the stream ends with an
//! `{"error":...}` object instead of the trailer. Because streamed
//! windows ride the [`WindowStream`](tsgb_methods::WindowStream)
//! contract, the concatenated chunks are bit-identical to one-shot
//! `/generate` for the same `(checkpoint, n, seed)`.
//!
//! ## Conditional generation
//!
//! A `"condition"` object on `/generate` — `{"class":k,"strength":s}`
//! or `{"covariates":[...],"strength":s}` — routes to the model's
//! [`ConditionalSample`](tsgb_methods::ConditionalSample) capability.
//! Models without it answer `400`. Conditional requests bypass the
//! batcher (their noise shaping is per-request), so they trade batch
//! fusion for the capability; `strength: 0` is bit-identical to the
//! unconditional draw.
//!
//! ## Shutdown protocol
//!
//! [`Server::shutdown`] (1) sets the draining flag so handler loops
//! stop picking up *new* requests and submits are rejected with 503,
//! (2) wakes the blocking `accept` with a loopback connection and
//! joins the accept thread, (3) drains every batcher — each job
//! already accepted is executed (or expired by its own deadline) and
//! its response delivered — and (4) waits for the active-connection
//! count to reach zero. The observable contract: zero in-flight
//! requests are dropped.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tsgb_linalg::Tensor3;
use tsgb_methods::common::{Condition, GenSpec};
use tsgb_wire::server::{spawn_accept_loop, Lifecycle, Reply, StreamProducer};
use tsgb_wire::{HttpError, Json, Request};

use crate::batch::{BatchConfig, Batcher, JobOutcome, SubmitError};
use crate::registry::{ModelEntry, Registry};
use crate::{ServeConfig, ServeDtype};

/// How long [`Server::shutdown`] waits for handler threads to finish
/// writing their responses.
const DRAIN_WAIT: Duration = Duration::from_secs(10);

struct Worker {
    entry: Arc<ModelEntry>,
    batcher: Batcher,
}

struct Shared {
    cfg: ServeConfig,
    workers: BTreeMap<String, Worker>,
    lifecycle: Arc<Lifecycle>,
}

/// A running generation service.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` (port 0 picks an ephemeral port), spawns one
    /// batching worker per registered model, and starts accepting.
    pub fn start(registry: Registry, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let batch_cfg = BatchConfig {
            max_batch: cfg.max_batch,
            linger: Duration::from_millis(cfg.linger_ms),
            queue_cap: cfg.queue_cap,
            dtype: cfg.dtype,
            fwd_delay: Duration::from_millis(cfg.fwd_delay_ms),
        };
        let workers: BTreeMap<String, Worker> = registry
            .entries()
            .map(|entry| {
                let entry = Arc::clone(entry);
                let batcher = Batcher::start(Arc::clone(&entry), batch_cfg.clone());
                (entry.info.name.clone(), Worker { entry, batcher })
            })
            .collect();
        let shared = Arc::new(Shared {
            cfg,
            workers,
            lifecycle: Arc::new(Lifecycle::new()),
        });
        let handler_shared = Arc::clone(&shared);
        let accept = spawn_accept_loop(
            listener,
            "tsgb-serve",
            Arc::clone(&shared.lifecycle),
            Arc::new(move |req: &Request| handle(req, &handler_shared)),
        )?;
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `POST /shutdown` arrives.
    pub fn wait(&self) {
        self.shared.lifecycle.wait_stop();
    }

    /// Gracefully drains and stops the server (see the module docs for
    /// the protocol).
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shared.lifecycle.start_draining();
        // wake the blocking accept so the thread observes the flag
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.shared.workers.values() {
            worker.batcher.drain();
        }
        self.shared.lifecycle.wait_idle(DRAIN_WAIT);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn handle(req: &Request, shared: &Shared) -> Reply {
    tsgb_obs::counter_add("serve.requests", 1);
    let started = Instant::now();
    let is_generate = req.path == "/generate" || req.path == "/generate/stream";
    let reply = match route(req, shared) {
        Ok(reply) => reply,
        Err(e) => {
            if e.status == 503 || e.status == 504 {
                tsgb_obs::counter_add("serve.rejected", 1);
            }
            Reply::from(&e)
        }
    };
    if is_generate {
        tsgb_obs::observe("serve.latency_ms", started.elapsed().as_secs_f64() * 1000.0);
    }
    reply
}

fn route(req: &Request, shared: &Shared) -> Result<Reply, HttpError> {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => Ok(Reply::ok(healthz(shared))),
        ("GET", "/models") => Ok(Reply::ok(models(shared))),
        ("POST", "/generate") => generate(req, shared),
        ("POST", "/generate/stream") => generate_stream(req, shared),
        ("POST", "/shutdown") => {
            shared.lifecycle.signal_stop();
            shared.lifecycle.start_draining();
            Ok(Reply::ok(
                Json::Obj(vec![("status".into(), Json::Str("draining".into()))]).encode(),
            ))
        }
        (_, "/healthz" | "/models" | "/generate" | "/generate/stream" | "/shutdown") => Err(
            HttpError::method_not_allowed(format!("{} not allowed on {path}", req.method)),
        ),
        _ => Err(HttpError::not_found(format!("no route {path}"))),
    }
}

fn healthz(shared: &Shared) -> String {
    let depth: usize = shared.workers.values().map(|w| w.batcher.depth()).sum();
    Json::Obj(vec![
        (
            "status".into(),
            Json::Str(if shared.lifecycle.draining() {
                "draining".into()
            } else {
                "ok".into()
            }),
        ),
        ("models".into(), Json::Num(shared.workers.len() as f64)),
        ("queue_depth".into(), Json::Num(depth as f64)),
        ("dtype".into(), Json::Str(shared.cfg.dtype.name().into())),
        ("pid".into(), Json::Num(std::process::id() as f64)),
    ])
    .encode()
}

fn models(shared: &Shared) -> String {
    let list = shared
        .workers
        .values()
        .map(|w| {
            let info = &w.entry.info;
            Json::Obj(vec![
                ("name".into(), Json::Str(info.name.clone())),
                ("method".into(), Json::Str(info.method.into())),
                ("seq_len".into(), Json::Num(info.seq_len as f64)),
                ("features".into(), Json::Num(info.features as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![("models".into(), Json::Arr(list))]).encode()
}

/// The fields shared by `/generate` and `/generate/stream`.
struct GenRequest<'a> {
    worker: &'a Worker,
    spec: GenSpec,
    deadline: Option<Instant>,
    body: Json,
}

fn parse_gen_request<'a>(req: &Request, shared: &'a Shared) -> Result<GenRequest<'a>, HttpError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| HttpError::bad_request("body is not UTF-8"))?;
    let body = Json::parse(text).map_err(|e| HttpError::bad_request(format!("bad JSON: {e}")))?;
    let model_name = body
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| HttpError::bad_request("missing string field \"model\""))?;
    let worker = shared.workers.get(model_name).ok_or_else(|| {
        HttpError::not_found(format!("unknown model {model_name:?} (see GET /models)"))
    })?;
    let n = body
        .get("n")
        .and_then(Json::as_u64)
        .ok_or_else(|| HttpError::bad_request("missing integer field \"n\""))? as usize;
    if n == 0 || n > shared.cfg.max_n {
        return Err(HttpError::bad_request(format!(
            "\"n\" must be in 1..={}",
            shared.cfg.max_n
        )));
    }
    let seed = match body.get("seed") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| HttpError::bad_request("\"seed\" must be a non-negative integer"))?,
    };
    let deadline = match body.get("deadline_ms") {
        None => None,
        Some(v) => {
            let ms = v
                .as_u64()
                .ok_or_else(|| HttpError::bad_request("\"deadline_ms\" must be an integer"))?;
            Some(Instant::now() + Duration::from_millis(ms))
        }
    };
    if shared.lifecycle.draining() {
        return Err(HttpError::overloaded("server is draining", 1));
    }
    Ok(GenRequest {
        worker,
        spec: GenSpec { n, seed },
        deadline,
        body,
    })
}

/// Parses the optional `"condition"` object of a generate request.
fn parse_condition(body: &Json) -> Result<Option<Condition>, HttpError> {
    let Some(v) = body.get("condition") else {
        return Ok(None);
    };
    let strength = match v.get("strength") {
        None => 1.0,
        Some(s) => s
            .as_f64()
            .ok_or_else(|| HttpError::bad_request("\"condition.strength\" must be a number"))?,
    };
    if let Some(c) = v.get("class") {
        let label = c.as_u64().ok_or_else(|| {
            HttpError::bad_request("\"condition.class\" must be a non-negative integer")
        })? as u32;
        return Ok(Some(Condition::Class { label, strength }));
    }
    if let Some(c) = v.get("covariates") {
        let Json::Arr(items) = c else {
            return Err(HttpError::bad_request(
                "\"condition.covariates\" must be an array of numbers",
            ));
        };
        let values = items
            .iter()
            .map(|x| {
                x.as_f64().ok_or_else(|| {
                    HttpError::bad_request("\"condition.covariates\" must be an array of numbers")
                })
            })
            .collect::<Result<Vec<f64>, _>>()?;
        return Ok(Some(Condition::Covariate { values, strength }));
    }
    Err(HttpError::bad_request(
        "\"condition\" needs a \"class\" or \"covariates\" field",
    ))
}

fn generate(req: &Request, shared: &Shared) -> Result<Reply, HttpError> {
    let g = parse_gen_request(req, shared)?;
    let (worker, spec) = (g.worker, g.spec);
    let model_name = &worker.entry.info.name;

    if let Some(cond) = parse_condition(&g.body)? {
        // conditional draws shape their noise per request, so they run
        // directly on the handler thread instead of the batcher
        let Some(cs) = worker.entry.model.conditional() else {
            return Err(HttpError::bad_request(format!(
                "model {model_name:?} ({}) does not support conditional generation",
                worker.entry.info.method
            )));
        };
        if g.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(HttpError::deadline_exceeded(format!(
                "deadline passed before conditional generation started (model {model_name:?})"
            )));
        }
        tsgb_obs::counter_add("serve.cond.requests", 1);
        let tensor = cs.generate_conditioned(spec.n, &cond, &mut spec.rng());
        return Ok(Reply::ok(render_samples(
            model_name,
            worker.entry.info.method,
            spec,
            &tensor,
            shared.cfg.dtype,
        )));
    }

    let rx = worker.batcher.submit(spec, g.deadline).map_err(|e| match e {
        SubmitError::QueueFull { depth } => {
            let secs = (shared.cfg.linger_ms * 2).div_ceil(1000).max(1);
            HttpError::overloaded(format!("queue full ({depth} pending)"), secs)
        }
        SubmitError::Draining => HttpError::overloaded("server is draining", 1),
    })?;
    match rx.recv() {
        Ok(JobOutcome::Done(tensor)) => Ok(Reply::ok(render_samples(
            &worker.entry.info.name,
            worker.entry.info.method,
            spec,
            &tensor,
            shared.cfg.dtype,
        ))),
        Ok(JobOutcome::Expired) => Err(HttpError::deadline_exceeded(format!(
            "deadline passed before the batch worker reached the request (model {model_name:?})"
        ))),
        Err(_) => Err(HttpError::internal("batch worker disconnected")),
    }
}

/// `POST /generate/stream`: chunked window streaming (see the module
/// docs). The handler validates the request, then returns a streaming
/// [`Reply`] whose producer runs on the connection thread: a sampling
/// thread walks the method's `open_stream` and the producer forwards
/// each rendered chunk to the socket, bounded by `stream_inflight`
/// chunks in flight.
fn generate_stream(req: &Request, shared: &Shared) -> Result<Reply, HttpError> {
    let g = parse_gen_request(req, shared)?;
    if parse_condition(&g.body)?.is_some() {
        return Err(HttpError::bad_request(
            "\"condition\" is not supported on /generate/stream",
        ));
    }
    let chunk = match g.body.get("chunk") {
        None => shared.cfg.stream_chunk,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| HttpError::bad_request("\"chunk\" must be a positive integer"))?
            as usize,
    };
    if chunk == 0 {
        return Err(HttpError::bad_request("\"chunk\" must be a positive integer"));
    }
    if g.deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(HttpError::deadline_exceeded(
            "deadline passed before streaming started",
        ));
    }
    tsgb_obs::counter_add("serve.stream.requests", 1);

    let entry = Arc::clone(&g.worker.entry);
    let spec = g.spec;
    let deadline = g.deadline;
    let dtype = shared.cfg.dtype;
    let inflight = shared.cfg.stream_inflight;
    let head = format!(
        "{{\"model\":{},\"method\":{},\"n\":{},\"seed\":{},\"seq_len\":{},\"features\":{},\"chunk\":{}}}",
        Json::Str(entry.info.name.clone()).encode(),
        Json::Str(entry.info.method.into()).encode(),
        spec.n,
        spec.seed,
        entry.info.seq_len,
        entry.info.features,
        chunk,
    );

    let producer: StreamProducer = Box::new(move |sink| {
        let started = Instant::now();
        // the sampling thread owns the model Arc; the bounded channel
        // is the backpressure window — when the client reads slowly the
        // sampler blocks on `send` instead of materializing the tensor
        let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, String)>(inflight);
        let sampler_entry = Arc::clone(&entry);
        let sampler = std::thread::spawn(move || {
            let mut stream = sampler_entry.model.open_stream(spec);
            let mut offset = 0usize;
            while stream.remaining() > 0 {
                let part = stream
                    .next_chunk(chunk)
                    .expect("remaining > 0 guarantees a chunk");
                let count = part.samples();
                let mut body =
                    format!("{{\"offset\":{offset},\"count\":{count},\"samples\":");
                render_sample_array(&part, dtype, &mut body);
                body.push('}');
                offset += count;
                if tx.send((count, body)).is_err() {
                    return; // receiver gone: deadline or socket error
                }
            }
        });

        sink.send(head.as_bytes())?;
        let mut windows = 0usize;
        let mut chunks = 0u64;
        let mut expired = false;
        let outcome = loop {
            let Ok((count, body)) = rx.recv() else {
                break Ok(()); // sampler finished; channel drained
            };
            if deadline.is_some_and(|d| Instant::now() >= d) {
                expired = true;
                break Ok(());
            }
            match sink.send(body.as_bytes()) {
                Ok(()) => {}
                Err(e) => break Err(e),
            }
            chunks += 1;
            windows += count;
            if chunks == 1 {
                tsgb_obs::observe(
                    "serve.stream.ttfc_ms",
                    started.elapsed().as_secs_f64() * 1000.0,
                );
            }
            tsgb_obs::counter_add("serve.stream.chunks", 1);
        };
        // release the sampler before leaving: dropping the receiver
        // fails its next send, so the join cannot deadlock
        drop(rx);
        let _ = sampler.join();
        outcome?;
        if expired {
            tsgb_obs::counter_add("serve.stream.expired", 1);
            sink.send(
                format!(
                    "{{\"error\":\"deadline exceeded mid-stream\",\"done\":false,\"chunks\":{chunks},\"windows\":{windows}}}"
                )
                .as_bytes(),
            )?;
        } else {
            sink.send(
                format!("{{\"done\":true,\"chunks\":{chunks},\"windows\":{windows}}}").as_bytes(),
            )?;
        }
        Ok(())
    });
    Ok(Reply::streaming(200, producer))
}

/// Renders the generate response. Floats use the same
/// shortest-roundtrip encoding as [`Json`], so the body is a pure
/// function of the tensor bits — the property the batching
/// bit-identity test compares whole bodies with. On the f32 tier the
/// values already carry at most f32 precision, so they are formatted
/// at f32 width (shortest roundtrip of the demoted value), roughly
/// halving body size.
fn render_samples(name: &str, method: &str, spec: GenSpec, t: &Tensor3, dtype: ServeDtype) -> String {
    use std::fmt::Write as _;
    let (r, l, f) = t.shape();
    let mut out = String::with_capacity(r * l * f * 20 + 128);
    let _ = write!(
        out,
        "{{\"model\":{},\"method\":{},\"n\":{},\"seed\":{},\"seq_len\":{l},\"features\":{f},\"samples\":[",
        Json::Str(name.into()).encode(),
        Json::Str(method.into()).encode(),
        spec.n,
        spec.seed,
    );
    out.pop(); // render_sample_array writes its own brackets
    render_sample_array(t, dtype, &mut out);
    out.push('}');
    out
}

/// Renders the nested `[[[f,...],...],...]` sample array — shared by
/// the one-shot body and the per-chunk stream frames, which is what
/// keeps their float encodings byte-comparable.
fn render_sample_array(t: &Tensor3, dtype: ServeDtype, out: &mut String) {
    use std::fmt::Write as _;
    let (r, l, f) = t.shape();
    out.push('[');
    for s in 0..r {
        if s > 0 {
            out.push(',');
        }
        out.push('[');
        for step in 0..l {
            if step > 0 {
                out.push(',');
            }
            out.push('[');
            for feat in 0..f {
                if feat > 0 {
                    out.push(',');
                }
                match dtype {
                    ServeDtype::F64 => {
                        let _ = write!(out, "{}", t.at(s, step, feat));
                    }
                    ServeDtype::F32 => {
                        let _ = write!(out, "{}", t.at(s, step, feat) as f32);
                    }
                }
            }
            out.push(']');
        }
        out.push(']');
    }
    out.push(']');
}
