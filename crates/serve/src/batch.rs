//! The request-batching core: one worker thread per model coalesces
//! concurrent generation requests into a single fused
//! [`generate_batch`](tsgb_methods::TsgMethod::generate_batch) call.
//!
//! Correctness rests on the `generate_batch` contract (bit-exact
//! equivalence with one serial `generate` per request), so batching is
//! *invisible* to clients: the response for `(n, seed)` is identical
//! at every batch size. The worker lingers up to `linger` after the
//! first job arrives to let a batch fill, bounded by `max_batch`.
//!
//! Backpressure is explicit: the pending queue is bounded
//! (`queue_cap`), a full queue rejects at submit time
//! ([`SubmitError::QueueFull`] → HTTP 503), and jobs whose deadline
//! passed while queued are expired *before* the forward pass runs
//! ([`JobOutcome::Expired`] → HTTP 504) so a late client never costs
//! model compute.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tsgb_linalg::Tensor3;
use tsgb_methods::common::GenSpec;

use crate::registry::ModelEntry;
use crate::ServeDtype;

/// Batching knobs (see [`crate::ServeConfig`] for the env mapping).
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most requests fused into one forward pass.
    pub max_batch: usize,
    /// How long the worker waits for a batch to fill after the first
    /// job arrives.
    pub linger: Duration,
    /// Bounded pending-queue capacity; beyond it submits are rejected.
    pub queue_cap: usize,
    /// Fault injection: artificial sleep before every fused forward
    /// pass (`TSGB_SERVE_FWD_DELAY_MS`; zero in production). Lets the
    /// fault-injection tests kill a worker with requests reliably in
    /// flight, and the router scaling probe emulate model latency on
    /// core-starved hosts.
    pub fwd_delay: Duration,
    /// Compute tier for the fused forward pass. `F32` tries
    /// [`generate_batch_f32`](tsgb_methods::TsgMethod::generate_batch_f32)
    /// first and falls back to the f64 path (counted by
    /// `serve.f32_fallback`) when the model has no reduced-precision
    /// implementation.
    pub dtype: ServeDtype,
}

/// Terminal state of one submitted job.
#[derive(Debug)]
pub enum JobOutcome {
    /// The generated windows.
    Done(Tensor3),
    /// The job's deadline expired before a worker reached it.
    Expired,
}

/// Why a submit was rejected synchronously.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is at capacity (HTTP 503).
    QueueFull {
        /// Jobs currently queued.
        depth: usize,
    },
    /// The batcher is draining for shutdown (HTTP 503).
    Draining,
}

struct Job {
    spec: GenSpec,
    deadline: Option<Instant>,
    tx: mpsc::Sender<JobOutcome>,
}

struct Queue {
    jobs: VecDeque<Job>,
    draining: bool,
}

struct State {
    q: Mutex<Queue>,
    cv: Condvar,
    cfg: BatchConfig,
    entry: Arc<ModelEntry>,
}

/// A per-model batching worker.
pub struct Batcher {
    state: Arc<State>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Spawns the worker thread for one model.
    pub fn start(entry: Arc<ModelEntry>, cfg: BatchConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        let state = Arc::new(State {
            q: Mutex::new(Queue {
                jobs: VecDeque::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            cfg,
            entry,
        });
        let worker_state = Arc::clone(&state);
        let name = worker_state.entry.info.name.clone();
        let worker = std::thread::Builder::new()
            .name(format!("tsgb-serve-batch-{name}"))
            .spawn(move || worker_loop(&worker_state))
            .expect("spawn batch worker");
        Self {
            state,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Enqueues one generation request; the receiver resolves to its
    /// outcome. Rejects synchronously when the queue is full or the
    /// batcher is draining.
    pub fn submit(
        &self,
        spec: GenSpec,
        deadline: Option<Instant>,
    ) -> Result<mpsc::Receiver<JobOutcome>, SubmitError> {
        let mut q = self.state.q.lock().expect("batch queue poisoned");
        if q.draining {
            return Err(SubmitError::Draining);
        }
        if q.jobs.len() >= self.state.cfg.queue_cap {
            return Err(SubmitError::QueueFull { depth: q.jobs.len() });
        }
        let (tx, rx) = mpsc::channel();
        q.jobs.push_back(Job { spec, deadline, tx });
        tsgb_obs::gauge_set("serve.queue_depth", q.jobs.len() as f64);
        drop(q);
        self.state.cv.notify_all();
        Ok(rx)
    }

    /// Current pending-queue depth (introspection).
    pub fn depth(&self) -> usize {
        self.state.q.lock().expect("batch queue poisoned").jobs.len()
    }

    /// Drains the queue and stops the worker: every job already
    /// accepted is still executed (or expired per its own deadline) —
    /// none are dropped — and new submits are rejected. Idempotent.
    pub fn drain(&self) {
        {
            let mut q = self.state.q.lock().expect("batch queue poisoned");
            q.draining = true;
        }
        self.state.cv.notify_all();
        let handle = self.worker.lock().expect("worker handle poisoned").take();
        if let Some(worker) = handle {
            worker.join().expect("batch worker panicked");
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(state: &State) {
    loop {
        let mut q = state.q.lock().expect("batch queue poisoned");
        while q.jobs.is_empty() && !q.draining {
            q = state.cv.wait(q).expect("batch queue poisoned");
        }
        if q.jobs.is_empty() && q.draining {
            return;
        }
        // linger to let the batch fill (skipped when draining: latency
        // no longer matters and the queue should flush)
        if state.cfg.max_batch > 1 && !state.cfg.linger.is_zero() {
            let fill_by = Instant::now() + state.cfg.linger;
            while q.jobs.len() < state.cfg.max_batch && !q.draining {
                let now = Instant::now();
                if now >= fill_by {
                    break;
                }
                let (qq, wait) = state
                    .cv
                    .wait_timeout(q, fill_by - now)
                    .expect("batch queue poisoned");
                q = qq;
                if wait.timed_out() {
                    break;
                }
            }
        }
        let take = q.jobs.len().min(state.cfg.max_batch);
        let batch: Vec<Job> = q.jobs.drain(..take).collect();
        tsgb_obs::gauge_set("serve.queue_depth", q.jobs.len() as f64);
        drop(q);

        let now = Instant::now();
        let (live, expired): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|j| j.deadline.map(|d| now < d).unwrap_or(true));
        for job in expired {
            tsgb_obs::counter_add("serve.rejected", 1);
            let _ = job.tx.send(JobOutcome::Expired);
        }
        if live.is_empty() {
            continue;
        }
        tsgb_obs::observe("serve.batch_size", live.len() as f64);
        if !state.cfg.fwd_delay.is_zero() {
            std::thread::sleep(state.cfg.fwd_delay);
        }
        let specs: Vec<GenSpec> = live.iter().map(|j| j.spec).collect();
        let fwd = Instant::now();
        let outputs = if state.cfg.dtype == ServeDtype::F32 {
            state.entry.model.generate_batch_f32(&specs).unwrap_or_else(|| {
                tsgb_obs::counter_add("serve.f32_fallback", 1);
                state.entry.model.generate_batch(&specs)
            })
        } else {
            state.entry.model.generate_batch(&specs)
        };
        tsgb_obs::observe("serve.forward_ms", fwd.elapsed().as_secs_f64() * 1e3);
        debug_assert_eq!(outputs.len(), specs.len());
        for (job, tensor) in live.into_iter().zip(outputs) {
            // a disconnected receiver just means the client went away
            let _ = job.tx.send(JobOutcome::Done(tensor));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use tsgb_linalg::rng::seeded;
    use tsgb_linalg::Tensor3;
    use tsgb_methods::{MethodId, TrainConfig};

    fn entry() -> Arc<ModelEntry> {
        let data = Tensor3::from_fn(10, 8, 2, |s, t, f| {
            0.5 + 0.3 * ((t as f64) * 0.8 + s as f64 * 0.4 + f as f64).sin()
        });
        let mut m = MethodId::TimeVae.create(8, 2);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::fast()
        };
        m.fit(&data, &cfg, &mut seeded(5));
        let mut r = Registry::new();
        r.insert("m", m).unwrap();
        Arc::clone(r.get("m").unwrap())
    }

    fn cfg(max_batch: usize, queue_cap: usize) -> BatchConfig {
        BatchConfig {
            max_batch,
            linger: Duration::from_millis(10),
            queue_cap,
            fwd_delay: Duration::ZERO,
            dtype: ServeDtype::F64,
        }
    }

    #[test]
    fn coalesced_output_matches_direct_generate() {
        let entry = entry();
        let b = Batcher::start(Arc::clone(&entry), cfg(8, 16));
        let rxs: Vec<_> = (0..4)
            .map(|i| b.submit(GenSpec { n: 2, seed: 100 + i }, None).unwrap())
            .collect();
        for (i, rx) in rxs.into_iter().enumerate() {
            match rx.recv().unwrap() {
                JobOutcome::Done(t) => {
                    let want = entry.model.generate(2, &mut seeded(100 + i as u64));
                    assert_eq!(t.as_slice(), want.as_slice(), "request {i}");
                }
                other => panic!("request {i}: {other:?}"),
            }
        }
        b.drain();
    }

    #[test]
    fn f32_tier_is_batch_invariant_and_distinct_from_f64() {
        let entry = entry();
        let mut f32_cfg = cfg(8, 16);
        f32_cfg.dtype = ServeDtype::F32;
        let b = Batcher::start(Arc::clone(&entry), f32_cfg);
        let rxs: Vec<_> = (0..4)
            .map(|i| b.submit(GenSpec { n: 2, seed: 300 + i }, None).unwrap())
            .collect();
        for (i, rx) in rxs.into_iter().enumerate() {
            match rx.recv().unwrap() {
                JobOutcome::Done(t) => {
                    let spec = GenSpec {
                        n: 2,
                        seed: 300 + i as u64,
                    };
                    let solo = entry
                        .model
                        .generate_batch_f32(&[spec])
                        .expect("TimeVAE implements the f32 tier")
                        .remove(0);
                    assert_eq!(t.as_slice(), solo.as_slice(), "request {i}");
                    let f64_out = entry.model.generate(2, &mut seeded(300 + i as u64));
                    assert_ne!(
                        t.as_slice(),
                        f64_out.as_slice(),
                        "f32 tier should not be bit-identical to f64"
                    );
                }
                other => panic!("request {i}: {other:?}"),
            }
        }
        b.drain();
    }

    #[test]
    fn queue_overflow_rejects_synchronously() {
        let entry = entry();
        // capacity 0: every submit must bounce
        let b = Batcher::start(entry, cfg(1, 0));
        let err = b.submit(GenSpec { n: 1, seed: 1 }, None).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { depth: 0 });
        b.drain();
        assert_eq!(
            b.submit(GenSpec { n: 1, seed: 1 }, None).unwrap_err(),
            SubmitError::Draining
        );
    }

    #[test]
    fn expired_deadline_is_reported_not_executed() {
        let entry = entry();
        let b = Batcher::start(entry, cfg(4, 16));
        let rx = b
            .submit(
                GenSpec { n: 1, seed: 9 },
                Some(Instant::now() - Duration::from_millis(1)),
            )
            .unwrap();
        assert!(matches!(rx.recv().unwrap(), JobOutcome::Expired));
        b.drain();
    }

    #[test]
    fn drain_completes_accepted_jobs() {
        let entry = entry();
        let b = Batcher::start(entry, cfg(2, 32));
        let rxs: Vec<_> = (0..6)
            .map(|i| b.submit(GenSpec { n: 1, seed: i }, None).unwrap())
            .collect();
        b.drain();
        for rx in rxs {
            assert!(matches!(rx.recv().unwrap(), JobOutcome::Done(_)));
        }
    }
}
