//! The checkpoint-backed model registry: maps model names to trained
//! [`TsgMethod`] instances reconstructed from `TSGBCK02` (or legacy `TSGBCK01`) checkpoint
//! files.
//!
//! A registry entry is immutable after registration — `generate` is
//! `&self` and every method is `Send + Sync` — so one `Arc<ModelEntry>`
//! is shared by the batching worker and any introspection endpoint
//! without locking.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use tsgb_methods::persist::SnapshotReader;
use tsgb_methods::{load_method, TsgMethod};

/// The checkpoint file extension the registry scans for.
pub const CKPT_EXT: &str = "tsgbnn";

/// Shape and identity of one registered model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registry key (the checkpoint's file stem).
    pub name: String,
    /// The method's display name (`TimeVAE`, `RGAN`, ...).
    pub method: &'static str,
    /// Window length the model generates.
    pub seq_len: usize,
    /// Feature count the model generates.
    pub features: usize,
}

/// One registered model: identity plus the restored method.
pub struct ModelEntry {
    /// Shape and identity.
    pub info: ModelInfo,
    /// The trained method (fitted — registration enforces it).
    pub model: Box<dyn TsgMethod>,
}

/// A name → model map built from a checkpoint directory (or
/// programmatically, for tests and embedded use).
#[derive(Default)]
pub struct Registry {
    models: BTreeMap<String, Arc<ModelEntry>>,
}

/// One checkpoint file the directory scan could not load.
#[derive(Debug)]
pub struct LoadFailure {
    /// File name inside the checkpoint directory.
    pub file: String,
    /// Why it was skipped.
    pub reason: String,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fitted model under `name`. Fails if the model has
    /// not been fitted (its shape is read from its own checkpoint
    /// header) or the name is already taken.
    pub fn insert(&mut self, name: &str, model: Box<dyn TsgMethod>) -> Result<(), String> {
        if self.models.contains_key(name) {
            return Err(format!("model {name:?} is already registered"));
        }
        let bytes = model
            .save()
            .ok_or_else(|| format!("model {name:?} is not fitted"))?;
        let header = SnapshotReader::peek_header(&bytes).map_err(|e| e.to_string())?;
        let info = ModelInfo {
            name: name.to_string(),
            method: model.name(),
            seq_len: header.seq_len,
            features: header.features,
        };
        self.models
            .insert(name.to_string(), Arc::new(ModelEntry { info, model }));
        Ok(())
    }

    /// Loads every `*.tsgbnn` checkpoint in `dir`. Files that fail to
    /// load are skipped and reported, not fatal: one corrupt
    /// checkpoint must not take down the rest of the fleet.
    pub fn load_dir(dir: &Path) -> std::io::Result<(Self, Vec<LoadFailure>)> {
        Self::load_dir_filtered(dir, None)
    }

    /// Like [`Registry::load_dir`], but when `shard` is given only the
    /// named models are loaded — the worker side of the router's
    /// consistent-hash sharding (`tsgbench serve --models a,b`). A
    /// filtered load may legitimately produce an empty registry (a
    /// worker whose shard is empty still serves `/healthz`).
    pub fn load_dir_filtered(
        dir: &Path,
        shard: Option<&[String]>,
    ) -> std::io::Result<(Self, Vec<LoadFailure>)> {
        let mut registry = Self::new();
        let mut failures = Vec::new();
        for path in scan_checkpoint_paths(dir)? {
            let file = path
                .file_name()
                .and_then(|f| f.to_str())
                .unwrap_or("?")
                .to_string();
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            if let Some(shard) = shard {
                if !shard.contains(&name) {
                    continue;
                }
            }
            let outcome = std::fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| load_method(&bytes).map_err(|e| e.to_string()))
                .and_then(|model| registry.insert(&name, model));
            if let Err(reason) = outcome {
                failures.push(LoadFailure { file, reason });
            }
        }
        Ok((registry, failures))
    }

    /// Looks up a model by registry name.
    pub fn get(&self, name: &str) -> Option<&Arc<ModelEntry>> {
        self.models.get(name)
    }

    /// All registered models, sorted by name.
    pub fn entries(&self) -> impl Iterator<Item = &Arc<ModelEntry>> {
        self.models.values()
    }

    /// How many models are registered.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// Every `*.tsgbnn` path in `dir`, **sorted by file name bytes**.
///
/// The order is load-bearing: the router's consistent-hash shard
/// assignment and the registry's load order are both derived from this
/// scan, and `read_dir` returns entries in arbitrary (filesystem-
/// dependent) order — so the sort is what makes shard assignment
/// reproducible across runs and machines. Pinned by
/// `scan_order_is_deterministic` below.
pub fn scan_checkpoint_paths(dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some(CKPT_EXT))
        .collect();
    paths.sort_by(|a, b| a.file_name().cmp(&b.file_name()));
    Ok(paths)
}

/// The model names (file stems) of every checkpoint in `dir`, in the
/// deterministic [`scan_checkpoint_paths`] order. This is the name
/// universe the router hashes across the worker ring — no checkpoint
/// bytes are read, so the router never loads a model.
pub fn scan_model_names(dir: &Path) -> std::io::Result<Vec<String>> {
    Ok(scan_checkpoint_paths(dir)?
        .iter()
        .filter_map(|p| p.file_stem().and_then(|s| s.to_str()).map(String::from))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsgb_linalg::rng::seeded;
    use tsgb_linalg::Tensor3;
    use tsgb_methods::{MethodId, TrainConfig};

    fn fitted() -> Box<dyn TsgMethod> {
        let data = Tensor3::from_fn(10, 8, 2, |s, t, f| {
            0.5 + 0.3 * ((t as f64) + (s as f64) * 0.3 + f as f64).sin()
        });
        let mut m = MethodId::TimeVae.create(8, 2);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::fast()
        };
        m.fit(&data, &cfg, &mut seeded(3));
        m
    }

    #[test]
    fn insert_requires_a_fitted_model() {
        let mut r = Registry::new();
        let err = r.insert("raw", MethodId::TimeVae.create(8, 2)).unwrap_err();
        assert!(err.contains("not fitted"), "{err}");
        r.insert("vae", fitted()).unwrap();
        assert!(r.insert("vae", fitted()).unwrap_err().contains("already"));
        let info = &r.get("vae").unwrap().info;
        assert_eq!((info.seq_len, info.features), (8, 2));
        assert_eq!(info.method, "TimeVAE");
    }

    #[test]
    fn scan_order_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("tsgb_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // create in deliberately non-sorted order: the scan must not
        // reflect creation order (read_dir order is fs-dependent)
        for name in ["zeta", "alpha", "mid", "beta"] {
            std::fs::write(dir.join(format!("{name}.tsgbnn")), b"x").unwrap();
        }
        std::fs::write(dir.join("not-a-ckpt.txt"), b"y").unwrap();
        let names = scan_model_names(&dir).unwrap();
        assert_eq!(names, ["alpha", "beta", "mid", "zeta"]);
        // rescanning yields the identical order — shard assignment
        // derived from this scan is reproducible across runs
        assert_eq!(scan_model_names(&dir).unwrap(), names);
        let paths = scan_checkpoint_paths(&dir).unwrap();
        let files: Vec<_> = paths
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(
            files,
            ["alpha.tsgbnn", "beta.tsgbnn", "mid.tsgbnn", "zeta.tsgbnn"]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filtered_load_takes_only_the_shard() {
        let dir = std::env::temp_dir().join(format!("tsgb_shard_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = fitted().save().unwrap();
        std::fs::write(dir.join("alpha.tsgbnn"), &good).unwrap();
        std::fs::write(dir.join("beta.tsgbnn"), &good).unwrap();
        let shard = vec!["beta".to_string()];
        let (registry, failures) = Registry::load_dir_filtered(&dir, Some(&shard)).unwrap();
        assert_eq!(failures.len(), 0);
        assert_eq!(registry.len(), 1);
        assert!(registry.get("beta").is_some());
        // an empty shard is a legal worker state, not an error
        let (empty, _) = Registry::load_dir_filtered(&dir, Some(&[])).unwrap();
        assert!(empty.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_skips_corrupt_checkpoints() {
        let dir = std::env::temp_dir().join(format!("tsgb_registry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = fitted().save().unwrap();
        std::fs::write(dir.join("timevae.tsgbnn"), &good).unwrap();
        std::fs::write(dir.join("broken.tsgbnn"), b"not a checkpoint").unwrap();
        std::fs::write(dir.join("ignored.txt"), b"other file").unwrap();
        let (registry, failures) = Registry::load_dir(&dir).unwrap();
        assert_eq!(registry.len(), 1);
        assert!(registry.get("timevae").is_some());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].file, "broken.tsgbnn");
        std::fs::remove_dir_all(&dir).ok();
    }
}
