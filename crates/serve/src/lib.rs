#![warn(missing_docs)]

//! `tsgb-serve`: a std-only generation service for trained TSG
//! methods — checkpoint-backed model registry, request batching, and
//! deadline-aware backpressure.
//!
//! The service turns the benchmark's offline artifacts (the
//! `TSGBCK02` checkpoints the runner writes after training; legacy
//! `TSGBCK01` loads unchanged) into an
//! online API: clients `POST /generate` with a model name, a sample
//! count, and a seed, and get back synthetic windows. Three design
//! commitments:
//!
//! * **Determinism survives serving.** A response is a pure function
//!   of `(checkpoint, n, seed)`. Request batching rides the
//!   [`generate_batch`](tsgb_methods::TsgMethod::generate_batch)
//!   contract — fused batches are bit-identical to serial generation —
//!   so concurrency and batch size are invisible to clients.
//! * **Backpressure is explicit.** Bounded per-model queues reject
//!   with `503` + `Retry-After` instead of buffering unboundedly, and
//!   per-request deadlines expire queued work with `504` before it
//!   costs a forward pass.
//! * **Shutdown is graceful.** Draining completes every accepted
//!   request; zero in-flight requests are dropped.
//!
//! Everything is `std`-only: the HTTP layer sits on
//! `std::net::TcpListener` ([`http`]), and the wire format is a
//! hand-rolled JSON codec ([`json`]) — both live in the shared
//! [`tsgb_wire`] crate (the router and the load generator speak the
//! same protocol) and are re-exported here so existing paths such as
//! `tsgb_serve::Json` keep working.
//!
//! Beyond generation, the crate hosts the continuous-quality tier of
//! the incremental evaluation engine: [`monitor`] tails generated
//! windows over HTTP, scores them with the streaming accumulators of
//! `tsgb_eval::online`, refreshes the expensive distribution measures
//! through the content-addressed `tsgb-evalcache`, and raises drift
//! flags (see `tsgbench monitor`).
//!
//! A process running this server is one *worker* of the sharded tier
//! `tsgb-router` fronts: `--models` restricts the registry to the
//! worker's shard of the checkpoint directory, and the router
//! consistent-hashes model ids over those shards (see the
//! `tsgb-router` crate docs).
//!
//! Observability (via `tsgb-obs`, enabled with `TSGB_OBS=1`):
//! `serve.requests` / `serve.rejected` counters, a
//! `serve.queue_depth` gauge, and `serve.latency_ms` /
//! `serve.batch_size` histograms.
//!
//! # Configuration
//!
//! | env variable           | default          | meaning                         |
//! |------------------------|------------------|---------------------------------|
//! | `TSGB_SERVE_ADDR`      | `127.0.0.1:7878` | bind address (`:0` = ephemeral) |
//! | `TSGB_SERVE_BATCH`     | `8`              | max requests fused per batch    |
//! | `TSGB_SERVE_LINGER_MS` | `2`              | batch-fill wait after 1st job   |
//! | `TSGB_SERVE_QUEUE`     | `64`             | per-model pending-queue bound   |
//! | `TSGB_SERVE_DTYPE`     | `f64`            | compute tier: `f64` (bit-exact) or `f32` (fast) |
//! | `TSGB_SERVE_FWD_DELAY_MS` | `0`           | fault injection: sleep before every fused forward pass |
//! | `TSGB_STREAM_CHUNK`    | `8`              | default windows per `/generate/stream` chunk |
//! | `TSGB_STREAM_INFLIGHT` | `2`              | bounded in-flight chunks between sampler and socket |
//!
//! `TSGB_SERVE_FWD_DELAY_MS` exists for the test and bench harness
//! only: it injects artificial model latency so the fault-injection
//! suite can reliably kill a worker with requests in flight, and so
//! the router scaling probe can measure tier aggregation on hosts
//! with fewer cores than workers. It must stay `0` in production.
//!
//! The f32 tier trades the bit-exact response contract for roughly
//! double the batched throughput: models that implement
//! [`generate_batch_f32`](tsgb_methods::TsgMethod::generate_batch_f32)
//! run a tape-free `f32` forward pass (responses stay deterministic
//! per `(n, seed)` and batch-size invariant — just not bit-comparable
//! to the f64 tier), and models without an f32 path fall back to f64
//! per batch (counted by `serve.f32_fallback`).

pub mod batch;
pub mod monitor;
pub mod registry;
pub mod server;

// The codec moved to the shared `tsgb-wire` crate when the router
// tier arrived; these re-exports keep the original module paths
// (`tsgb_serve::json::Json`, `tsgb_serve::http::read_request`, ...)
// compiling so every pre-router caller and test stays covered.
pub use tsgb_wire::error;
pub use tsgb_wire::http;
pub use tsgb_wire::json;

pub use batch::{BatchConfig, Batcher, JobOutcome, SubmitError};
pub use monitor::{Monitor, MonitorConfig};
pub use registry::{LoadFailure, ModelEntry, ModelInfo, Registry};
pub use server::Server;
pub use tsgb_wire::{HttpError, Json};

/// Which compute tier the service generates with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeDtype {
    /// Bit-exact `f64` generation (the default).
    #[default]
    F64,
    /// Reduced-precision `f32` generation — roughly 2× batched
    /// throughput; deterministic per request but not bit-comparable
    /// to the f64 tier.
    F32,
}

impl ServeDtype {
    /// The wire/config name (`"f64"` / `"f32"`).
    pub fn name(self) -> &'static str {
        match self {
            ServeDtype::F64 => "f64",
            ServeDtype::F32 => "f32",
        }
    }
}

/// Service configuration; see the crate docs for the env mapping.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Most requests fused into one batched forward pass.
    pub max_batch: usize,
    /// How long the batch worker waits for a batch to fill after the
    /// first request arrives (milliseconds).
    pub linger_ms: u64,
    /// Bounded per-model pending-queue capacity; beyond it requests
    /// are rejected with `503`.
    pub queue_cap: usize,
    /// Largest accepted per-request sample count.
    pub max_n: usize,
    /// Compute tier (`TSGB_SERVE_DTYPE`).
    pub dtype: ServeDtype,
    /// Fault injection (`TSGB_SERVE_FWD_DELAY_MS`): artificial sleep
    /// before every fused forward pass, for the test/bench harness.
    /// `0` (the default) disables it.
    pub fwd_delay_ms: u64,
    /// Default windows per `/generate/stream` chunk when the request
    /// does not pass `"chunk"` (`TSGB_STREAM_CHUNK`).
    pub stream_chunk: usize,
    /// Bounded in-flight chunks between the sampling thread and the
    /// socket writer — the stream's backpressure window
    /// (`TSGB_STREAM_INFLIGHT`).
    pub stream_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            max_batch: 8,
            linger_ms: 2,
            queue_cap: 64,
            max_n: 4096,
            dtype: ServeDtype::F64,
            fwd_delay_ms: 0,
            stream_chunk: 8,
            stream_inflight: 2,
        }
    }
}

impl ServeConfig {
    /// Reads the `TSGB_SERVE_*` environment variables over the
    /// defaults; unparsable values fall back to the default.
    pub fn from_env() -> Self {
        let d = Self::default();
        let dtype = match std::env::var("TSGB_SERVE_DTYPE").as_deref() {
            Ok(v) if v.trim().eq_ignore_ascii_case("f32") => ServeDtype::F32,
            _ => ServeDtype::F64,
        };
        Self {
            addr: std::env::var("TSGB_SERVE_ADDR").unwrap_or(d.addr),
            max_batch: env_parse("TSGB_SERVE_BATCH", d.max_batch).max(1),
            linger_ms: env_parse("TSGB_SERVE_LINGER_MS", d.linger_ms),
            queue_cap: env_parse("TSGB_SERVE_QUEUE", d.queue_cap),
            max_n: d.max_n,
            dtype,
            fwd_delay_ms: env_parse("TSGB_SERVE_FWD_DELAY_MS", d.fwd_delay_ms),
            stream_chunk: env_parse("TSGB_STREAM_CHUNK", d.stream_chunk).max(1),
            stream_inflight: env_parse("TSGB_STREAM_INFLIGHT", d.stream_inflight).max(1),
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_documented_table() {
        let c = ServeConfig::default();
        assert_eq!(c.addr, "127.0.0.1:7878");
        assert_eq!(c.max_batch, 8);
        assert_eq!(c.linger_ms, 2);
        assert_eq!(c.queue_cap, 64);
        assert_eq!(c.dtype, ServeDtype::F64);
        assert_eq!(c.dtype.name(), "f64");
        assert_eq!(c.fwd_delay_ms, 0, "fault injection must be off by default");
        assert_eq!(c.stream_chunk, 8);
        assert_eq!(c.stream_inflight, 2);
    }
}
