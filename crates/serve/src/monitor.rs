//! `tsgbench monitor` — a continuous-quality endpoint for generation
//! streams.
//!
//! The offline suite answers "how good was this generator" once; the
//! monitor answers "is it still good" while windows keep arriving.
//! Clients `POST /ingest` generated windows per method; the monitor
//! folds them into the streaming accumulators of
//! [`tsgb_eval::online`] (MDD/ACD/SD/KD per window, no retained
//! history beyond a bounded ring) and refreshes the expensive
//! distribution measures (MMD, C-FID, DTW-NN) on a configurable
//! cadence through a content-addressed [`EvalCache`] — the
//! reference-side structures (pairwise block, embedding model, pool
//! envelopes) are built once and served warm on every refresh.
//!
//! ## Drift detection
//!
//! The first [`MonitorConfig::calibrate`] windows of a method set its
//! baseline: they feed the same tumbling accumulator evaluation
//! later uses, and the per-measure **maximum** over those healthy
//! tumbles is frozen as the baseline — so the baseline carries the
//! same small-sample noise as every window set it is compared
//! against. After calibration, windows feed a tumbling accumulator
//! of [`MonitorConfig::stride`] windows; once it holds
//! [`MonitorConfig::min_eval`] windows its measures are compared
//! against the baseline and any measure exceeding `baseline * factor
//! + margin` raises a persistent flag (counted by
//! `monitor.drift_flags`). The seeded injectors in
//! [`tsgb_data::drift`] exist to drill exactly this path — see
//! `POST /drill` and the `monitor_http.rs` suite, which asserts every
//! [`DriftKind`] is flagged within a bounded number of windows.
//!
//! ## Endpoints
//!
//! | route            | behaviour                                           |
//! |------------------|-----------------------------------------------------|
//! | `GET /healthz`   | liveness + method count + total windows + pid       |
//! | `POST /ingest`   | `{"method","windows":[[[f,..],..],..]}` → accepted  |
//! | `GET /quality`   | per-method online scores, expensive scores, flags   |
//! | `POST /drill`    | `{"method","n","seed"?,"drift"?,"severity"?}` — resamples the reference (plus jitter), optionally injects drift, ingests |
//! | `POST /shutdown` | signals [`Monitor::wait`] to return                 |

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tsgb_data::drift::{self, DriftKind};
use tsgb_eval::mmd::mmd2_rows_cached;
use tsgb_eval::{cfid_ref, dtw_nn_mean, CfidRef, DtwNnPool, OnlineMeasures};
use tsgb_evalcache::{digest_tensor, CacheKey, EvalCache, Fnv64};
use tsgb_rand::rngs::SmallRng;
use tsgb_rand::{Rng, SeedableRng};
use tsgb_linalg::{Matrix, Tensor3};
use tsgb_wire::server::{spawn_accept_loop, Lifecycle, Reply};
use tsgb_wire::{HttpError, Json, Request};

/// How long [`Monitor::shutdown`] waits for handler threads.
const DRAIN_WAIT: Duration = Duration::from_secs(10);

/// Most windows accepted in one `/ingest` or `/drill` call.
const MAX_BATCH_WINDOWS: usize = 1024;

/// Monitor configuration. The `margin_*` fields are absolute slack
/// added on top of the relative [`MonitorConfig::drift_factor`]:
/// a measure flags when `current > baseline * drift_factor +
/// margin`. Margins default to a small fraction of each measure's
/// healthy dynamic range (MDD's ceiling is `2/bins = 0.04`, so its
/// margin is the tightest).
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Windows that set a method's baseline before flagging starts.
    pub calibrate: u64,
    /// Tumbling-accumulator size for drift checks.
    pub stride: u64,
    /// Minimum windows in the tumbling accumulator before it is
    /// compared against the baseline.
    pub min_eval: u64,
    /// Relative drift threshold (`1.5` = 50% above baseline).
    pub drift_factor: f64,
    /// Absolute margin for MDD.
    pub margin_mdd: f64,
    /// Absolute margin for ACD.
    pub margin_acd: f64,
    /// Absolute margin for SD.
    pub margin_sd: f64,
    /// Absolute margin for KD.
    pub margin_kd: f64,
    /// Absolute margin for the expensive measures (MMD, C-FID,
    /// DTW-NN), relative to their first post-calibration refresh.
    pub margin_expensive: f64,
    /// Expensive-measure refresh cadence in windows; `0` disables.
    pub refresh_every: u64,
    /// Retained recent windows per method (the generated side of each
    /// expensive refresh).
    pub window_cap: usize,
    /// Seed for the C-FID reference fit (part of its cache key).
    pub seed: u64,
    /// C-FID embedding dimension.
    pub embed_dim: usize,
    /// C-FID embedding training epochs.
    pub embed_epochs: usize,
    /// Sakoe-Chiba band for the DTW-NN pool.
    pub dtw_band: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7879".into(),
            calibrate: 32,
            stride: 32,
            min_eval: 8,
            drift_factor: 1.5,
            margin_mdd: 0.004,
            margin_acd: 0.05,
            margin_sd: 0.15,
            margin_kd: 0.4,
            margin_expensive: 0.25,
            refresh_every: 64,
            window_cap: 128,
            seed: 7,
            embed_dim: 6,
            embed_epochs: 40,
            dtw_band: 8,
        }
    }
}

/// The online measures the monitor tracks, with their flag margins.
const ONLINE_MEASURES: [&str; 4] = ["MDD", "ACD", "SD", "KD"];

struct MethodState {
    /// Everything since the method first appeared (reported).
    total: OnlineMeasures,
    /// Tumbling accumulator compared against the baseline.
    recent: OnlineMeasures,
    /// Bounded ring of the latest raw windows (expensive refreshes).
    ring: VecDeque<Matrix>,
    /// Worst (max) healthy tumble value per measure seen while
    /// calibrating — becomes the baseline.
    calib_max: BTreeMap<&'static str, f64>,
    /// Online baselines, frozen after `calibrate` windows: the
    /// per-measure maximum over tumbling calibration windows, so the
    /// baseline carries the same small-sample noise as the windows it
    /// is later compared against.
    baseline: Option<BTreeMap<&'static str, f64>>,
    /// First post-calibration expensive refresh (the baseline).
    expensive_base: Option<Vec<(&'static str, f64)>>,
    /// Latest expensive refresh.
    expensive_last: Option<Vec<(&'static str, f64)>>,
    /// Persistent drift flags, e.g. `"MDD"`, `"MMD"`.
    flags: Vec<String>,
    windows: u64,
    since_refresh: u64,
}

struct Shared {
    cfg: MonitorConfig,
    reference: Tensor3,
    /// Reference windows flattened to rows (the MMD input), computed
    /// once.
    ref_rows: Matrix,
    ref_digest: u64,
    /// Fresh accumulator cloned per method and per tumble.
    template: OnlineMeasures,
    cache: EvalCache,
    methods: Mutex<BTreeMap<String, MethodState>>,
    lifecycle: Arc<Lifecycle>,
}

/// A running quality monitor.
pub struct Monitor {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Monitor {
    /// Binds `cfg.addr`, precomputes the reference-side state, and
    /// starts accepting.
    pub fn start(reference: Tensor3, cfg: MonitorConfig) -> std::io::Result<Monitor> {
        assert!(
            cfg.calibrate >= cfg.min_eval,
            "calibration must observe at least one evaluation-sized tumble"
        );
        assert!(
            cfg.stride >= cfg.min_eval && cfg.min_eval >= 1,
            "need stride >= min_eval >= 1"
        );
        assert!(cfg.window_cap >= 2, "window_cap must hold at least 2 windows");
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let template = OnlineMeasures::new(&reference);
        let shared = Arc::new(Shared {
            ref_rows: reference.flatten_samples(),
            ref_digest: digest_tensor(&reference),
            reference,
            template,
            cache: EvalCache::in_memory(),
            cfg,
            methods: Mutex::new(BTreeMap::new()),
            lifecycle: Arc::new(Lifecycle::new()),
        });
        let handler_shared = Arc::clone(&shared);
        let accept = spawn_accept_loop(
            listener,
            "tsgb-monitor",
            Arc::clone(&shared.lifecycle),
            Arc::new(move |req: &Request| handle(req, &handler_shared)),
        )?;
        Ok(Monitor {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a `POST /shutdown` arrives.
    pub fn wait(&self) {
        self.shared.lifecycle.wait_stop();
    }

    /// Gracefully drains and stops the monitor.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shared.lifecycle.start_draining();
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.lifecycle.wait_idle(DRAIN_WAIT);
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn handle(req: &Request, shared: &Shared) -> Reply {
    tsgb_obs::counter_add("monitor.requests", 1);
    match route(req, shared) {
        Ok(reply) => reply,
        Err(e) => Reply::from(&e),
    }
}

fn route(req: &Request, shared: &Shared) -> Result<Reply, HttpError> {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => Ok(Reply::ok(healthz(shared))),
        ("GET", "/quality") => Ok(Reply::ok(quality(shared))),
        ("POST", "/ingest") => ingest(req, shared),
        ("POST", "/drill") => drill(req, shared),
        ("POST", "/shutdown") => {
            shared.lifecycle.signal_stop();
            shared.lifecycle.start_draining();
            Ok(Reply::ok(
                Json::Obj(vec![("status".into(), Json::Str("draining".into()))]).encode(),
            ))
        }
        (_, "/healthz" | "/quality" | "/ingest" | "/drill" | "/shutdown") => Err(
            HttpError::method_not_allowed(format!("{} not allowed on {path}", req.method)),
        ),
        _ => Err(HttpError::not_found(format!("no route {path}"))),
    }
}

fn healthz(shared: &Shared) -> String {
    let methods = shared.methods.lock().expect("monitor state poisoned");
    let windows: u64 = methods.values().map(|m| m.windows).sum();
    let (l, n) = (shared.reference.seq_len(), shared.reference.features());
    Json::Obj(vec![
        (
            "status".into(),
            Json::Str(if shared.lifecycle.draining() {
                "draining".into()
            } else {
                "ok".into()
            }),
        ),
        ("methods".into(), Json::Num(methods.len() as f64)),
        ("windows".into(), Json::Num(windows as f64)),
        ("seq_len".into(), Json::Num(l as f64)),
        ("features".into(), Json::Num(n as f64)),
        ("pid".into(), Json::Num(std::process::id() as f64)),
    ])
    .encode()
}

fn quality(shared: &Shared) -> String {
    let methods = shared.methods.lock().expect("monitor state poisoned");
    let per_method: Vec<(String, Json)> = methods
        .iter()
        .map(|(name, st)| (name.clone(), method_json(st)))
        .collect();
    let cs = shared.cache.stats();
    Json::Obj(vec![
        ("reference_windows".into(), Json::Num(shared.reference.samples() as f64)),
        ("methods".into(), Json::Obj(per_method)),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(cs.hits as f64)),
                ("misses".into(), Json::Num(cs.misses as f64)),
                ("bytes".into(), Json::Num(cs.bytes as f64)),
            ]),
        ),
    ])
    .encode()
}

fn method_json(st: &MethodState) -> Json {
    let mut fields = vec![
        ("windows".into(), Json::Num(st.windows as f64)),
        ("calibrated".into(), Json::Bool(st.baseline.is_some())),
    ];
    if st.windows > 0 {
        fields.push(("online".into(), scores_json(&st.total)));
    }
    if let Some(base) = &st.baseline {
        fields.push((
            "baseline".into(),
            Json::Obj(
                base.iter()
                    .map(|(k, v)| ((*k).into(), Json::Num(*v)))
                    .collect(),
            ),
        ));
    }
    if let Some(exp) = &st.expensive_last {
        fields.push((
            "expensive".into(),
            Json::Obj(exp.iter().map(|(k, v)| ((*k).into(), Json::Num(*v))).collect()),
        ));
    }
    fields.push((
        "flags".into(),
        Json::Arr(st.flags.iter().map(|f| Json::Str(f.clone())).collect()),
    ));
    Json::Obj(fields)
}

fn scores_json(m: &OnlineMeasures) -> Json {
    Json::Obj(vec![
        ("MDD".into(), Json::Num(m.mdd())),
        ("ACD".into(), Json::Num(m.acd())),
        ("SD".into(), Json::Num(m.sd())),
        ("KD".into(), Json::Num(m.kd())),
    ])
}

fn online_snapshot(m: &OnlineMeasures) -> BTreeMap<&'static str, f64> {
    BTreeMap::from([
        ("MDD", m.mdd()),
        ("ACD", m.acd()),
        ("SD", m.sd()),
        ("KD", m.kd()),
    ])
}

fn ingest(req: &Request, shared: &Shared) -> Result<Reply, HttpError> {
    if shared.lifecycle.draining() {
        return Err(HttpError::overloaded("monitor is draining", 1));
    }
    let body = parse_body(req)?;
    let method = required_str(&body, "method")?;
    let windows = match body.get("windows") {
        Some(Json::Arr(ws)) => ws,
        _ => return Err(HttpError::bad_request("missing array field \"windows\"")),
    };
    if windows.is_empty() || windows.len() > MAX_BATCH_WINDOWS {
        return Err(HttpError::bad_request(format!(
            "\"windows\" must hold 1..={MAX_BATCH_WINDOWS} windows"
        )));
    }
    let (l, n) = (shared.reference.seq_len(), shared.reference.features());
    let parsed: Vec<Matrix> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| parse_window(w, l, n).map_err(|e| HttpError::bad_request(format!("window {i}: {e}"))))
        .collect::<Result<_, _>>()?;
    let flags = absorb(shared, method, &parsed);
    Ok(Reply::ok(ingest_reply(parsed.len(), &flags)))
}

fn drill(req: &Request, shared: &Shared) -> Result<Reply, HttpError> {
    if shared.lifecycle.draining() {
        return Err(HttpError::overloaded("monitor is draining", 1));
    }
    let body = parse_body(req)?;
    let method = required_str(&body, "method")?;
    let count = body
        .get("n")
        .and_then(Json::as_u64)
        .ok_or_else(|| HttpError::bad_request("missing integer field \"n\""))?
        as usize;
    if count == 0 || count > MAX_BATCH_WINDOWS {
        return Err(HttpError::bad_request(format!(
            "\"n\" must be in 1..={MAX_BATCH_WINDOWS}"
        )));
    }
    let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(0);
    let kind = match body.get("drift") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(DriftKind::parse(s).ok_or_else(|| {
            HttpError::bad_request(format!(
                "unknown drift {s:?} (one of {:?})",
                DriftKind::ALL.map(DriftKind::name)
            ))
        })?),
        Some(_) => return Err(HttpError::bad_request("\"drift\" must be a string or null")),
    };
    let severity = body.get("severity").and_then(Json::as_f64).unwrap_or(1.0);
    if !(0.0..=100.0).contains(&severity) {
        return Err(HttpError::bad_request("\"severity\" must be in [0, 100]"));
    }
    // resample the reference with a small seeded jitter — a "healthy"
    // generator — then optionally push it through a drift injector
    let r = &shared.reference;
    let (l, n) = (r.seq_len(), r.features());
    let mut rng = SmallRng::seed_from_u64(seed);
    let idx: Vec<usize> = (0..count)
        .map(|_| rng.gen::<u64>() as usize % r.samples())
        .collect();
    let mut resampled = Tensor3::zeros(count, l, n);
    for (s, &src) in idx.iter().enumerate() {
        for t in 0..l {
            for f in 0..n {
                let jitter = 0.01 * (2.0 * rng.gen::<f64>() - 1.0);
                *resampled.at_mut(s, t, f) = r.at(src, t, f) + jitter;
            }
        }
    }
    let produced = match kind {
        Some(k) => drift::inject(&resampled, k, severity, seed ^ 0x5eed_d21f),
        None => resampled,
    };
    let parsed: Vec<Matrix> = (0..count)
        .map(|s| Matrix::from_fn(l, n, |t, f| produced.at(s, t, f)))
        .collect();
    let flags = absorb(shared, method, &parsed);
    Ok(Reply::ok(ingest_reply(parsed.len(), &flags)))
}

fn ingest_reply(accepted: usize, flags: &[String]) -> String {
    Json::Obj(vec![
        ("accepted".into(), Json::Num(accepted as f64)),
        (
            "flags".into(),
            Json::Arr(flags.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
    ])
    .encode()
}

/// Folds parsed windows into a method's state and returns the
/// method's (possibly newly grown) flag list.
fn absorb(shared: &Shared, method: &str, windows: &[Matrix]) -> Vec<String> {
    let cfg = &shared.cfg;
    let mut methods = shared.methods.lock().expect("monitor state poisoned");
    let st = methods.entry(method.to_string()).or_insert_with(|| MethodState {
        total: shared.template.clone(),
        recent: shared.template.clone(),
        ring: VecDeque::with_capacity(cfg.window_cap),
        calib_max: BTreeMap::new(),
        baseline: None,
        expensive_base: None,
        expensive_last: None,
        flags: Vec::new(),
        windows: 0,
        since_refresh: 0,
    });
    for w in windows {
        st.total.push(w);
        if st.ring.len() == cfg.window_cap {
            st.ring.pop_front();
        }
        st.ring.push_back(w.clone());
        st.windows += 1;
        st.since_refresh += 1;
        tsgb_obs::counter_add("monitor.windows", 1);
        match &st.baseline {
            None => {
                // calibration tumbles exactly like evaluation will, so
                // the baseline is a worst healthy value at the same
                // window counts it is later compared against
                st.recent.push(w);
                if st.recent.windows() >= cfg.min_eval {
                    let cur = online_snapshot(&st.recent);
                    for m in ONLINE_MEASURES {
                        let worst = st.calib_max.entry(m).or_insert(f64::NEG_INFINITY);
                        *worst = worst.max(cur[m]);
                    }
                }
                if st.recent.windows() >= cfg.stride {
                    st.recent = shared.template.clone();
                }
                if st.windows >= cfg.calibrate {
                    st.baseline = Some(std::mem::take(&mut st.calib_max));
                    st.recent = shared.template.clone();
                }
            }
            Some(_) => {
                st.recent.push(w);
                if st.recent.windows() >= cfg.min_eval {
                    check_online_flags(cfg, st);
                }
                if st.recent.windows() >= cfg.stride {
                    st.recent = shared.template.clone();
                }
            }
        }
        if cfg.refresh_every > 0
            && st.baseline.is_some()
            && st.since_refresh >= cfg.refresh_every
            && st.ring.len() >= 2
        {
            refresh_expensive(shared, st);
            st.since_refresh = 0;
        }
    }
    st.flags.clone()
}

fn check_online_flags(cfg: &MonitorConfig, st: &mut MethodState) {
    let base = st.baseline.clone().expect("checked by caller");
    let cur = online_snapshot(&st.recent);
    for m in ONLINE_MEASURES {
        let margin = match m {
            "MDD" => cfg.margin_mdd,
            "ACD" => cfg.margin_acd,
            "SD" => cfg.margin_sd,
            _ => cfg.margin_kd,
        };
        raise_if_exceeded(st, m, base[m], cur[m], cfg.drift_factor, margin);
    }
}

fn raise_if_exceeded(
    st: &mut MethodState,
    measure: &str,
    base: f64,
    cur: f64,
    factor: f64,
    margin: f64,
) {
    if cur > base * factor + margin && !st.flags.iter().any(|f| f == measure) {
        st.flags.push(measure.to_string());
        st.flags.sort();
        tsgb_obs::counter_add("monitor.drift_flags", 1);
    }
}

/// Recomputes MMD, C-FID and DTW-NN of the retained ring against the
/// reference, through the cache: the reference-side structures hit
/// after the first refresh, so a refresh costs only the
/// generated-side work.
fn refresh_expensive(shared: &Shared, st: &mut MethodState) {
    let cfg = &shared.cfg;
    let r = &shared.reference;
    let (l, n) = (r.seq_len(), r.features());
    let generated = Tensor3::from_fn(st.ring.len(), l, n, |s, t, f| st.ring[s][(t, f)]);
    let gen_rows = generated.flatten_samples();

    let mmd = mmd2_rows_cached(&shared.ref_rows, &gen_rows, Some(&shared.cache));

    let cfid_key = CacheKey::new("cfid.ref", shared.ref_digest, 0, {
        let mut h = Fnv64::new();
        h.update(b"tsgb.monitor.cfid");
        h.update_u64(cfg.embed_dim as u64);
        h.update_u64(cfg.embed_epochs as u64);
        h.update_u64(cfg.seed);
        h.finish()
    });
    let reference_fit = shared.cache.get_or_insert_with(
        cfid_key,
        |c: &CfidRef| c.approx_bytes(),
        || cfid_ref(r, cfg.embed_dim, cfg.embed_epochs, cfg.seed),
    );
    let cfid = reference_fit.score(&generated);

    let pool_key = CacheKey::new("dtwnn.pool", shared.ref_digest, 0, {
        let mut h = Fnv64::new();
        h.update(b"tsgb.monitor.dtwnn");
        h.update_u64(cfg.dtw_band as u64);
        h.update_u64(l as u64);
        h.finish()
    });
    let pool = shared.cache.get_or_insert_with(
        pool_key,
        |p: &DtwNnPool| (p.len() * l * n * 2 + r.samples() * l * n) * 8,
        || DtwNnPool::build(r, l, cfg.dtw_band),
    );
    let dtw = dtw_nn_mean(&generated, &pool);

    let scores: Vec<(&'static str, f64)> =
        vec![("MMD", mmd), ("C-FID", cfid), ("DTW-NN", dtw)];
    tsgb_obs::counter_add("monitor.refreshes", 1);
    match &st.expensive_base {
        None => st.expensive_base = Some(scores.clone()),
        Some(base) => {
            for ((name, b), (_, c)) in base.clone().iter().zip(&scores) {
                raise_if_exceeded(st, name, *b, *c, cfg.drift_factor, cfg.margin_expensive);
            }
        }
    }
    st.expensive_last = Some(scores);
}

fn parse_body(req: &Request) -> Result<Json, HttpError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| HttpError::bad_request("body is not UTF-8"))?;
    Json::parse(text).map_err(|e| HttpError::bad_request(format!("bad JSON: {e}")))
}

fn required_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, HttpError> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| HttpError::bad_request(format!("missing string field {key:?}")))
}

/// Parses one `[[f, ..], ..]` window into an `(l, n)` matrix.
fn parse_window(w: &Json, l: usize, n: usize) -> Result<Matrix, String> {
    let steps = match w {
        Json::Arr(steps) => steps,
        _ => return Err("window must be an array of steps".into()),
    };
    if steps.len() != l {
        return Err(format!("expected {l} steps, got {}", steps.len()));
    }
    let mut m = Matrix::zeros(l, n);
    for (t, step) in steps.iter().enumerate() {
        let vals = match step {
            Json::Arr(vals) => vals,
            _ => return Err(format!("step {t} must be an array of features")),
        };
        if vals.len() != n {
            return Err(format!("step {t}: expected {n} features, got {}", vals.len()));
        }
        for (f, v) in vals.iter().enumerate() {
            let x = v
                .as_f64()
                .ok_or_else(|| format!("step {t}, feature {f}: not a number"))?;
            if !x.is_finite() {
                return Err(format!("step {t}, feature {f}: not finite"));
            }
            m[(t, f)] = x;
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_parser_checks_shape_and_values() {
        let good = Json::parse("[[0.1,0.2],[0.3,0.4]]").unwrap();
        let m = parse_window(&good, 2, 2).unwrap();
        assert_eq!(m[(1, 0)], 0.3);
        assert!(parse_window(&good, 3, 2).is_err());
        assert!(parse_window(&good, 2, 1).is_err());
        let nan = Json::parse("[[0.1,0.2],[0.3,\"x\"]]").unwrap();
        assert!(parse_window(&nan, 2, 2).is_err());
    }

    #[test]
    fn default_config_is_coherent() {
        let c = MonitorConfig::default();
        assert!(c.stride >= c.min_eval);
        assert!(c.drift_factor > 1.0);
        assert!(c.margin_mdd < 0.04, "MDD margin must fit under its ceiling");
    }
}
