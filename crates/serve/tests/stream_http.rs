//! Integration tests for `POST /generate/stream` and conditional
//! `/generate` over a live listener: streamed chunks reassemble to
//! the exact one-shot response, frame metadata is consistent, the
//! per-chunk deadline check ends a stream with an error object, a
//! stream in flight survives a graceful drain, and the `condition`
//! field routes (or 400s) correctly.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use tsgb_linalg::rng::seeded;
use tsgb_linalg::Tensor3;
use tsgb_methods::persist::{PersistError, SnapshotWriter};
use tsgb_methods::{
    GenSpec, MethodId, TrainConfig, TrainReport, TsgMethod, WindowStream,
};
use tsgb_rand::rngs::SmallRng;
use tsgb_serve::{Json, Registry, ServeConfig, Server};
use tsgb_wire::{http_request, http_request_stream};

fn ephemeral() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

fn fitted_vae() -> Box<dyn TsgMethod> {
    let data = Tensor3::from_fn(12, 8, 2, |s, t, f| {
        0.5 + 0.3 * ((t as f64) * 0.8 + s as f64 * 0.3 + f as f64).sin()
    });
    let mut m = MethodId::TimeVae.create(8, 2);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::fast()
    };
    m.fit(&data, &cfg, &mut seeded(11));
    m
}

fn vae_registry() -> Registry {
    let mut r = Registry::new();
    r.insert("vae", fitted_vae()).unwrap();
    r
}

/// A pre-fitted method whose stream yields one window per chunk with a
/// fixed delay — the knob the deadline and drain tests turn.
struct SlowStreamMethod {
    delay: Duration,
}

struct SlowStream {
    delay: Duration,
    remaining: usize,
}

impl WindowStream for SlowStream {
    fn next_chunk(&mut self, len: usize) -> Option<Tensor3> {
        if self.remaining == 0 {
            return None;
        }
        std::thread::sleep(self.delay);
        let take = len.max(1).min(self.remaining);
        self.remaining -= take;
        Some(Tensor3::zeros(take, 8, 2))
    }
    fn remaining(&self) -> usize {
        self.remaining
    }
}

impl TsgMethod for SlowStreamMethod {
    fn id(&self) -> MethodId {
        MethodId::Rgan
    }
    fn fit(&mut self, _: &Tensor3, _: &TrainConfig, _: &mut SmallRng) -> TrainReport {
        unreachable!("SlowStreamMethod is pre-fitted")
    }
    fn generate(&self, n: usize, _: &mut SmallRng) -> Tensor3 {
        Tensor3::zeros(n, 8, 2)
    }
    fn open_stream(&self, spec: GenSpec) -> Box<dyn WindowStream + '_> {
        Box::new(SlowStream {
            delay: self.delay,
            remaining: spec.n,
        })
    }
    fn save(&self) -> Option<Vec<u8>> {
        Some(SnapshotWriter::new(self.id(), 8, 2).finish())
    }
    fn load(&mut self, _: &[u8]) -> Result<(), PersistError> {
        Ok(())
    }
}

fn slow_registry(delay_ms: u64) -> Registry {
    let mut r = Registry::new();
    r.insert(
        "slow",
        Box::new(SlowStreamMethod {
            delay: Duration::from_millis(delay_ms),
        }),
    )
    .unwrap();
    r
}

/// Collects a whole chunked stream: returns (status, parsed frames).
fn stream_frames(addr: SocketAddr, body: &str) -> (u16, Vec<Json>) {
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    let mut resp =
        http_request_stream(&mut conn, "POST", "/generate/stream", body.as_bytes()).unwrap();
    let mut frames = Vec::new();
    while let Some(chunk) = resp.next_chunk(&mut conn).unwrap() {
        let text = String::from_utf8(chunk).unwrap();
        frames.push(Json::parse(&text).unwrap_or_else(|e| panic!("bad frame {text:?}: {e}")));
    }
    (resp.status, frames)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    let resp = http_request(&mut conn, "POST", path, body.as_bytes()).unwrap();
    (resp.status, String::from_utf8(resp.body).unwrap())
}

fn one_shot(addr: SocketAddr, body: &str) -> (u16, Json) {
    let (status, text) = post(addr, "/generate", body);
    (status, Json::parse(&text).unwrap())
}

#[test]
fn streamed_chunks_reassemble_to_the_one_shot_response() {
    let server = Server::start(vae_registry(), ephemeral()).unwrap();
    let addr = server.addr();
    let req = "{\"model\":\"vae\",\"n\":10,\"seed\":5}";
    let (status, reference) = one_shot(addr, req);
    assert_eq!(status, 200);

    for chunk in [1usize, 3, 10, 16] {
        let body = format!("{{\"model\":\"vae\",\"n\":10,\"seed\":5,\"chunk\":{chunk}}}");
        let (status, frames) = stream_frames(addr, &body);
        assert_eq!(status, 200);

        let head = &frames[0];
        assert_eq!(head.get("model"), Some(&Json::Str("vae".into())));
        assert_eq!(head.get("n").and_then(Json::as_u64), Some(10));
        assert_eq!(head.get("chunk").and_then(Json::as_u64), Some(chunk as u64));

        let tail = frames.last().unwrap();
        assert_eq!(tail.get("done"), Some(&Json::Bool(true)));
        assert_eq!(tail.get("windows").and_then(Json::as_u64), Some(10));
        let expected_chunks = 10usize.div_ceil(chunk) as u64;
        assert_eq!(tail.get("chunks").and_then(Json::as_u64), Some(expected_chunks));

        // data frames: offsets contiguous, samples concatenate to the
        // one-shot array — same parser, so equality here is equality of
        // every float's shortest-roundtrip encoding, i.e. of its bits
        let mut samples = Vec::new();
        let mut offset = 0u64;
        for frame in &frames[1..frames.len() - 1] {
            assert_eq!(frame.get("offset").and_then(Json::as_u64), Some(offset));
            let Some(Json::Arr(part)) = frame.get("samples") else {
                panic!("frame without samples: {frame:?}");
            };
            assert_eq!(
                frame.get("count").and_then(Json::as_u64),
                Some(part.len() as u64)
            );
            offset += part.len() as u64;
            samples.extend(part.iter().cloned());
        }
        let Some(Json::Arr(expected)) = reference.get("samples") else {
            panic!("one-shot response without samples");
        };
        assert_eq!(
            &samples, expected,
            "chunk={chunk}: streamed windows differ from one-shot"
        );
    }
    server.shutdown();
}

#[test]
fn per_chunk_deadline_ends_the_stream_with_an_error_object() {
    // 60 ms per window, 5 windows, 100 ms deadline: the stream starts
    // healthy and expires mid-flight
    let server = Server::start(slow_registry(60), ephemeral()).unwrap();
    let body = "{\"model\":\"slow\",\"n\":5,\"seed\":1,\"chunk\":1,\"deadline_ms\":100}";
    let (status, frames) = stream_frames(server.addr(), body);
    assert_eq!(status, 200, "stream starts before the deadline trips");
    let tail = frames.last().unwrap();
    assert_eq!(
        tail.get("done"),
        Some(&Json::Bool(false)),
        "expired stream must not claim completion: {tail:?}"
    );
    assert!(tail.get("error").is_some(), "missing error object: {tail:?}");
    let sent = tail.get("chunks").and_then(Json::as_u64).unwrap();
    assert!(sent < 5, "all chunks arrived despite the deadline");
    server.shutdown();
}

#[test]
fn an_expired_deadline_is_rejected_before_streaming() {
    let server = Server::start(vae_registry(), ephemeral()).unwrap();
    let (status, _) = post(
        server.addr(),
        "/generate/stream",
        "{\"model\":\"vae\",\"n\":4,\"deadline_ms\":0}",
    );
    assert_eq!(status, 504);
    server.shutdown();
}

#[test]
fn a_stream_in_flight_survives_graceful_drain() {
    let server = Server::start(slow_registry(40), ephemeral()).unwrap();
    let addr = server.addr();
    let client = std::thread::spawn(move || {
        stream_frames(addr, "{\"model\":\"slow\",\"n\":6,\"seed\":2,\"chunk\":1}")
    });
    // let the stream begin, then drain while chunks are still flowing
    std::thread::sleep(Duration::from_millis(90));
    let t0 = Instant::now();
    server.shutdown();
    let (status, frames) = client.join().unwrap();
    assert_eq!(status, 200);
    let tail = frames.last().unwrap();
    assert_eq!(
        tail.get("done"),
        Some(&Json::Bool(true)),
        "drain truncated an accepted stream: {tail:?}"
    );
    assert_eq!(tail.get("windows").and_then(Json::as_u64), Some(6));
    assert!(
        t0.elapsed() >= Duration::from_millis(50),
        "shutdown returned before the stream finished"
    );
}

#[test]
fn conditional_generate_routes_and_strength_zero_is_identical() {
    let server = Server::start(vae_registry(), ephemeral()).unwrap();
    let addr = server.addr();
    let (status, plain) = one_shot(addr, "{\"model\":\"vae\",\"n\":6,\"seed\":9}");
    assert_eq!(status, 200);

    let (status, zero) = one_shot(
        addr,
        "{\"model\":\"vae\",\"n\":6,\"seed\":9,\"condition\":{\"class\":2,\"strength\":0.0}}",
    );
    assert_eq!(status, 200);
    assert_eq!(
        plain.get("samples"),
        zero.get("samples"),
        "strength 0 must be bit-identical to unconditional"
    );

    let (status, shaped) = one_shot(
        addr,
        "{\"model\":\"vae\",\"n\":6,\"seed\":9,\"condition\":{\"class\":2,\"strength\":2.0}}",
    );
    assert_eq!(status, 200);
    assert_ne!(
        plain.get("samples"),
        shaped.get("samples"),
        "a real condition must shape the draw"
    );

    // covariate form parses too
    let (status, cov) = one_shot(
        addr,
        "{\"model\":\"vae\",\"n\":6,\"seed\":9,\"condition\":{\"covariates\":[1.0,0.0],\"strength\":1.5}}",
    );
    assert_eq!(status, 200);
    assert!(cov.get("samples").is_some());
    server.shutdown();
}

#[test]
fn conditional_generate_rejects_unsupported_models_and_bad_bodies() {
    // SlowStreamMethod has no ConditionalSample capability
    let server = Server::start(slow_registry(1), ephemeral()).unwrap();
    let addr = server.addr();
    let (status, text) = post(
        addr,
        "/generate",
        "{\"model\":\"slow\",\"n\":2,\"condition\":{\"class\":1}}",
    );
    assert_eq!(status, 400);
    assert!(text.contains("does not support"), "{text}");

    for bad in [
        "{\"model\":\"slow\",\"n\":2,\"condition\":{}}",
        "{\"model\":\"slow\",\"n\":2,\"condition\":{\"class\":-1}}",
        "{\"model\":\"slow\",\"n\":2,\"condition\":{\"covariates\":\"x\"}}",
    ] {
        let (status, _) = post(addr, "/generate", bad);
        assert_eq!(status, 400, "{bad}");
    }
    // chunk 0 is only invalid on the stream route
    let (status, _) = post(addr, "/generate/stream", "{\"model\":\"slow\",\"n\":2,\"chunk\":0}");
    assert_eq!(status, 400);
    server.shutdown();
}
