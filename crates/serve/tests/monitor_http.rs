//! Integration tests for `tsgbench monitor` against a live listener:
//! healthy streams stay unflagged, every seeded drift injection is
//! flagged within a bounded number of windows, the expensive measures
//! refresh through the eval cache, and shutdown drains gracefully.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use tsgb_data::drift::DriftKind;
use tsgb_linalg::rng::seeded;
use tsgb_linalg::Tensor3;
use tsgb_rand::Rng;
use tsgb_serve::{Json, Monitor, MonitorConfig};

// ---------------------------------------------------------------- helpers

const SEQ_LEN: usize = 16;
const FEATURES: usize = 2;

/// Seeded per-window sine + in-window trend: enough temporal
/// structure that a circular rotation (SeasonalityShift) is visible
/// in the per-step marginals and the autocorrelation, not just noise.
fn reference(windows: usize, seed: u64) -> Tensor3 {
    let mut rng = seeded(seed);
    let phases: Vec<f64> = (0..windows * FEATURES)
        .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
        .collect();
    Tensor3::from_fn(windows, SEQ_LEN, FEATURES, |s, t, f| {
        let phase = phases[s * FEATURES + f];
        0.3 + 0.2 * (0.8 * t as f64 + phase).sin() + 0.03 * t as f64
    })
}

/// A monitor config sized for tests: fast calibration, online-only
/// unless a test opts into expensive refreshes.
fn test_config(refresh_every: u64) -> MonitorConfig {
    MonitorConfig {
        addr: "127.0.0.1:0".into(),
        calibrate: 48,
        stride: 24,
        min_eval: 12,
        refresh_every,
        window_cap: 32,
        embed_dim: 4,
        embed_epochs: 8,
        dtw_band: 4,
        ..MonitorConfig::default()
    }
}

fn exchange(stream: &mut TcpStream, raw: &str) -> (u16, String) {
    stream.write_all(raw.as_bytes()).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let body_len: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.trim().parse().unwrap())
        .unwrap_or(0);
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < body_len {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(body_len);
    (status, String::from_utf8(body).unwrap())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    exchange(
        &mut s,
        &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    exchange(
        &mut s,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Drills `n` windows into `method`; `drift: None` is a healthy
/// resample of the reference.
fn drill(addr: SocketAddr, method: &str, n: usize, seed: u64, drift: Option<DriftKind>) -> Json {
    let drift_field = match drift {
        Some(k) => format!(",\"drift\":\"{}\",\"severity\":2.0", k.name()),
        None => String::new(),
    };
    let body = format!("{{\"method\":\"{method}\",\"n\":{n},\"seed\":{seed}{drift_field}}}");
    let (status, resp) = post(addr, "/drill", &body);
    assert_eq!(status, 200, "drill failed: {resp}");
    Json::parse(&resp).unwrap()
}

fn method_flags(addr: SocketAddr, method: &str) -> Vec<String> {
    let (status, body) = get(addr, "/quality");
    assert_eq!(status, 200, "{body}");
    let q = Json::parse(&body).unwrap();
    let m = q
        .get("methods")
        .and_then(|ms| ms.get(method))
        .unwrap_or_else(|| panic!("method {method:?} missing from /quality: {body}"));
    match m.get("flags") {
        Some(Json::Arr(fs)) => fs
            .iter()
            .map(|f| f.as_str().expect("flag is a string").to_string())
            .collect(),
        other => panic!("flags missing or not an array: {other:?}"),
    }
}

// ------------------------------------------------------------------ tests

#[test]
fn smoke_healthz_ingest_quality_shutdown() {
    let monitor = Monitor::start(reference(64, 1), test_config(0)).unwrap();
    let addr = monitor.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("seq_len").unwrap().as_u64(), Some(SEQ_LEN as u64));
    assert_eq!(health.get("features").unwrap().as_u64(), Some(FEATURES as u64));

    // hand-rolled ingest of two explicit windows
    let window: String = {
        let steps: Vec<String> = (0..SEQ_LEN)
            .map(|t| format!("[{:.3},{:.3}]", 0.4 + 0.01 * t as f64, 0.5))
            .collect();
        format!("[{}]", steps.join(","))
    };
    let (status, body) = post(
        addr,
        "/ingest",
        &format!("{{\"method\":\"m\",\"windows\":[{window},{window}]}}"),
    );
    assert_eq!(status, 200, "{body}");
    let resp = Json::parse(&body).unwrap();
    assert_eq!(resp.get("accepted").unwrap().as_u64(), Some(2));

    let (status, body) = get(addr, "/quality");
    assert_eq!(status, 200);
    let q = Json::parse(&body).unwrap();
    let m = q.get("methods").unwrap().get("m").unwrap();
    assert_eq!(m.get("windows").unwrap().as_u64(), Some(2));
    assert_eq!(m.get("calibrated"), Some(&Json::Bool(false)));
    assert!(m.get("online").unwrap().get("MDD").unwrap().as_f64().is_some());

    let (status, body) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    monitor.wait();
    monitor.shutdown();
}

#[test]
fn healthy_stream_raises_no_flags() {
    let monitor = Monitor::start(reference(128, 2), test_config(0)).unwrap();
    let addr = monitor.addr();
    // calibrate, then keep streaming healthy resamples well past
    // several tumbling evaluation windows
    for round in 0..12u64 {
        drill(addr, "healthy", 16, 100 + round, None);
    }
    let flags = method_flags(addr, "healthy");
    assert!(flags.is_empty(), "healthy stream was flagged: {flags:?}");
    monitor.shutdown();
}

#[test]
fn every_drift_kind_is_flagged_within_budget() {
    let monitor = Monitor::start(reference(128, 3), test_config(0)).unwrap();
    let addr = monitor.addr();
    // the detection budget: drift must be flagged within this many
    // drifted windows after a healthy calibration
    const BUDGET_WINDOWS: usize = 160;
    const BATCH: usize = 16;
    for kind in DriftKind::ALL {
        let method = kind.name();
        // healthy calibration (48 windows = cfg.calibrate)
        for round in 0..3u64 {
            drill(addr, method, 16, 200 + round, None);
        }
        assert!(
            method_flags(addr, method).is_empty(),
            "{method}: flagged during calibration"
        );
        let mut flagged_at = None;
        for batch in 0..BUDGET_WINDOWS / BATCH {
            drill(addr, method, BATCH, 300 + batch as u64, Some(kind));
            let flags = method_flags(addr, method);
            if !flags.is_empty() {
                flagged_at = Some(((batch + 1) * BATCH, flags));
                break;
            }
        }
        let (windows, flags) = flagged_at.unwrap_or_else(|| {
            panic!("{method}: not flagged within {BUDGET_WINDOWS} drifted windows")
        });
        assert!(
            windows <= BUDGET_WINDOWS,
            "{method}: flagged too late ({windows} windows)"
        );
        eprintln!("{method}: flagged after {windows} windows: {flags:?}");
    }
    monitor.shutdown();
}

#[test]
fn expensive_measures_refresh_through_the_cache() {
    let mut cfg = test_config(16);
    cfg.calibrate = 16;
    cfg.stride = 16;
    cfg.min_eval = 8;
    let monitor = Monitor::start(reference(64, 4), cfg).unwrap();
    let addr = monitor.addr();
    // enough healthy windows for calibration plus two refreshes
    for round in 0..4u64 {
        drill(addr, "m", 16, 400 + round, None);
    }
    let (status, body) = get(addr, "/quality");
    assert_eq!(status, 200);
    let q = Json::parse(&body).unwrap();
    let m = q.get("methods").unwrap().get("m").unwrap();
    let expensive = m
        .get("expensive")
        .unwrap_or_else(|| panic!("no expensive scores after refresh: {body}"));
    for measure in ["MMD", "C-FID", "DTW-NN"] {
        let v = expensive
            .get(measure)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{measure} missing: {body}"));
        // MMD² is an unbiased estimate and may be slightly negative
        assert!(v.is_finite() && v > -0.1, "{measure} = {v}");
    }
    // the reference-side structures (pairwise block, C-FID reference
    // fit, DTW-NN pool) were built on the first refresh and served
    // warm on the second
    let cache = q.get("cache").unwrap();
    let hits = cache.get("hits").unwrap().as_u64().unwrap();
    let misses = cache.get("misses").unwrap().as_u64().unwrap();
    assert!(misses >= 3, "first refresh must build entries: {body}");
    assert!(hits >= 3, "second refresh must hit the cache: {body}");
    // a healthy stream must not trip the expensive flags either
    assert!(method_flags(addr, "m").is_empty());
    monitor.shutdown();
}

#[test]
fn structured_errors_cover_bad_input() {
    let monitor = Monitor::start(reference(64, 5), test_config(0)).unwrap();
    let addr = monitor.addr();
    let code = |body: &str| {
        Json::parse(body)
            .unwrap()
            .get("error")
            .and_then(|e| e.get("code").and_then(Json::as_str).map(String::from))
            .unwrap_or_else(|| panic!("unstructured error body: {body}"))
    };

    let (status, body) = post(addr, "/ingest", "{not json");
    assert_eq!((status, code(&body).as_str()), (400, "bad_request"));

    let (status, body) = post(addr, "/ingest", "{\"method\":\"m\",\"windows\":[]}");
    assert_eq!((status, code(&body).as_str()), (400, "bad_request"));

    // wrong window shape: 2 steps instead of 16
    let (status, body) = post(
        addr,
        "/ingest",
        "{\"method\":\"m\",\"windows\":[[[0.1,0.2],[0.3,0.4]]]}",
    );
    assert_eq!((status, code(&body).as_str()), (400, "bad_request"));
    assert!(body.contains("window 0"), "{body}");

    let (status, body) = post(addr, "/drill", "{\"method\":\"m\",\"n\":4,\"drift\":\"nope\"}");
    assert_eq!((status, code(&body).as_str()), (400, "bad_request"));

    let (status, body) = post(addr, "/drill", "{\"method\":\"m\"}");
    assert_eq!((status, code(&body).as_str()), (400, "bad_request"));

    let (status, body) = get(addr, "/drill");
    assert_eq!((status, code(&body).as_str()), (405, "method_not_allowed"));

    let (status, body) = get(addr, "/nowhere");
    assert_eq!((status, code(&body).as_str()), (404, "not_found"));

    monitor.shutdown();
}
