//! Integration tests against a live listener: every robustness
//! promise in the serving contract — batching bit-identity, 503
//! backpressure with `Retry-After`, 504 deadlines, structured errors,
//! and graceful drain with zero dropped in-flight requests — is
//! exercised over a real TCP connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use tsgb_linalg::rng::seeded;
use tsgb_linalg::Tensor3;
use tsgb_methods::common::GenSpec;
use tsgb_methods::persist::{PersistError, SnapshotWriter};
use tsgb_methods::{MethodId, TrainConfig, TrainReport, TsgMethod};
use tsgb_rand::rngs::SmallRng;
use tsgb_serve::{Json, Registry, ServeConfig, Server};

// ---------------------------------------------------------------- helpers

fn ephemeral(max_batch: usize, linger_ms: u64, queue_cap: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        max_batch,
        linger_ms,
        queue_cap,
        ..ServeConfig::default()
    }
}

fn fitted_vae() -> Box<dyn TsgMethod> {
    let data = Tensor3::from_fn(12, 8, 2, |s, t, f| {
        0.5 + 0.3 * ((t as f64) * 0.8 + s as f64 * 0.3 + f as f64).sin()
    });
    let mut m = MethodId::TimeVae.create(8, 2);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::fast()
    };
    m.fit(&data, &cfg, &mut seeded(11));
    m
}

fn vae_registry() -> Registry {
    let mut r = Registry::new();
    r.insert("vae", fitted_vae()).unwrap();
    r
}

/// A deliberately slow fitted method for backpressure and deadline
/// tests: each `generate` call sleeps `delay` then returns zeros.
struct SlowMethod {
    delay: Duration,
}

impl TsgMethod for SlowMethod {
    fn id(&self) -> MethodId {
        MethodId::Rgan
    }
    fn fit(&mut self, _: &Tensor3, _: &TrainConfig, _: &mut SmallRng) -> TrainReport {
        unreachable!("SlowMethod is pre-fitted")
    }
    fn generate(&self, n: usize, _: &mut SmallRng) -> Tensor3 {
        std::thread::sleep(self.delay);
        Tensor3::zeros(n, 8, 2)
    }
    fn save(&self) -> Option<Vec<u8>> {
        Some(SnapshotWriter::new(self.id(), 8, 2).finish())
    }
    fn load(&mut self, _: &[u8]) -> Result<(), PersistError> {
        Ok(())
    }
}

fn slow_registry(delay_ms: u64) -> Registry {
    let mut r = Registry::new();
    r.insert(
        "slow",
        Box::new(SlowMethod {
            delay: Duration::from_millis(delay_ms),
        }),
    )
    .unwrap();
    r
}

/// Sends one request over an existing connection and reads one
/// `Content-Length`-framed response.
fn exchange(
    stream: &mut TcpStream,
    raw: &str,
) -> (u16, Vec<(String, String)>, String) {
    stream.write_all(raw.as_bytes()).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body_len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().unwrap())
        .unwrap_or(0);
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < body_len {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(body_len);
    (status, headers, String::from_utf8(body).unwrap())
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    exchange(
        &mut s,
        &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    exchange(
        &mut s,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn generate_body(model: &str, n: usize, seed: u64) -> String {
    format!("{{\"model\":\"{model}\",\"n\":{n},\"seed\":{seed}}}")
}

// ------------------------------------------------------------------ tests

#[test]
fn smoke_healthz_models_generate_shutdown() {
    tsgb_obs::set_enabled(true);
    let server = Server::start(vae_registry(), ephemeral(8, 2, 64)).unwrap();
    let addr = server.addr();

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("models").unwrap().as_u64(), Some(1));

    let (status, _, body) = get(addr, "/models");
    assert_eq!(status, 200);
    let models = Json::parse(&body).unwrap();
    let Json::Arr(list) = models.get("models").unwrap() else {
        panic!("models is not an array: {body}");
    };
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].get("name").unwrap().as_str(), Some("vae"));
    assert_eq!(list[0].get("method").unwrap().as_str(), Some("TimeVAE"));
    assert_eq!(list[0].get("seq_len").unwrap().as_u64(), Some(8));
    assert_eq!(list[0].get("features").unwrap().as_u64(), Some(2));

    let (status, _, body) = post(addr, "/generate", &generate_body("vae", 3, 42));
    assert_eq!(status, 200, "{body}");
    let resp = Json::parse(&body).unwrap();
    assert_eq!(resp.get("n").unwrap().as_u64(), Some(3));
    assert_eq!(resp.get("seed").unwrap().as_u64(), Some(42));
    let Json::Arr(samples) = resp.get("samples").unwrap() else {
        panic!("samples missing");
    };
    assert_eq!(samples.len(), 3);

    // the serving path is deterministic: same (n, seed) → same body
    let (_, _, again) = post(addr, "/generate", &generate_body("vae", 3, 42));
    assert_eq!(body, again, "responses must be a pure function of (n, seed)");

    // obs wiring: the counters moved during this exchange
    let snap = tsgb_obs::snapshot();
    let requests = snap
        .counters
        .iter()
        .find(|(k, _)| k == "serve.requests")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(requests >= 4, "serve.requests should count, got {requests}");

    let (status, _, body) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    server.wait(); // returns because /shutdown signalled
    server.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let server = Server::start(vae_registry(), ephemeral(4, 1, 16)).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    for seed in [1u64, 2, 3] {
        let body = generate_body("vae", 1, seed);
        let (status, _, resp) = exchange(
            &mut s,
            &format!(
                "POST /generate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert_eq!(status, 200, "{resp}");
        assert_eq!(
            Json::parse(&resp).unwrap().get("seed").unwrap().as_u64(),
            Some(seed)
        );
    }
    server.shutdown();
}

#[test]
fn structured_errors_cover_the_4xx_space() {
    let server = Server::start(vae_registry(), ephemeral(4, 1, 16)).unwrap();
    let addr = server.addr();
    let code = |body: &str| {
        Json::parse(body)
            .unwrap()
            .get("error")
            .and_then(|e| e.get("code").and_then(Json::as_str).map(String::from))
            .unwrap_or_else(|| panic!("unstructured error body: {body}"))
    };

    let (status, _, body) = post(addr, "/generate", "{not json");
    assert_eq!((status, code(&body).as_str()), (400, "bad_request"));

    let (status, _, body) = post(addr, "/generate", "{\"n\":1}");
    assert_eq!((status, code(&body).as_str()), (400, "bad_request"));

    let (status, _, body) = post(addr, "/generate", &generate_body("vae", 0, 1));
    assert_eq!((status, code(&body).as_str()), (400, "bad_request"));

    let (status, _, body) = post(addr, "/generate", &generate_body("nope", 1, 1));
    assert_eq!((status, code(&body).as_str()), (404, "not_found"));

    let (status, _, body) = get(addr, "/generate");
    assert_eq!((status, code(&body).as_str()), (405, "method_not_allowed"));

    let (status, _, body) = get(addr, "/nowhere");
    assert_eq!((status, code(&body).as_str()), (404, "not_found"));

    server.shutdown();
}

#[test]
fn malformed_wire_input_gets_a_structured_400() {
    // not-HTTP bytes on the socket must be answered with the same
    // structured error shape as application-level 4xx, then closed —
    // the wire layer's Malformed contract, observed end to end
    let server = Server::start(vae_registry(), ephemeral(4, 1, 16)).unwrap();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"NOT-HTTP ???\r\ncontent-length: banana\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap(); // server closes after the 400
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    let body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let err = Json::parse(body).unwrap();
    assert_eq!(
        err.get("error").unwrap().get("code").unwrap().as_str(),
        Some("bad_request")
    );
    server.shutdown();
}

#[test]
fn full_queue_rejects_503_with_retry_after() {
    // queue capacity 0: every generate bounces synchronously, which
    // makes the rejection deterministic
    let server = Server::start(slow_registry(50), ephemeral(1, 0, 0)).unwrap();
    let (status, headers, body) = post(server.addr(), "/generate", &generate_body("slow", 1, 1));
    assert_eq!(status, 503, "{body}");
    let err = Json::parse(&body).unwrap();
    assert_eq!(
        err.get("error").unwrap().get("code").unwrap().as_str(),
        Some("overloaded")
    );
    let retry = headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .map(|(_, v)| v.clone())
        .expect("503 must carry Retry-After");
    assert!(retry.parse::<u64>().unwrap() >= 1);
    server.shutdown();
}

#[test]
fn queued_past_deadline_rejects_504() {
    // worker busy ~300ms with the first request; the second carries a
    // 50ms deadline and must expire in the queue
    let server = Server::start(slow_registry(300), ephemeral(1, 0, 8)).unwrap();
    let addr = server.addr();
    let first = std::thread::spawn(move || post(addr, "/generate", &generate_body("slow", 1, 1)));
    std::thread::sleep(Duration::from_millis(60));
    let (status, _, body) = post(
        addr,
        "/generate",
        "{\"model\":\"slow\",\"n\":1,\"seed\":2,\"deadline_ms\":50}",
    );
    assert_eq!(status, 504, "{body}");
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str(),
        Some("deadline_exceeded")
    );
    let (status, _, _) = first.join().unwrap();
    assert_eq!(status, 200, "the undeadlined request still completes");
    server.shutdown();
}

#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    let server = Server::start(slow_registry(300), ephemeral(1, 0, 8)).unwrap();
    let addr = server.addr();
    let in_flight =
        std::thread::spawn(move || post(addr, "/generate", &generate_body("slow", 2, 7)));
    // let the request reach the worker before draining
    std::thread::sleep(Duration::from_millis(80));
    server.shutdown();
    let (status, _, body) = in_flight.join().unwrap();
    assert_eq!(status, 200, "in-flight request dropped during drain: {body}");
    let resp = Json::parse(&body).unwrap();
    assert_eq!(resp.get("n").unwrap().as_u64(), Some(2));
    // the listener is gone afterwards
    assert!(TcpStream::connect(addr).is_err() || {
        // the OS may accept briefly; a request must at least fail
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).map(|n| n == 0).unwrap_or(true)
    });
}

#[test]
fn batched_responses_are_bit_identical_to_serial() {
    let seeds: Vec<u64> = (0..8).collect();

    // serial reference: batching disabled
    let serial_server = Server::start(vae_registry(), ephemeral(1, 0, 64)).unwrap();
    let serial_addr = serial_server.addr();
    let serial: Vec<String> = seeds
        .iter()
        .map(|&s| {
            let (status, _, body) = post(serial_addr, "/generate", &generate_body("vae", 2, s));
            assert_eq!(status, 200);
            body
        })
        .collect();
    serial_server.shutdown();

    // batched: long linger so concurrent requests coalesce
    let batched_server = Server::start(vae_registry(), ephemeral(8, 40, 64)).unwrap();
    let batched_addr = batched_server.addr();
    let handles: Vec<_> = seeds
        .iter()
        .map(|&s| {
            std::thread::spawn(move || {
                let (status, _, body) =
                    post(batched_addr, "/generate", &generate_body("vae", 2, s));
                assert_eq!(status, 200);
                body
            })
        })
        .collect();
    let batched: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    batched_server.shutdown();

    for (i, (a, b)) in serial.iter().zip(&batched).enumerate() {
        assert_eq!(
            a, b,
            "seed {i}: batched response body differs from serial"
        );
    }

    // and both match the model's own generate, through the JSON layer
    let reference = fitted_vae();
    let want = reference.generate_batch(&[GenSpec { n: 2, seed: 0 }]);
    let parsed = Json::parse(&serial[0]).unwrap();
    let Json::Arr(samples) = parsed.get("samples").unwrap() else {
        panic!("samples missing")
    };
    let first = samples[0].clone();
    let Json::Arr(steps) = &first else {
        panic!("sample 0 is not an array")
    };
    let Json::Arr(feats) = &steps[0] else {
        panic!("step 0 is not an array")
    };
    assert_eq!(
        feats[0].as_f64().unwrap().to_bits(),
        want[0].at(0, 0, 0).to_bits(),
        "JSON float encoding must round-trip the tensor bits"
    );
}
