//! Arena-based reverse-mode automatic differentiation over matrices.
//!
//! A [`Tape`] is rebuilt for every minibatch: forward ops append nodes
//! (eagerly computing values), [`Tape::backward`] sweeps the arena in
//! reverse insertion order — which is always a valid reverse
//! topological order — accumulating gradients. This "define-by-run"
//! structure is the same contract as PyTorch's dynamic graph, scaled
//! down to the dense-matrix ops the ten TSG methods need.
//!
//! Design notes (see `DESIGN.md`):
//! * values and gradients are plain [`Matrix`]; no views/strides, so
//!   every op's backward is a few dense kernels;
//! * node payloads live in one `Vec`, ids are indices ([`VarId`]) —
//!   no `Rc`/`RefCell`, no lifetimes in user code;
//! * losses must reduce to `1 x 1` before calling `backward`.

use tsgb_linalg::Matrix;

/// Index of a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// The differentiable operations.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf (parameter or constant); no backward.
    Leaf,
    Add(VarId, VarId),
    Sub(VarId, VarId),
    /// Elementwise (Hadamard) product.
    Mul(VarId, VarId),
    Neg(VarId),
    /// Multiply by a fixed scalar.
    Scale(VarId, f64),
    /// Add a fixed scalar to every element.
    AddScalar(VarId),
    Matmul(VarId, VarId),
    Sigmoid(VarId),
    Tanh(VarId),
    Relu(VarId),
    LeakyRelu(VarId, f64),
    Exp(VarId),
    /// Natural log; caller guarantees positive inputs.
    Ln(VarId),
    Square(VarId),
    Abs(VarId),
    /// `ln(1 + e^x)`, computed stably.
    Softplus(VarId),
    /// Elementwise reciprocal; caller guarantees nonzero inputs.
    Recip(VarId),
    /// Reduce all elements to a `1 x 1` sum.
    Sum(VarId),
    /// Reduce all elements to a `1 x 1` mean.
    Mean(VarId),
    /// Add a `1 x cols` row vector to every row.
    AddRowBroadcast(VarId, VarId),
    /// Multiply every row elementwise by a `1 x cols` row vector.
    MulRowBroadcast(VarId, VarId),
    /// Side-by-side concatenation `[a | b]`.
    ConcatCols(VarId, VarId),
    /// Column slice `[start, end)` of the input.
    SliceCols(VarId, usize, usize),
    /// Stack many row-compatible matrices vertically.
    ConcatRows(Vec<VarId>),
    /// Row slice `[start, end)` of the input.
    SliceRows(VarId, usize, usize),
    /// Unfolds a `(T, C)` sequence into `(T, K*C)` receptive fields
    /// with symmetric zero padding — the im2col step of Conv1d.
    Im2Col(VarId, usize),
    /// Row-wise mean: `(R, C) -> (R, 1)`.
    RowMean(VarId),
    /// Transpose.
    Transpose(VarId),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// The gradient tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> VarId {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node { value, op });
        VarId(self.nodes.len() - 1)
    }

    /// Records a leaf holding `value` (parameter or constant input).
    pub fn leaf(&mut self, value: Matrix) -> VarId {
        self.push(value, Op::Leaf)
    }

    /// Alias of [`Tape::leaf`] that reads better for non-trainable data.
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.leaf(value)
    }

    /// The forward value of a node.
    pub fn value(&self, id: VarId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The gradient of the last `backward` call w.r.t. node `id`
    /// (zeros if the node did not influence the loss).
    pub fn grad(&self, id: VarId) -> Matrix {
        match self.grads.get(id.0) {
            Some(Some(g)) => g.clone(),
            _ => {
                let (r, c) = self.nodes[id.0].value.shape();
                Matrix::zeros(r, c)
            }
        }
    }

    // ---- forward ops -------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a) + self.value(b);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a) - self.value(b);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: VarId) -> VarId {
        let v = -self.value(a);
        self.push(v, Op::Neg(a))
    }

    /// Multiplies by a constant scalar.
    pub fn scale(&mut self, a: VarId, s: f64) -> VarId {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Adds a constant scalar to every element.
    pub fn add_scalar(&mut self, a: VarId, s: f64) -> VarId {
        let v = self.value(a).map(|x| x + s);
        self.push(v, Op::AddScalar(a))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f64::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: VarId, slope: f64) -> VarId {
        let v = self.value(a).map(|x| if x >= 0.0 { x } else { slope * x });
        self.push(v, Op::LeakyRelu(a, slope))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f64::exp);
        self.push(v, Op::Exp(a))
    }

    /// Elementwise natural log (inputs must be positive).
    pub fn ln(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f64::ln);
        self.push(v, Op::Ln(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x * x);
        self.push(v, Op::Square(a))
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f64::abs);
        self.push(v, Op::Abs(a))
    }

    /// Numerically stable `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: VarId) -> VarId {
        let v = self
            .value(a)
            .map(|x| if x > 20.0 { x } else { (1.0 + x.exp()).ln() });
        self.push(v, Op::Softplus(a))
    }

    /// Elementwise reciprocal `1 / x` (inputs must be nonzero) — the
    /// scaling step of unrolled Sinkhorn iterations.
    pub fn recip(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| 1.0 / x);
        self.push(v, Op::Recip(a))
    }

    /// Sum of all elements, as `1 x 1`.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let v = Matrix::full(1, 1, self.value(a).sum());
        self.push(v, Op::Sum(a))
    }

    /// Mean of all elements, as `1 x 1`.
    pub fn mean(&mut self, a: VarId) -> VarId {
        let v = Matrix::full(1, 1, self.value(a).mean());
        self.push(v, Op::Mean(a))
    }

    /// Adds a `1 x cols` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: VarId, row: VarId) -> VarId {
        let v = self.value(a).add_row_broadcast(self.value(row));
        self.push(v, Op::AddRowBroadcast(a, row))
    }

    /// Multiplies every row of `a` elementwise by a `1 x cols` row
    /// vector — the diagonal state transition of LS4's SSM layers.
    pub fn mul_row_broadcast(&mut self, a: VarId, row: VarId) -> VarId {
        let rv = self.value(row);
        assert_eq!(rv.rows(), 1, "broadcast operand must be a row vector");
        assert_eq!(rv.cols(), self.value(a).cols(), "broadcast width mismatch");
        let rowv = rv.clone();
        let v = {
            let x = self.value(a);
            Matrix::from_fn(x.rows(), x.cols(), |r, c| x[(r, c)] * rowv[(0, c)])
        };
        self.push(v, Op::MulRowBroadcast(a, row))
    }

    /// `[a | b]` column concatenation.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).hcat(self.value(b));
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Columns `[start, end)` of `a`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        let v = self.value(a).slice_cols(start, end);
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Vertically stacks the given nodes.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let mut v = self.value(parts[0]).clone();
        for &p in &parts[1..] {
            v = v.vcat(self.value(p));
        }
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Rows `[start, end)` of `a`.
    pub fn slice_rows(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        let v = self.value(a).slice_rows(start, end);
        self.push(v, Op::SliceRows(a, start, end))
    }

    /// Unfolds a `(T, C)` sequence into `(T, K*C)` same-padded
    /// receptive fields; `matmul` with a `(K*C, C_out)` weight then
    /// realizes a 1-D convolution.
    pub fn im2col(&mut self, a: VarId, kernel: usize) -> VarId {
        assert!(
            kernel % 2 == 1,
            "im2col expects an odd kernel for same padding"
        );
        let x = self.value(a);
        let (t, c) = x.shape();
        let half = kernel / 2;
        let mut v = Matrix::zeros(t, kernel * c);
        for row in 0..t {
            for k in 0..kernel {
                let src = row as isize + k as isize - half as isize;
                if src < 0 || src >= t as isize {
                    continue;
                }
                let src_row = x.row(src as usize);
                v.row_mut(row)[k * c..(k + 1) * c].copy_from_slice(src_row);
            }
        }
        self.push(v, Op::Im2Col(a, kernel))
    }

    /// Row-wise mean: `(R, C) -> (R, 1)`.
    pub fn row_mean(&mut self, a: VarId) -> VarId {
        let x = self.value(a);
        let inv = 1.0 / x.cols() as f64;
        let v = x.row_sums().scale(inv);
        self.push(v, Op::RowMean(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    // ---- backward ----------------------------------------------------

    /// Runs reverse-mode accumulation from `loss`, which must be a
    /// `1 x 1` node. Gradients are then readable via [`Tape::grad`].
    pub fn backward(&mut self, loss: VarId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss node"
        );
        let n = self.nodes.len();
        let mut grads: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            // Re-insert so callers can read interior grads too.
            grads[i] = Some(g.clone());
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    Self::acc(&mut grads, &self.nodes, a, g.clone());
                    Self::acc(&mut grads, &self.nodes, b, g);
                }
                Op::Sub(a, b) => {
                    Self::acc(&mut grads, &self.nodes, a, g.clone());
                    Self::acc(&mut grads, &self.nodes, b, -&g);
                }
                Op::Mul(a, b) => {
                    let ga = g.hadamard(&self.nodes[b.0].value);
                    let gb = g.hadamard(&self.nodes[a.0].value);
                    Self::acc(&mut grads, &self.nodes, a, ga);
                    Self::acc(&mut grads, &self.nodes, b, gb);
                }
                Op::Neg(a) => Self::acc(&mut grads, &self.nodes, a, -&g),
                Op::Scale(a, s) => Self::acc(&mut grads, &self.nodes, a, g.scale(s)),
                Op::AddScalar(a) => Self::acc(&mut grads, &self.nodes, a, g),
                Op::Matmul(a, b) => {
                    let ga = g.matmul_t(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.t_matmul(&g);
                    Self::acc(&mut grads, &self.nodes, a, ga);
                    Self::acc(&mut grads, &self.nodes, b, gb);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.zip_map(y, |gi, yi| gi * yi * (1.0 - yi));
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.zip_map(y, |gi, yi| gi * (1.0 - yi * yi));
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = g.zip_map(x, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::LeakyRelu(a, slope) => {
                    let x = &self.nodes[a.0].value;
                    let ga = g.zip_map(x, |gi, xi| if xi >= 0.0 { gi } else { slope * gi });
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Exp(a) => {
                    let y = &self.nodes[i].value;
                    Self::acc(&mut grads, &self.nodes, a, g.hadamard(y));
                }
                Op::Ln(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = g.zip_map(x, |gi, xi| gi / xi);
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Square(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = g.zip_map(x, |gi, xi| 2.0 * xi * gi);
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Abs(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = g.zip_map(x, |gi, xi| gi * xi.signum() * (xi != 0.0) as u8 as f64);
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Softplus(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = g.zip_map(x, |gi, xi| gi / (1.0 + (-xi).exp()));
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Recip(a) => {
                    // d(1/x)/dx = -1/x^2 = -y^2
                    let y = &self.nodes[i].value;
                    let ga = g.zip_map(y, |gi, yi| -gi * yi * yi);
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Sum(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let ga = Matrix::full(r, c, g[(0, 0)]);
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Mean(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let ga = Matrix::full(r, c, g[(0, 0)] / (r * c) as f64);
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::AddRowBroadcast(a, row) => {
                    Self::acc(&mut grads, &self.nodes, a, g.clone());
                    // bias grad: column sums of g
                    let mut gr = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &v) in gr.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    Self::acc(&mut grads, &self.nodes, row, gr);
                }
                Op::MulRowBroadcast(a, row) => {
                    let rowv = self.nodes[row.0].value.clone();
                    let x = &self.nodes[a.0].value;
                    let ga = Matrix::from_fn(g.rows(), g.cols(), |r, c| g[(r, c)] * rowv[(0, c)]);
                    let mut grow = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            grow[(0, c)] += g[(r, c)] * x[(r, c)];
                        }
                    }
                    Self::acc(&mut grads, &self.nodes, a, ga);
                    Self::acc(&mut grads, &self.nodes, row, grow);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a.0].value.cols();
                    Self::acc(&mut grads, &self.nodes, a, g.slice_cols(0, ca));
                    Self::acc(&mut grads, &self.nodes, b, g.slice_cols(ca, g.cols()));
                }
                Op::SliceCols(a, start, end) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut ga = Matrix::zeros(r, c);
                    for row in 0..r {
                        ga.row_mut(row)[start..end].copy_from_slice(g.row(row));
                    }
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let rows = self.nodes[p.0].value.rows();
                        let gp = g.slice_rows(offset, offset + rows);
                        offset += rows;
                        Self::acc(&mut grads, &self.nodes, p, gp);
                    }
                }
                Op::SliceRows(a, start, _end) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut ga = Matrix::zeros(r, c);
                    for row in 0..g.rows() {
                        ga.row_mut(start + row).copy_from_slice(g.row(row));
                    }
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Im2Col(a, kernel) => {
                    let (t, c) = self.nodes[a.0].value.shape();
                    let half = kernel / 2;
                    let mut ga = Matrix::zeros(t, c);
                    for row in 0..t {
                        for k in 0..kernel {
                            let src = row as isize + k as isize - half as isize;
                            if src < 0 || src >= t as isize {
                                continue;
                            }
                            let gs = &g.row(row)[k * c..(k + 1) * c];
                            for (o, &v) in ga.row_mut(src as usize).iter_mut().zip(gs) {
                                *o += v;
                            }
                        }
                    }
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::RowMean(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let inv = 1.0 / c as f64;
                    let ga = Matrix::from_fn(r, c, |row, _| g[(row, 0)] * inv);
                    Self::acc(&mut grads, &self.nodes, a, ga);
                }
                Op::Transpose(a) => {
                    Self::acc(&mut grads, &self.nodes, a, g.transpose());
                }
            }
        }
        self.grads = grads;
    }

    fn acc(grads: &mut [Option<Matrix>], nodes: &[Node], id: VarId, delta: Matrix) {
        debug_assert_eq!(
            nodes[id.0].value.shape(),
            delta.shape(),
            "gradient shape mismatch for node {id:?}"
        );
        match &mut grads[id.0] {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(t: &mut Tape, v: f64) -> VarId {
        t.leaf(Matrix::full(1, 1, v))
    }

    #[test]
    fn product_rule() {
        let mut t = Tape::new();
        let a = scalar(&mut t, 3.0);
        let b = scalar(&mut t, 4.0);
        let y = t.mul(a, b);
        t.backward(y);
        assert_eq!(t.grad(a)[(0, 0)], 4.0);
        assert_eq!(t.grad(b)[(0, 0)], 3.0);
    }

    #[test]
    fn chain_rule_through_square_and_mean() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap());
        let sq = t.square(x);
        let m = t.mean(sq);
        t.backward(m);
        // d mean(x^2)/dx = 2x / 3
        let g = t.grad(x);
        for (xi, gi) in [1.0, 2.0, 3.0].iter().zip(g.as_slice()) {
            assert!((gi - 2.0 * xi / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap());
        let b = t.leaf(Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]).unwrap());
        let y = t.matmul(a, b);
        let s = t.sum(y);
        t.backward(s);
        // dS/dA = ones(2,2) * B^T, dS/dB = A^T * ones(2,2)
        let ones = Matrix::full(2, 2, 1.0);
        let expect_a = ones.matmul_t(t.value(b));
        let expect_b = t.value(a).t_matmul(&ones);
        assert_eq!(t.grad(a), expect_a);
        assert_eq!(t.grad(b), expect_b);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        let mut t = Tape::new();
        let x = scalar(&mut t, 2.0);
        let y = t.mul(x, x); // x^2
        t.backward(y);
        assert_eq!(t.grad(x)[(0, 0)], 4.0); // 2x
    }

    #[test]
    fn unused_nodes_have_zero_grad() {
        let mut t = Tape::new();
        let x = scalar(&mut t, 2.0);
        let z = scalar(&mut t, 5.0);
        let y = t.square(x);
        t.backward(y);
        assert_eq!(t.grad(z)[(0, 0)], 0.0);
    }

    #[test]
    fn concat_and_slice_route_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap());
        let b = t.leaf(Matrix::from_vec(2, 1, vec![5., 6.]).unwrap());
        let cat = t.concat_cols(a, b);
        let right = t.slice_cols(cat, 2, 3); // just b
        let s = t.sum(right);
        t.backward(s);
        assert_eq!(t.grad(b), Matrix::full(2, 1, 1.0));
        assert_eq!(t.grad(a), Matrix::zeros(2, 2));
    }

    #[test]
    fn concat_rows_roundtrip_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::full(1, 2, 1.0));
        let b = t.leaf(Matrix::full(2, 2, 2.0));
        let cat = t.concat_rows(&[a, b]);
        let sl = t.slice_rows(cat, 1, 3);
        let s = t.sum(sl);
        t.backward(s);
        assert_eq!(t.grad(a), Matrix::zeros(1, 2));
        assert_eq!(t.grad(b), Matrix::full(2, 2, 1.0));
    }

    #[test]
    fn softplus_grad_is_sigmoid() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![-2.0, 0.0, 2.0]).unwrap());
        let sp = t.softplus(x);
        let s = t.sum(sp);
        t.backward(s);
        for (xi, gi) in [-2.0f64, 0.0, 2.0].iter().zip(t.grad(x).as_slice()) {
            let sig = 1.0 / (1.0 + (-xi).exp());
            assert!((gi - sig).abs() < 1e-12);
        }
    }

    #[test]
    fn im2col_forward_layout() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap());
        let u = t.im2col(x, 3);
        // row 0: [pad, x0, x1] = [0, 1, 2]
        assert_eq!(t.value(u).row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(t.value(u).row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(t.value(u).row(2), &[2.0, 3.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "scalar (1x1) loss")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        t.backward(x);
    }
}
