//! Arena-based reverse-mode automatic differentiation over matrices.
//!
//! A [`Tape`] records forward ops as nodes (eagerly computing values);
//! [`Tape::backward`] sweeps the arena in reverse insertion order —
//! which is always a valid reverse topological order — accumulating
//! gradients. This "define-by-run" structure is the same contract as
//! PyTorch's dynamic graph, scaled down to the dense-matrix ops the
//! ten TSG methods need.
//!
//! # Training memory model
//!
//! Rebuilding the graph every minibatch does **not** mean reallocating
//! it. [`Tape::reset`] retires every node value and gradient buffer
//! into an internal [`MatrixPool`] and clears the arena while keeping
//! its capacity; the next forward pass of the same graph shape then
//! draws every buffer back out of the pool. In steady state a
//! recycled tape performs **zero** heap allocations per training step:
//! forward values, backward deltas, and gradient accumulators all live
//! in pooled storage, and [`Tape::backward`] accumulates through the
//! in-place kernels of `tsgb-linalg` (`add_assign`, `*_acc_into`)
//! rather than `grad + delta` temporaries. See `DESIGN.md` ("Training
//! memory model") for the full contract.
//!
//! Design notes (see `DESIGN.md`):
//! * values and gradients are plain [`Matrix`]; no views/strides, so
//!   every op's backward is a few dense kernels;
//! * node payloads live in one `Vec`, ids are indices ([`VarId`]) —
//!   no `Rc`/`RefCell`, no lifetimes in user code;
//! * losses must reduce to `1 x 1` before calling `backward`;
//! * the fused [`Tape::affine_act`] / [`Tape::affine2_act`] ops record
//!   a whole `act(x W (+ h U) + b)` block as one node, so a Linear or
//!   a GRU/LSTM gate costs one arena slot instead of 3–5.

use tsgb_linalg::{Matrix, MatrixPool};

/// Index of a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Activation fused into [`Tape::affine_act`] / [`Tape::affine2_act`].
///
/// Only activations whose derivative is recoverable from the *output*
/// are fusable (the pre-activation is never materialized): sigmoid
/// (`y(1-y)`), tanh (`1-y^2`) and ReLU (`y > 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedAct {
    /// No activation: the affine output itself.
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl FusedAct {
    /// Applies the activation elementwise in place.
    fn apply(self, m: &mut Matrix) {
        match self {
            FusedAct::Identity => {}
            FusedAct::Sigmoid => m.map_inplace(|x| 1.0 / (1.0 + (-x).exp())),
            FusedAct::Tanh => m.map_inplace(f64::tanh),
            FusedAct::Relu => m.map_inplace(|x| x.max(0.0)),
        }
    }

    /// Writes `g * act'` into `out`, reading the derivative off the
    /// activation *output* `y`. Identity must be handled by the caller
    /// (no buffer is needed there).
    fn dz_into(self, g: &Matrix, y: &Matrix, out: &mut Matrix) {
        match self {
            FusedAct::Identity => unreachable!("identity needs no dz buffer"),
            FusedAct::Sigmoid => g.zip_map_into(y, |gi, yi| gi * yi * (1.0 - yi), out),
            FusedAct::Tanh => g.zip_map_into(y, |gi, yi| gi * (1.0 - yi * yi), out),
            FusedAct::Relu => g.zip_map_into(y, |gi, yi| if yi > 0.0 { gi } else { 0.0 }, out),
        }
    }
}

/// The differentiable operations.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf (parameter or constant); no backward.
    Leaf,
    Add(VarId, VarId),
    Sub(VarId, VarId),
    /// Elementwise (Hadamard) product.
    Mul(VarId, VarId),
    Neg(VarId),
    /// Multiply by a fixed scalar.
    Scale(VarId, f64),
    /// Add a fixed scalar to every element.
    AddScalar(VarId),
    Matmul(VarId, VarId),
    Sigmoid(VarId),
    Tanh(VarId),
    Relu(VarId),
    LeakyRelu(VarId, f64),
    Exp(VarId),
    /// Natural log; caller guarantees positive inputs.
    Ln(VarId),
    Square(VarId),
    Abs(VarId),
    /// `ln(1 + e^x)`, computed stably.
    Softplus(VarId),
    /// Elementwise reciprocal; caller guarantees nonzero inputs.
    Recip(VarId),
    /// Reduce all elements to a `1 x 1` sum.
    Sum(VarId),
    /// Reduce all elements to a `1 x 1` mean.
    Mean(VarId),
    /// Add a `1 x cols` row vector to every row.
    AddRowBroadcast(VarId, VarId),
    /// Multiply every row elementwise by a `1 x cols` row vector.
    MulRowBroadcast(VarId, VarId),
    /// Side-by-side concatenation `[a | b]`.
    ConcatCols(VarId, VarId),
    /// Column slice `[start, end)` of the input.
    SliceCols(VarId, usize, usize),
    /// Stack many row-compatible matrices vertically.
    ConcatRows(Vec<VarId>),
    /// Row slice `[start, end)` of the input.
    SliceRows(VarId, usize, usize),
    /// Unfolds a `(T, C)` sequence into `(T, K*C)` receptive fields
    /// with symmetric zero padding — the im2col step of Conv1d.
    Im2Col(VarId, usize),
    /// Row-wise mean: `(R, C) -> (R, 1)`.
    RowMean(VarId),
    /// Transpose.
    Transpose(VarId),
    /// Fused `act(x W + b)`: matmul, row-broadcast bias, activation in
    /// one node.
    Affine {
        x: VarId,
        w: VarId,
        b: VarId,
        act: FusedAct,
    },
    /// Fused `act(x W + h U + b)` — the shape of every GRU/LSTM gate.
    Affine2 {
        x: VarId,
        w: VarId,
        h: VarId,
        u: VarId,
        b: VarId,
        act: FusedAct,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// The gradient tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    pool: MatrixPool,
    /// Pool misses already published to the `nn.pool.miss` counter,
    /// so each [`Tape::reset`] reports only the delta.
    reported_misses: u64,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears all nodes and gradients while keeping every buffer:
    /// node values and gradient matrices are retired into the tape's
    /// pool, and the arena `Vec`s keep their capacity. Re-recording a
    /// graph of the same shape after `reset` performs no heap
    /// allocation, and produces bit-identical values and gradients to
    /// a freshly constructed tape (the pooled buffers are fully
    /// overwritten or zeroed before reuse).
    pub fn reset(&mut self) {
        // Observability hook: one step boundary per reset. Everything
        // here is observed, never read back — results are unaffected —
        // and with recording disabled the whole block is one relaxed
        // atomic load.
        if tsgb_obs::enabled() {
            tsgb_obs::counter_add("nn.tape.steps", 1);
            tsgb_obs::observe("nn.tape.nodes", self.nodes.len() as f64);
            let misses = self.pool.misses();
            tsgb_obs::counter_add("nn.pool.miss", misses - self.reported_misses);
            self.reported_misses = misses;
        }
        for node in self.nodes.drain(..) {
            self.pool.put(node.value);
        }
        for g in self.grads.drain(..).flatten() {
            self.pool.put(g);
        }
    }

    /// Number of pool misses so far — fresh allocations the buffer
    /// pool could not serve. Stops growing once a recycled tape
    /// reaches steady state (diagnostics for the perf probes).
    pub fn pool_misses(&self) -> u64 {
        self.pool.misses()
    }

    fn push(&mut self, value: Matrix, op: Op) -> VarId {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node { value, op });
        VarId(self.nodes.len() - 1)
    }

    /// Records a leaf holding `value` (parameter or constant input).
    pub fn leaf(&mut self, value: Matrix) -> VarId {
        self.push(value, Op::Leaf)
    }

    /// Records a leaf holding a pooled copy of `value` — the
    /// allocation-free way to inject parameters and minibatch data
    /// into a recycled tape.
    pub fn leaf_copy(&mut self, value: &Matrix) -> VarId {
        let v = self.pool.take_copy(value);
        self.push(v, Op::Leaf)
    }

    /// Alias of [`Tape::leaf`] that reads better for non-trainable data.
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.leaf(value)
    }

    /// Alias of [`Tape::leaf_copy`] for non-trainable data.
    pub fn constant_copy(&mut self, value: &Matrix) -> VarId {
        self.leaf_copy(value)
    }

    /// Records a leaf of zeros drawn from the pool (initial recurrent
    /// states, padding blocks).
    pub fn zeros(&mut self, rows: usize, cols: usize) -> VarId {
        let v = self.pool.take_zeroed(rows, cols);
        self.push(v, Op::Leaf)
    }

    /// Records a constant-filled leaf drawn from the pool (GAN
    /// real/fake targets).
    pub fn filled(&mut self, rows: usize, cols: usize, value: f64) -> VarId {
        let mut v = self.pool.take_uninit(rows, cols);
        v.fill(value);
        self.push(v, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, id: VarId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The gradient of the last `backward` call w.r.t. node `id`,
    /// **copied** into a fresh matrix (zeros if the node did not
    /// influence the loss). Hot paths should prefer
    /// [`Tape::grad_ref`], which borrows the accumulator instead of
    /// cloning it; this copying form stays for API convenience.
    pub fn grad(&self, id: VarId) -> Matrix {
        match self.grads.get(id.0) {
            Some(Some(g)) => g.clone(),
            _ => {
                let (r, c) = self.nodes[id.0].value.shape();
                Matrix::zeros(r, c)
            }
        }
    }

    /// Borrow of the gradient accumulated for node `id` by the last
    /// `backward` call, or `None` when the node did not influence the
    /// loss (its gradient is identically zero).
    pub fn grad_ref(&self, id: VarId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    // ---- forward ops -------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, |x, y| x + y, &mut v);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, |x, y| x - y, &mut v);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, |x, y| x * y, &mut v);
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: VarId) -> VarId {
        self.unary_map(a, |x| -x, Op::Neg(a))
    }

    /// Multiplies by a constant scalar.
    pub fn scale(&mut self, a: VarId, s: f64) -> VarId {
        self.unary_map(a, |x| x * s, Op::Scale(a, s))
    }

    /// Adds a constant scalar to every element.
    pub fn add_scalar(&mut self, a: VarId, s: f64) -> VarId {
        self.unary_map(a, |x| x + s, Op::AddScalar(a))
    }

    /// Records an elementwise op computed into a pooled buffer.
    fn unary_map(&mut self, a: VarId, f: impl Fn(f64) -> f64, op: Op) -> VarId {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        self.nodes[a.0].value.map_into(f, &mut v);
        self.push(v, op)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let m = self.nodes[a.0].value.rows();
        let n = self.nodes[b.0].value.cols();
        let mut v = self.pool.take_zeroed(m, n);
        self.nodes[a.0]
            .value
            .matmul_acc_into(&self.nodes[b.0].value, &mut v);
        self.push(v, Op::Matmul(a, b))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        self.unary_map(a, |x| 1.0 / (1.0 + (-x).exp()), Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        self.unary_map(a, f64::tanh, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        self.unary_map(a, |x| x.max(0.0), Op::Relu(a))
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: VarId, slope: f64) -> VarId {
        self.unary_map(
            a,
            |x| if x >= 0.0 { x } else { slope * x },
            Op::LeakyRelu(a, slope),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        self.unary_map(a, f64::exp, Op::Exp(a))
    }

    /// Elementwise natural log (inputs must be positive).
    pub fn ln(&mut self, a: VarId) -> VarId {
        self.unary_map(a, f64::ln, Op::Ln(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        self.unary_map(a, |x| x * x, Op::Square(a))
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&mut self, a: VarId) -> VarId {
        self.unary_map(a, f64::abs, Op::Abs(a))
    }

    /// Numerically stable `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: VarId) -> VarId {
        self.unary_map(
            a,
            |x| if x > 20.0 { x } else { (1.0 + x.exp()).ln() },
            Op::Softplus(a),
        )
    }

    /// Elementwise reciprocal `1 / x` (inputs must be nonzero) — the
    /// scaling step of unrolled Sinkhorn iterations.
    pub fn recip(&mut self, a: VarId) -> VarId {
        self.unary_map(a, |x| 1.0 / x, Op::Recip(a))
    }

    /// Sum of all elements, as `1 x 1`.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let s = self.nodes[a.0].value.sum();
        let mut v = self.pool.take_uninit(1, 1);
        v.fill(s);
        self.push(v, Op::Sum(a))
    }

    /// Mean of all elements, as `1 x 1`.
    pub fn mean(&mut self, a: VarId) -> VarId {
        let m = self.nodes[a.0].value.mean();
        let mut v = self.pool.take_uninit(1, 1);
        v.fill(m);
        self.push(v, Op::Mean(a))
    }

    /// Adds a `1 x cols` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: VarId, row: VarId) -> VarId {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        v.copy_from(&self.nodes[a.0].value);
        v.add_row_broadcast_assign(&self.nodes[row.0].value);
        self.push(v, Op::AddRowBroadcast(a, row))
    }

    /// Multiplies every row of `a` elementwise by a `1 x cols` row
    /// vector — the diagonal state transition of LS4's SSM layers.
    pub fn mul_row_broadcast(&mut self, a: VarId, row: VarId) -> VarId {
        let (r, c) = self.nodes[a.0].value.shape();
        {
            let rv = &self.nodes[row.0].value;
            assert_eq!(rv.rows(), 1, "broadcast operand must be a row vector");
            assert_eq!(rv.cols(), c, "broadcast width mismatch");
        }
        let mut v = self.pool.take_uninit(r, c);
        {
            let x = &self.nodes[a.0].value;
            let rv = &self.nodes[row.0].value;
            for row_i in 0..r {
                for (o, (&xv, &sv)) in v
                    .row_mut(row_i)
                    .iter_mut()
                    .zip(x.row(row_i).iter().zip(rv.row(0)))
                {
                    *o = xv * sv;
                }
            }
        }
        self.push(v, Op::MulRowBroadcast(a, row))
    }

    /// `[a | b]` column concatenation.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let (r, ca) = self.nodes[a.0].value.shape();
        let cb = self.nodes[b.0].value.cols();
        assert_eq!(
            self.nodes[b.0].value.rows(),
            r,
            "concat_cols row mismatch"
        );
        let mut v = self.pool.take_uninit(r, ca + cb);
        {
            let (xa, xb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            for row in 0..r {
                v.row_mut(row)[..ca].copy_from_slice(xa.row(row));
                v.row_mut(row)[ca..].copy_from_slice(xb.row(row));
            }
        }
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Columns `[start, end)` of `a`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        let r = self.nodes[a.0].value.rows();
        assert!(
            start <= end && end <= self.nodes[a.0].value.cols(),
            "column slice out of bounds"
        );
        let mut v = self.pool.take_uninit(r, end - start);
        {
            let x = &self.nodes[a.0].value;
            for row in 0..r {
                v.row_mut(row).copy_from_slice(&x.row(row)[start..end]);
            }
        }
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Vertically stacks the given nodes.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.nodes[parts[0].0].value.cols();
        let total: usize = parts
            .iter()
            .map(|p| {
                let m = &self.nodes[p.0].value;
                assert_eq!(m.cols(), cols, "concat_rows column mismatch");
                m.rows()
            })
            .sum();
        let mut v = self.pool.take_uninit(total, cols);
        {
            let mut offset = 0;
            for p in parts {
                let m = &self.nodes[p.0].value;
                for row in 0..m.rows() {
                    v.row_mut(offset + row).copy_from_slice(m.row(row));
                }
                offset += m.rows();
            }
        }
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Rows `[start, end)` of `a`.
    pub fn slice_rows(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        assert!(
            start <= end && end <= self.nodes[a.0].value.rows(),
            "row slice out of bounds"
        );
        let cols = self.nodes[a.0].value.cols();
        let mut v = self.pool.take_uninit(end - start, cols);
        {
            let x = &self.nodes[a.0].value;
            for row in start..end {
                v.row_mut(row - start).copy_from_slice(x.row(row));
            }
        }
        self.push(v, Op::SliceRows(a, start, end))
    }

    /// Unfolds a `(T, C)` sequence into `(T, K*C)` same-padded
    /// receptive fields; `matmul` with a `(K*C, C_out)` weight then
    /// realizes a 1-D convolution.
    pub fn im2col(&mut self, a: VarId, kernel: usize) -> VarId {
        assert!(
            kernel % 2 == 1,
            "im2col expects an odd kernel for same padding"
        );
        let (t_len, c) = self.nodes[a.0].value.shape();
        let half = kernel / 2;
        let mut v = self.pool.take_zeroed(t_len, kernel * c);
        {
            let x = &self.nodes[a.0].value;
            for row in 0..t_len {
                for k in 0..kernel {
                    let src = row as isize + k as isize - half as isize;
                    if src < 0 || src >= t_len as isize {
                        continue;
                    }
                    let src_row = x.row(src as usize);
                    v.row_mut(row)[k * c..(k + 1) * c].copy_from_slice(src_row);
                }
            }
        }
        self.push(v, Op::Im2Col(a, kernel))
    }

    /// Row-wise mean: `(R, C) -> (R, 1)`.
    pub fn row_mean(&mut self, a: VarId) -> VarId {
        let (r, c) = self.nodes[a.0].value.shape();
        let inv = 1.0 / c as f64;
        let mut v = self.pool.take_uninit(r, 1);
        {
            let x = &self.nodes[a.0].value;
            for row in 0..r {
                v.row_mut(row)[0] = x.row(row).iter().sum::<f64>() * inv;
            }
        }
        self.push(v, Op::RowMean(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(c, r);
        {
            let x = &self.nodes[a.0].value;
            for row in 0..r {
                for col in 0..c {
                    v[(col, row)] = x[(row, col)];
                }
            }
        }
        self.push(v, Op::Transpose(a))
    }

    // ---- fused ops ---------------------------------------------------

    /// Fused affine map `x W + b` (matmul plus row-broadcast bias) as
    /// a single node. Bit-identical to `add_row_broadcast(matmul(x,
    /// w), b)` while recording one node instead of two.
    pub fn affine(&mut self, x: VarId, w: VarId, b: VarId) -> VarId {
        self.affine_act(x, w, b, FusedAct::Identity)
    }

    /// Fused `act(x W + b)` — a whole Linear layer in one node.
    pub fn affine_act(&mut self, x: VarId, w: VarId, b: VarId, act: FusedAct) -> VarId {
        let m = self.nodes[x.0].value.rows();
        let n = self.nodes[w.0].value.cols();
        let mut v = self.pool.take_zeroed(m, n);
        self.nodes[x.0]
            .value
            .matmul_acc_into(&self.nodes[w.0].value, &mut v);
        v.add_row_broadcast_assign(&self.nodes[b.0].value);
        act.apply(&mut v);
        self.push(v, Op::Affine { x, w, b, act })
    }

    /// Fused `act(x W + h U + b)` — the recurrent-gate shape shared by
    /// every GRU and LSTM gate, recorded as a single node.
    pub fn affine2_act(
        &mut self,
        x: VarId,
        w: VarId,
        h: VarId,
        u: VarId,
        b: VarId,
        act: FusedAct,
    ) -> VarId {
        let m = self.nodes[x.0].value.rows();
        let n = self.nodes[w.0].value.cols();
        assert_eq!(
            self.nodes[h.0].value.rows(),
            m,
            "affine2_act: x and h row mismatch"
        );
        let mut v = self.pool.take_zeroed(m, n);
        self.nodes[x.0]
            .value
            .matmul_acc_into(&self.nodes[w.0].value, &mut v);
        // h U is accumulated into a separate buffer then added, which
        // keeps the summation order identical to the unfused graph
        // (`add(matmul(x, w), matmul(h, u))`).
        let mut hu = self.pool.take_zeroed(m, n);
        self.nodes[h.0]
            .value
            .matmul_acc_into(&self.nodes[u.0].value, &mut hu);
        v.add_assign(&hu);
        self.pool.put(hu);
        v.add_row_broadcast_assign(&self.nodes[b.0].value);
        act.apply(&mut v);
        self.push(v, Op::Affine2 { x, w, h, u, b, act })
    }

    // ---- backward ----------------------------------------------------

    /// Runs reverse-mode accumulation from `loss`, which must be a
    /// `1 x 1` node. Gradients are then readable via [`Tape::grad_ref`]
    /// (borrowing) or [`Tape::grad`] (copying).
    ///
    /// Gradient accumulators are pooled buffers, and every op's
    /// backward either writes its delta into a pooled temporary and
    /// folds it in with `add_assign`, or — for the matmul family —
    /// accumulates directly into the target buffer via the
    /// `*_acc_into` kernels. No per-node `grad + delta` temporaries
    /// are materialized.
    pub fn backward(&mut self, loss: VarId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss node"
        );
        let n = self.nodes.len();
        // Retire the previous sweep's accumulators (repeated backward
        // without reset is allowed) and start from all-None.
        for g in self.grads.drain(..).flatten() {
            self.pool.put(g);
        }
        self.grads.resize_with(n, || None);

        let Tape { nodes, grads, pool, .. } = self;
        let mut seed = pool.take_uninit(1, 1);
        seed.fill(1.0);
        grads[loss.0] = Some(seed);

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &nodes[i].op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    Self::acc_ref(grads, nodes, pool, *a, &g);
                    Self::acc_ref(grads, nodes, pool, *b, &g);
                }
                Op::Sub(a, b) => {
                    Self::acc_ref(grads, nodes, pool, *a, &g);
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.map_into(|x| -x, &mut d);
                    Self::acc(grads, nodes, pool, *b, d);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let mut da = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[b.0].value, |gi, bi| gi * bi, &mut da);
                    Self::acc(grads, nodes, pool, a, da);
                    let mut db = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[a.0].value, |gi, ai| gi * ai, &mut db);
                    Self::acc(grads, nodes, pool, b, db);
                }
                Op::Neg(a) => {
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.map_into(|x| -x, &mut d);
                    Self::acc(grads, nodes, pool, *a, d);
                }
                Op::Scale(a, s) => {
                    let s = *s;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.map_into(|x| x * s, &mut d);
                    Self::acc(grads, nodes, pool, *a, d);
                }
                Op::AddScalar(a) => Self::acc_ref(grads, nodes, pool, *a, &g),
                Op::Matmul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    g.matmul_t_acc_into(&nodes[b.0].value, ga);
                    let gb = Self::grad_slot(grads, nodes, pool, b);
                    nodes[a.0].value.t_matmul_acc_into(&g, gb);
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, |gi, yi| gi * yi * (1.0 - yi), &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, |gi, yi| gi * (1.0 - yi * yi), &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Relu(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(
                        &nodes[a.0].value,
                        |gi, xi| if xi > 0.0 { gi } else { 0.0 },
                        &mut d,
                    );
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::LeakyRelu(a, slope) => {
                    let (a, slope) = (*a, *slope);
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(
                        &nodes[a.0].value,
                        |gi, xi| if xi >= 0.0 { gi } else { slope * gi },
                        &mut d,
                    );
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Exp(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, |gi, yi| gi * yi, &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Ln(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[a.0].value, |gi, xi| gi / xi, &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Square(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[a.0].value, |gi, xi| 2.0 * xi * gi, &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Abs(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(
                        &nodes[a.0].value,
                        |gi, xi| gi * xi.signum() * (xi != 0.0) as u8 as f64,
                        &mut d,
                    );
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Softplus(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(
                        &nodes[a.0].value,
                        |gi, xi| gi / (1.0 + (-xi).exp()),
                        &mut d,
                    );
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Recip(a) => {
                    // d(1/x)/dx = -1/x^2 = -y^2
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, |gi, yi| -gi * yi * yi, &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Sum(a) => {
                    let a = *a;
                    let g00 = g[(0, 0)];
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    ga.map_inplace(|v| v + g00);
                }
                Op::Mean(a) => {
                    let a = *a;
                    let (r, c) = nodes[a.0].value.shape();
                    let gm = g[(0, 0)] / (r * c) as f64;
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    ga.map_inplace(|v| v + gm);
                }
                Op::AddRowBroadcast(a, row) => {
                    let (a, row) = (*a, *row);
                    Self::acc_ref(grads, nodes, pool, a, &g);
                    // bias grad: column sums of g
                    let gr = Self::grad_slot(grads, nodes, pool, row);
                    g.col_sums_acc_into(gr);
                }
                Op::MulRowBroadcast(a, row) => {
                    let (a, row) = (*a, *row);
                    let mut da = pool.take_uninit(g.rows(), g.cols());
                    {
                        let rv = &nodes[row.0].value;
                        for r in 0..g.rows() {
                            for (o, (&gi, &sv)) in da
                                .row_mut(r)
                                .iter_mut()
                                .zip(g.row(r).iter().zip(rv.row(0)))
                            {
                                *o = gi * sv;
                            }
                        }
                    }
                    Self::acc(grads, nodes, pool, a, da);
                    let x_id = a;
                    let grow = Self::grad_slot(grads, nodes, pool, row);
                    let x = &nodes[x_id.0].value;
                    for r in 0..g.rows() {
                        for (o, (&gi, &xi)) in grow
                            .row_mut(0)
                            .iter_mut()
                            .zip(g.row(r).iter().zip(x.row(r)))
                        {
                            *o += gi * xi;
                        }
                    }
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let ca = nodes[a.0].value.cols();
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for r in 0..g.rows() {
                        for (o, &v) in ga.row_mut(r).iter_mut().zip(&g.row(r)[..ca]) {
                            *o += v;
                        }
                    }
                    let gb = Self::grad_slot(grads, nodes, pool, b);
                    for r in 0..g.rows() {
                        for (o, &v) in gb.row_mut(r).iter_mut().zip(&g.row(r)[ca..]) {
                            *o += v;
                        }
                    }
                }
                Op::SliceCols(a, start, end) => {
                    let (a, start, end) = (*a, *start, *end);
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for r in 0..g.rows() {
                        for (o, &v) in ga.row_mut(r)[start..end].iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                }
                Op::ConcatRows(parts) => {
                    let parts = parts.clone();
                    let mut offset = 0;
                    for p in parts {
                        let rows = nodes[p.0].value.rows();
                        let gp = Self::grad_slot(grads, nodes, pool, p);
                        for r in 0..rows {
                            for (o, &v) in gp.row_mut(r).iter_mut().zip(g.row(offset + r)) {
                                *o += v;
                            }
                        }
                        offset += rows;
                    }
                }
                Op::SliceRows(a, start, _end) => {
                    let (a, start) = (*a, *start);
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for r in 0..g.rows() {
                        for (o, &v) in ga.row_mut(start + r).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                }
                Op::Im2Col(a, kernel) => {
                    let (a, kernel) = (*a, *kernel);
                    let (t_len, c) = nodes[a.0].value.shape();
                    let half = kernel / 2;
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for row in 0..t_len {
                        for k in 0..kernel {
                            let src = row as isize + k as isize - half as isize;
                            if src < 0 || src >= t_len as isize {
                                continue;
                            }
                            let gs = &g.row(row)[k * c..(k + 1) * c];
                            for (o, &v) in ga.row_mut(src as usize).iter_mut().zip(gs) {
                                *o += v;
                            }
                        }
                    }
                }
                Op::RowMean(a) => {
                    let a = *a;
                    let (r, c) = nodes[a.0].value.shape();
                    let inv = 1.0 / c as f64;
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for row in 0..r {
                        let gv = g[(row, 0)] * inv;
                        for o in ga.row_mut(row) {
                            *o += gv;
                        }
                    }
                }
                Op::Transpose(a) => {
                    let a = *a;
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            ga[(c, r)] += g[(r, c)];
                        }
                    }
                }
                Op::Affine { x, w, b, act } => {
                    let (x, w, b, act) = (*x, *w, *b, *act);
                    let dz_buf = if act == FusedAct::Identity {
                        None
                    } else {
                        let mut d = pool.take_uninit(g.rows(), g.cols());
                        act.dz_into(&g, &nodes[i].value, &mut d);
                        Some(d)
                    };
                    let dz = dz_buf.as_ref().unwrap_or(&g);
                    {
                        let gx = Self::grad_slot(grads, nodes, pool, x);
                        dz.matmul_t_acc_into(&nodes[w.0].value, gx);
                    }
                    {
                        let gw = Self::grad_slot(grads, nodes, pool, w);
                        nodes[x.0].value.t_matmul_acc_into(dz, gw);
                    }
                    {
                        let gb = Self::grad_slot(grads, nodes, pool, b);
                        dz.col_sums_acc_into(gb);
                    }
                    if let Some(d) = dz_buf {
                        pool.put(d);
                    }
                }
                Op::Affine2 { x, w, h, u, b, act } => {
                    let (x, w, h, u, b, act) = (*x, *w, *h, *u, *b, *act);
                    let dz_buf = if act == FusedAct::Identity {
                        None
                    } else {
                        let mut d = pool.take_uninit(g.rows(), g.cols());
                        act.dz_into(&g, &nodes[i].value, &mut d);
                        Some(d)
                    };
                    let dz = dz_buf.as_ref().unwrap_or(&g);
                    {
                        let gx = Self::grad_slot(grads, nodes, pool, x);
                        dz.matmul_t_acc_into(&nodes[w.0].value, gx);
                    }
                    {
                        let gw = Self::grad_slot(grads, nodes, pool, w);
                        nodes[x.0].value.t_matmul_acc_into(dz, gw);
                    }
                    {
                        let gh = Self::grad_slot(grads, nodes, pool, h);
                        dz.matmul_t_acc_into(&nodes[u.0].value, gh);
                    }
                    {
                        let gu = Self::grad_slot(grads, nodes, pool, u);
                        nodes[h.0].value.t_matmul_acc_into(dz, gu);
                    }
                    {
                        let gb = Self::grad_slot(grads, nodes, pool, b);
                        dz.col_sums_acc_into(gb);
                    }
                    if let Some(d) = dz_buf {
                        pool.put(d);
                    }
                }
            }
            grads[i] = Some(g);
        }
    }

    /// Folds an owned delta into the accumulator of `id`: installs it
    /// when the slot is empty, otherwise adds in place and retires the
    /// delta's buffer back to the pool.
    fn acc(
        grads: &mut [Option<Matrix>],
        nodes: &[Node],
        pool: &mut MatrixPool,
        id: VarId,
        delta: Matrix,
    ) {
        debug_assert_eq!(
            nodes[id.0].value.shape(),
            delta.shape(),
            "gradient shape mismatch for node {id:?}"
        );
        match &mut grads[id.0] {
            Some(g) => {
                g.add_assign(&delta);
                pool.put(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    /// Folds a borrowed delta into the accumulator of `id` without
    /// copying when the slot already exists.
    fn acc_ref(
        grads: &mut [Option<Matrix>],
        nodes: &[Node],
        pool: &mut MatrixPool,
        id: VarId,
        delta: &Matrix,
    ) {
        debug_assert_eq!(
            nodes[id.0].value.shape(),
            delta.shape(),
            "gradient shape mismatch for node {id:?}"
        );
        match &mut grads[id.0] {
            Some(g) => g.add_assign(delta),
            slot @ None => *slot = Some(pool.take_copy(delta)),
        }
    }

    /// The gradient accumulator of `id`, created zeroed (from the
    /// pool) on first touch — the target of the in-place `*_acc_into`
    /// backward kernels.
    fn grad_slot<'g>(
        grads: &'g mut [Option<Matrix>],
        nodes: &[Node],
        pool: &mut MatrixPool,
        id: VarId,
    ) -> &'g mut Matrix {
        let (r, c) = nodes[id.0].value.shape();
        grads[id.0].get_or_insert_with(|| pool.take_zeroed(r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(t: &mut Tape, v: f64) -> VarId {
        t.leaf(Matrix::full(1, 1, v))
    }

    #[test]
    fn product_rule() {
        let mut t = Tape::new();
        let a = scalar(&mut t, 3.0);
        let b = scalar(&mut t, 4.0);
        let y = t.mul(a, b);
        t.backward(y);
        assert_eq!(t.grad(a)[(0, 0)], 4.0);
        assert_eq!(t.grad(b)[(0, 0)], 3.0);
    }

    #[test]
    fn chain_rule_through_square_and_mean() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap());
        let sq = t.square(x);
        let m = t.mean(sq);
        t.backward(m);
        // d mean(x^2)/dx = 2x / 3
        let g = t.grad(x);
        for (xi, gi) in [1.0, 2.0, 3.0].iter().zip(g.as_slice()) {
            assert!((gi - 2.0 * xi / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap());
        let b = t.leaf(Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]).unwrap());
        let y = t.matmul(a, b);
        let s = t.sum(y);
        t.backward(s);
        // dS/dA = ones(2,2) * B^T, dS/dB = A^T * ones(2,2)
        let ones = Matrix::full(2, 2, 1.0);
        let expect_a = ones.matmul_t(t.value(b));
        let expect_b = t.value(a).t_matmul(&ones);
        assert_eq!(t.grad(a), expect_a);
        assert_eq!(t.grad(b), expect_b);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        let mut t = Tape::new();
        let x = scalar(&mut t, 2.0);
        let y = t.mul(x, x); // x^2
        t.backward(y);
        assert_eq!(t.grad(x)[(0, 0)], 4.0); // 2x
    }

    #[test]
    fn unused_nodes_have_zero_grad() {
        let mut t = Tape::new();
        let x = scalar(&mut t, 2.0);
        let z = scalar(&mut t, 5.0);
        let y = t.square(x);
        t.backward(y);
        assert_eq!(t.grad(z)[(0, 0)], 0.0);
        assert!(t.grad_ref(z).is_none(), "uninfluential node has no slot");
        assert!(t.grad_ref(x).is_some());
    }

    #[test]
    fn concat_and_slice_route_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap());
        let b = t.leaf(Matrix::from_vec(2, 1, vec![5., 6.]).unwrap());
        let cat = t.concat_cols(a, b);
        let right = t.slice_cols(cat, 2, 3); // just b
        let s = t.sum(right);
        t.backward(s);
        assert_eq!(t.grad(b), Matrix::full(2, 1, 1.0));
        assert_eq!(t.grad(a), Matrix::zeros(2, 2));
    }

    #[test]
    fn concat_rows_roundtrip_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::full(1, 2, 1.0));
        let b = t.leaf(Matrix::full(2, 2, 2.0));
        let cat = t.concat_rows(&[a, b]);
        let sl = t.slice_rows(cat, 1, 3);
        let s = t.sum(sl);
        t.backward(s);
        assert_eq!(t.grad(a), Matrix::zeros(1, 2));
        assert_eq!(t.grad(b), Matrix::full(2, 2, 1.0));
    }

    #[test]
    fn softplus_grad_is_sigmoid() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![-2.0, 0.0, 2.0]).unwrap());
        let sp = t.softplus(x);
        let s = t.sum(sp);
        t.backward(s);
        for (xi, gi) in [-2.0f64, 0.0, 2.0].iter().zip(t.grad(x).as_slice()) {
            let sig = 1.0 / (1.0 + (-xi).exp());
            assert!((gi - sig).abs() < 1e-12);
        }
    }

    #[test]
    fn im2col_forward_layout() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap());
        let u = t.im2col(x, 3);
        // row 0: [pad, x0, x1] = [0, 1, 2]
        assert_eq!(t.value(u).row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(t.value(u).row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(t.value(u).row(2), &[2.0, 3.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "scalar (1x1) loss")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        t.backward(x);
    }

    #[test]
    fn affine_matches_unfused_graph_bitwise() {
        let x_m = Matrix::from_fn(3, 4, |r, c| (r as f64 + 1.0) * 0.3 - c as f64 * 0.7);
        let w_m = Matrix::from_fn(4, 2, |r, c| (r as f64 - 1.5) * (c as f64 + 0.5) * 0.11);
        let b_m = Matrix::from_vec(1, 2, vec![0.25, -0.75]).unwrap();

        for act in [
            FusedAct::Identity,
            FusedAct::Sigmoid,
            FusedAct::Tanh,
            FusedAct::Relu,
        ] {
            // Unfused reference graph.
            let mut t1 = Tape::new();
            let (x1, w1, b1) = (
                t1.leaf(x_m.clone()),
                t1.leaf(w_m.clone()),
                t1.leaf(b_m.clone()),
            );
            let mm = t1.matmul(x1, w1);
            let aff = t1.add_row_broadcast(mm, b1);
            let y1 = match act {
                FusedAct::Identity => aff,
                FusedAct::Sigmoid => t1.sigmoid(aff),
                FusedAct::Tanh => t1.tanh(aff),
                FusedAct::Relu => t1.relu(aff),
            };
            let l1 = t1.sum(y1);
            t1.backward(l1);

            // Fused graph.
            let mut t2 = Tape::new();
            let (x2, w2, b2) = (
                t2.leaf(x_m.clone()),
                t2.leaf(w_m.clone()),
                t2.leaf(b_m.clone()),
            );
            let y2 = t2.affine_act(x2, w2, b2, act);
            let l2 = t2.sum(y2);
            t2.backward(l2);

            assert_eq!(t1.value(y1), t2.value(y2), "{act:?} forward");
            assert_eq!(t1.grad(x1), t2.grad(x2), "{act:?} dx");
            assert_eq!(t1.grad(w1), t2.grad(w2), "{act:?} dw");
            assert_eq!(t1.grad(b1), t2.grad(b2), "{act:?} db");
        }
    }

    #[test]
    fn affine2_matches_unfused_graph_bitwise() {
        let x_m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 * 0.09 - 0.6);
        let w_m = Matrix::from_fn(4, 2, |r, c| ((r + c) as f64).sin() * 0.5);
        let h_m = Matrix::from_fn(3, 5, |r, c| (r as f64 - c as f64) * 0.21);
        let u_m = Matrix::from_fn(5, 2, |r, c| ((r * 2 + c) as f64).cos() * 0.4);
        let b_m = Matrix::from_vec(1, 2, vec![-0.1, 0.35]).unwrap();

        // Unfused: sigmoid(x W + h U + b), the GRU gate shape.
        let mut t1 = Tape::new();
        let x1 = t1.leaf(x_m.clone());
        let w1 = t1.leaf(w_m.clone());
        let h1 = t1.leaf(h_m.clone());
        let u1 = t1.leaf(u_m.clone());
        let b1 = t1.leaf(b_m.clone());
        let xw = t1.matmul(x1, w1);
        let hu = t1.matmul(h1, u1);
        let s = t1.add(xw, hu);
        let sb = t1.add_row_broadcast(s, b1);
        let y1 = t1.sigmoid(sb);
        let l1 = t1.sum(y1);
        t1.backward(l1);

        let mut t2 = Tape::new();
        let x2 = t2.leaf(x_m.clone());
        let w2 = t2.leaf(w_m.clone());
        let h2 = t2.leaf(h_m.clone());
        let u2 = t2.leaf(u_m.clone());
        let b2 = t2.leaf(b_m.clone());
        let y2 = t2.affine2_act(x2, w2, h2, u2, b2, FusedAct::Sigmoid);
        let l2 = t2.sum(y2);
        t2.backward(l2);

        assert_eq!(t1.value(y1), t2.value(y2), "forward");
        assert_eq!(t1.grad(x1), t2.grad(x2), "dx");
        assert_eq!(t1.grad(w1), t2.grad(w2), "dw");
        assert_eq!(t1.grad(h1), t2.grad(h2), "dh");
        assert_eq!(t1.grad(u1), t2.grad(u2), "du");
        assert_eq!(t1.grad(b1), t2.grad(b2), "db");
    }

    #[test]
    fn recycled_tape_is_bit_identical_and_allocation_free() {
        let x_m = Matrix::from_fn(4, 3, |r, c| (r as f64).sin() + c as f64 * 0.3);
        let w_m = Matrix::from_fn(3, 3, |r, c| ((r * 3 + c) as f64 * 0.17).cos());
        let b_m = Matrix::from_fn(1, 3, |_, c| c as f64 * 0.05 - 0.1);

        let run = |t: &mut Tape| {
            let x = t.leaf_copy(&x_m);
            let w = t.leaf_copy(&w_m);
            let b = t.leaf_copy(&b_m);
            let y = t.affine_act(x, w, b, FusedAct::Tanh);
            let sq = t.square(y);
            let l = t.mean(sq);
            t.backward(l);
            (t.value(l)[(0, 0)], t.grad(w), t.grad(b))
        };

        // Fresh tape reference.
        let mut fresh = Tape::new();
        let (l_ref, gw_ref, gb_ref) = run(&mut fresh);

        // Recycled tape: run, reset, run again — identical results.
        let mut t = Tape::new();
        let _ = run(&mut t);
        let warm_misses = t.pool_misses();
        for _ in 0..3 {
            t.reset();
            let (l, gw, gb) = run(&mut t);
            assert_eq!(l.to_bits(), l_ref.to_bits());
            assert_eq!(gw, gw_ref);
            assert_eq!(gb, gb_ref);
        }
        assert_eq!(
            t.pool_misses(),
            warm_misses,
            "steady-state recycled reruns must not allocate fresh buffers"
        );
    }

    #[test]
    fn repeated_backward_without_reset_is_stable() {
        let mut t = Tape::new();
        let x = scalar(&mut t, 2.0);
        let y = t.square(x);
        t.backward(y);
        assert_eq!(t.grad(x)[(0, 0)], 4.0);
        t.backward(y);
        assert_eq!(t.grad(x)[(0, 0)], 4.0, "second sweep must not double");
    }
}
