//! Arena-based reverse-mode automatic differentiation over matrices.
//!
//! A [`Tape`] records forward ops as nodes (eagerly computing values);
//! [`Tape::backward`] sweeps the arena in reverse insertion order —
//! which is always a valid reverse topological order — accumulating
//! gradients. This "define-by-run" structure is the same contract as
//! PyTorch's dynamic graph, scaled down to the dense-matrix ops the
//! ten TSG methods need.
//!
//! # Training memory model
//!
//! Rebuilding the graph every minibatch does **not** mean reallocating
//! it. [`Tape::reset`] retires every node value and gradient buffer
//! into an internal [`MatrixPool`] and clears the arena while keeping
//! its capacity; the next forward pass of the same graph shape then
//! draws every buffer back out of the pool. In steady state a
//! recycled tape performs **zero** heap allocations per training step:
//! forward values, backward deltas, and gradient accumulators all live
//! in pooled storage, and [`Tape::backward`] accumulates through the
//! in-place kernels of `tsgb-linalg` (`add_assign`, `*_acc_into`)
//! rather than `grad + delta` temporaries. See `DESIGN.md` ("Training
//! memory model") for the full contract.
//!
//! Design notes (see `DESIGN.md`):
//! * values and gradients are plain [`Matrix`]; no views/strides, so
//!   every op's backward is a few dense kernels;
//! * node payloads live in one `Vec`, ids are indices ([`VarId`]) —
//!   no `Rc`/`RefCell`, no lifetimes in user code;
//! * losses must reduce to `1 x 1` before calling `backward`;
//! * the fused [`Tape::affine_act`] / [`Tape::affine2_act`] ops record
//!   a whole `act(x W (+ h U) + b)` block as one node, so a Linear or
//!   a GRU/LSTM gate costs one arena slot instead of 3–5.

use tsgb_linalg::{Matrix, MatrixPool};

/// Index of a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Activation fused into [`Tape::affine_act`] / [`Tape::affine2_act`].
///
/// Only activations whose derivative is recoverable from the *output*
/// are fusable (the pre-activation is never materialized): sigmoid
/// (`y(1-y)`), tanh (`1-y^2`) and ReLU (`y > 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedAct {
    /// No activation: the affine output itself.
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl FusedAct {
    /// Applies the activation elementwise in place.
    pub(crate) fn apply(self, m: &mut Matrix) {
        match self {
            FusedAct::Identity => {}
            FusedAct::Sigmoid => m.map_inplace(tsgb_linalg::detmath::sigmoid),
            FusedAct::Tanh => m.map_inplace(tsgb_linalg::detmath::tanh),
            FusedAct::Relu => m.map_inplace(|x| x.max(0.0)),
        }
    }

    /// Writes `g * act'` into `out`, reading the derivative off the
    /// activation *output* `y`. Identity must be handled by the caller
    /// (no buffer is needed there).
    pub(crate) fn dz_into(self, g: &Matrix, y: &Matrix, out: &mut Matrix) {
        match self {
            FusedAct::Identity => unreachable!("identity needs no dz buffer"),
            FusedAct::Sigmoid => g.zip_map_into(y, |gi, yi| gi * yi * (1.0 - yi), out),
            FusedAct::Tanh => g.zip_map_into(y, |gi, yi| gi * (1.0 - yi * yi), out),
            FusedAct::Relu => g.zip_map_into(y, |gi, yi| if yi > 0.0 { gi } else { 0.0 }, out),
        }
    }
}

/// How a leaf's value enters the tape — recorded so a replaying tape
/// knows what to *feed* each step without re-recording: `Data` leaves
/// are memcpy'd in, `Zeros` leaves are never touched (their buffers
/// are immutable by construction), and `Filled` leaves are refilled
/// only when the fill value changes bitwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum LeafKind {
    /// Parameter or minibatch data: fed by copy every replayed step.
    /// `grad: false` marks constants ([`Tape::constant`] /
    /// [`Tape::constant_copy`]) whose gradient nobody reads — the
    /// compiled backward plan prunes every edge into them (the
    /// interpreter still materializes them, which is why parameter
    /// bits stay identical either way).
    Data {
        grad: bool,
    },
    /// All-zero leaf (initial recurrent state, padding).
    Zeros,
    /// Constant-filled leaf (GAN targets); payload is the fill value.
    Filled(f64),
}

/// The differentiable operations.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Leaf (parameter or constant); no backward.
    Leaf(LeafKind),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    /// Elementwise (Hadamard) product.
    Mul(VarId, VarId),
    Neg(VarId),
    /// Multiply by a fixed scalar.
    Scale(VarId, f64),
    /// Add a fixed scalar to every element. The scalar rides along so
    /// a replaying tape can re-feed per-step values (it is not needed
    /// by backward: `d(x + s)/dx = 1`).
    AddScalar(VarId, f64),
    /// Stop-gradient: forward copies the value, backward ends here.
    Detach(VarId),
    Matmul(VarId, VarId),
    Sigmoid(VarId),
    Tanh(VarId),
    Relu(VarId),
    LeakyRelu(VarId, f64),
    Exp(VarId),
    /// Natural log; caller guarantees positive inputs.
    Ln(VarId),
    Square(VarId),
    Abs(VarId),
    /// `ln(1 + e^x)`, computed stably.
    Softplus(VarId),
    /// Elementwise reciprocal; caller guarantees nonzero inputs.
    Recip(VarId),
    /// Reduce all elements to a `1 x 1` sum.
    Sum(VarId),
    /// Reduce all elements to a `1 x 1` mean.
    Mean(VarId),
    /// Add a `1 x cols` row vector to every row.
    AddRowBroadcast(VarId, VarId),
    /// Multiply every row elementwise by a `1 x cols` row vector.
    MulRowBroadcast(VarId, VarId),
    /// Side-by-side concatenation `[a | b]`.
    ConcatCols(VarId, VarId),
    /// Column slice `[start, end)` of the input.
    SliceCols(VarId, usize, usize),
    /// Stack many row-compatible matrices vertically.
    ConcatRows(Vec<VarId>),
    /// Row slice `[start, end)` of the input.
    SliceRows(VarId, usize, usize),
    /// Unfolds a `(T, C)` sequence into `(T, K*C)` receptive fields
    /// with symmetric zero padding — the im2col step of Conv1d.
    Im2Col(VarId, usize),
    /// Row-wise mean: `(R, C) -> (R, 1)`.
    RowMean(VarId),
    /// Transpose.
    Transpose(VarId),
    /// Fused `act(x W + b)`: matmul, row-broadcast bias, activation in
    /// one node.
    Affine {
        x: VarId,
        w: VarId,
        b: VarId,
        act: FusedAct,
    },
    /// Fused `act(x W + h U + b)` — the shape of every GRU/LSTM gate.
    Affine2 {
        x: VarId,
        w: VarId,
        h: VarId,
        u: VarId,
        b: VarId,
        act: FusedAct,
    },
}

/// Structural-signature comparison for replay: `true` when `new`
/// denotes the same node as the recorded op. Input ids, slice bounds,
/// kernel widths, part lists and fused activations are *structure* and
/// must match exactly; scalar payloads (`Scale`, `AddScalar`,
/// `LeakyRelu`) are per-step *feeds* — compared bitwise and written
/// through into the recorded op on change, so a data-dependent scalar
/// (e.g. a per-minibatch mean) never invalidates the plan. The
/// compiled forward and backward steps read these payloads live from
/// the recorded ops, never from a frozen copy.
fn sig_match(rec: &mut Op, new: &Op) -> bool {
    match (rec, new) {
        (Op::Add(a0, b0), Op::Add(a1, b1))
        | (Op::Sub(a0, b0), Op::Sub(a1, b1))
        | (Op::Mul(a0, b0), Op::Mul(a1, b1))
        | (Op::Matmul(a0, b0), Op::Matmul(a1, b1))
        | (Op::AddRowBroadcast(a0, b0), Op::AddRowBroadcast(a1, b1))
        | (Op::MulRowBroadcast(a0, b0), Op::MulRowBroadcast(a1, b1))
        | (Op::ConcatCols(a0, b0), Op::ConcatCols(a1, b1)) => a0 == a1 && b0 == b1,
        (Op::Neg(a0), Op::Neg(a1))
        | (Op::Detach(a0), Op::Detach(a1))
        | (Op::Sigmoid(a0), Op::Sigmoid(a1))
        | (Op::Tanh(a0), Op::Tanh(a1))
        | (Op::Relu(a0), Op::Relu(a1))
        | (Op::Exp(a0), Op::Exp(a1))
        | (Op::Ln(a0), Op::Ln(a1))
        | (Op::Square(a0), Op::Square(a1))
        | (Op::Abs(a0), Op::Abs(a1))
        | (Op::Softplus(a0), Op::Softplus(a1))
        | (Op::Recip(a0), Op::Recip(a1))
        | (Op::Sum(a0), Op::Sum(a1))
        | (Op::Mean(a0), Op::Mean(a1))
        | (Op::RowMean(a0), Op::RowMean(a1))
        | (Op::Transpose(a0), Op::Transpose(a1)) => a0 == a1,
        (Op::Scale(a0, s0), Op::Scale(a1, s1))
        | (Op::AddScalar(a0, s0), Op::AddScalar(a1, s1))
        | (Op::LeakyRelu(a0, s0), Op::LeakyRelu(a1, s1)) => {
            if a0 != a1 {
                return false;
            }
            if s0.to_bits() != s1.to_bits() {
                *s0 = *s1;
            }
            true
        }
        (Op::SliceCols(a0, s0, e0), Op::SliceCols(a1, s1, e1))
        | (Op::SliceRows(a0, s0, e0), Op::SliceRows(a1, s1, e1)) => {
            a0 == a1 && s0 == s1 && e0 == e1
        }
        (Op::ConcatRows(p0), Op::ConcatRows(p1)) => p0 == p1,
        (Op::Im2Col(a0, k0), Op::Im2Col(a1, k1)) => a0 == a1 && k0 == k1,
        (
            Op::Affine {
                x: x0,
                w: w0,
                b: b0,
                act: act0,
            },
            Op::Affine {
                x: x1,
                w: w1,
                b: b1,
                act: act1,
            },
        ) => x0 == x1 && w0 == w1 && b0 == b1 && act0 == act1,
        (
            Op::Affine2 {
                x: x0,
                w: w0,
                h: h0,
                u: u0,
                b: b0,
                act: act0,
            },
            Op::Affine2 {
                x: x1,
                w: w1,
                h: h1,
                u: u1,
                b: b1,
                act: act1,
            },
        ) => x0 == x1 && w0 == w1 && h0 == h1 && u0 == u1 && b0 == b1 && act0 == act1,
        _ => false,
    }
}

pub(crate) struct Node {
    pub(crate) value: Matrix,
    pub(crate) op: Op,
}

/// Plan-execution state: either plain recording, or replaying a
/// frozen [`crate::plan`] capture of this tape's step structure.
#[derive(Default)]
enum PlanCtl {
    /// Recording mode — ops compute eagerly and push nodes.
    #[default]
    Idle,
    /// Replay mode — ops only signature-check against the captured
    /// structure and feed leaf data; compute is deferred to
    /// [`Tape::backward`], which runs the compiled plan.
    Replay(Box<crate::plan::Replay>),
}

/// The gradient tape.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    pub(crate) grads: Vec<Option<Matrix>>,
    pub(crate) pool: MatrixPool,
    /// Pool misses already published to the `nn.pool.miss` counter,
    /// so each [`Tape::reset`] reports only the delta.
    reported_misses: u64,
    plan: PlanCtl,
    /// Lifetime count of plan captures (diagnostics; mirrored to the
    /// `nn.plan.captures` obs counter).
    captures: u64,
    /// Lifetime count of fully replayed steps (`nn.plan.replays`).
    replays: u64,
    /// Lifetime count of structural invalidations that fell back to
    /// re-recording (`nn.plan.invalidations`).
    invalidations: u64,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears all nodes and gradients while keeping every buffer:
    /// node values and gradient matrices are retired into the tape's
    /// pool, and the arena `Vec`s keep their capacity. Re-recording a
    /// graph of the same shape after `reset` performs no heap
    /// allocation, and produces bit-identical values and gradients to
    /// a freshly constructed tape (the pooled buffers are fully
    /// overwritten or zeroed before reuse).
    pub fn reset(&mut self) {
        self.observe_step();
        self.teardown_plan();
        for node in self.nodes.drain(..) {
            self.pool.put(node.value);
        }
        for g in self.grads.drain(..).flatten() {
            self.pool.put(g);
        }
    }

    /// Observability hook: one step boundary per reset/begin_step.
    /// Everything here is observed, never read back — results are
    /// unaffected — and with recording disabled the whole block is one
    /// relaxed atomic load.
    fn observe_step(&mut self) {
        if tsgb_obs::enabled() {
            tsgb_obs::counter_add("nn.tape.steps", 1);
            tsgb_obs::observe("nn.tape.nodes", self.nodes.len() as f64);
            let misses = self.pool.misses();
            tsgb_obs::counter_add("nn.pool.miss", misses - self.reported_misses);
            self.reported_misses = misses;
        }
    }

    /// Dismantles any replay state, retiring plan-owned scratch
    /// buffers into the pool. Nodes and gradients are untouched.
    fn teardown_plan(&mut self) {
        if let PlanCtl::Replay(r) = std::mem::take(&mut self.plan) {
            for buf in r.into_scratch() {
                self.pool.put(buf);
            }
        }
    }

    /// Marks a step boundary under the record-once/replay-many
    /// contract. With `plan` off this is exactly [`Tape::reset`]. With
    /// `plan` on:
    ///
    /// * an empty tape just starts recording (the capture step);
    /// * the first boundary after a recorded step **captures** it —
    ///   freezes the node list into a compiled forward/backward plan,
    ///   pre-sizes the pool from the plan's buffer manifest, and
    ///   switches to replay mode;
    /// * subsequent boundaries rewind the replay cursor, keeping every
    ///   buffer in place for the next step's feeds.
    ///
    /// A structural mismatch mid-step (changed batch size, different
    /// graph) transparently falls back: the already-matched prefix is
    /// materialized with interpreter kernels, the stale suffix is
    /// retired, recording resumes, and the next boundary re-captures.
    pub fn begin_step(&mut self, plan: bool) {
        self.observe_step();
        if !plan {
            // Plan disabled (`TSGB_PLAN=off` or fresh_tapes): plain
            // arena recycling.
            self.teardown_plan();
            for node in self.nodes.drain(..) {
                self.pool.put(node.value);
            }
            for g in self.grads.drain(..).flatten() {
                self.pool.put(g);
            }
            return;
        }
        match &mut self.plan {
            PlanCtl::Replay(r) => r.rewind(),
            PlanCtl::Idle if self.nodes.is_empty() => {}
            // Only a step that ran `backward()` is a complete training
            // step worth freezing. Leaves recorded before the first
            // step (e.g. the initial `Params::bind`) would otherwise
            // capture a degenerate leaf-only plan that immediately
            // invalidates; recycle them instead and wait for the first
            // full step.
            PlanCtl::Idle if self.grads.is_empty() => {
                for node in self.nodes.drain(..) {
                    self.pool.put(node.value);
                }
            }
            PlanCtl::Idle => self.capture_plan(),
        }
    }

    /// Freezes the recorded step into a compiled plan and enters
    /// replay mode. Called from the step boundary following a fully
    /// recorded step.
    fn capture_plan(&mut self) {
        let replay = crate::plan::Replay::capture(&self.nodes, &mut self.pool);
        self.plan = PlanCtl::Replay(Box::new(replay));
        self.captures += 1;
        if tsgb_obs::enabled() {
            tsgb_obs::counter_add("nn.plan.captures", 1);
        }
    }

    /// Falls back from replay to recording: materializes the
    /// already-matched prefix (so recording continues from correct
    /// values), retires the stale suffix and all gradient buffers, and
    /// drops the plan. The next [`Tape::begin_step`] re-captures.
    fn invalidate_replay(&mut self) {
        let PlanCtl::Replay(r) = std::mem::take(&mut self.plan) else {
            return;
        };
        let (cursor, watermark) = (r.cursor, r.watermark);
        for i in watermark..cursor {
            if !matches!(self.nodes[i].op, Op::Leaf(_)) {
                crate::plan::exec_node(&mut self.nodes, i, &mut self.pool, &crate::plan::EMPTY_PACKS);
            }
        }
        for node in self.nodes.drain(cursor..) {
            self.pool.put(node.value);
        }
        for g in self.grads.drain(..).flatten() {
            self.pool.put(g);
        }
        for buf in r.into_scratch() {
            self.pool.put(buf);
        }
        self.invalidations += 1;
        if tsgb_obs::enabled() {
            tsgb_obs::counter_add("nn.plan.invalidations", 1);
        }
    }

    /// Lifetime `(captures, replays, invalidations)` of this tape's
    /// plan state machine (diagnostics for tests and perf probes).
    pub fn plan_stats(&self) -> (u64, u64, u64) {
        (self.captures, self.replays, self.invalidations)
    }

    /// Number of pool misses so far — fresh allocations the buffer
    /// pool could not serve. Stops growing once a recycled tape
    /// reaches steady state (diagnostics for the perf probes).
    pub fn pool_misses(&self) -> u64 {
        self.pool.misses()
    }

    fn push(&mut self, value: Matrix, op: Op) -> VarId {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node { value, op });
        VarId(self.nodes.len() - 1)
    }

    /// Whether this tape is currently replaying a captured plan.
    fn replaying(&self) -> bool {
        matches!(self.plan, PlanCtl::Replay(_))
    }

    /// Replay-mode handler for a non-leaf op: structural signature
    /// check against the node at the cursor. On a match the cursor
    /// advances and no compute happens (it is deferred to the plan run
    /// inside [`Tape::backward`]); scalar payloads (`scale`,
    /// `add_scalar`, `leaky_relu`) are treated as per-step *feeds* and
    /// updated in place rather than invalidating. On any structural
    /// mismatch the plan is dismantled (`None` is returned) and the
    /// caller falls through to plain recording.
    fn replay_op(&mut self, op: &Op) -> Option<VarId> {
        let PlanCtl::Replay(r) = &mut self.plan else {
            return None;
        };
        if r.cursor < self.nodes.len() && sig_match(&mut self.nodes[r.cursor].op, op) {
            r.cursor += 1;
            return Some(VarId(r.cursor - 1));
        }
        self.invalidate_replay();
        None
    }

    /// Replay-mode handler for a leaf: checks kind and shape against
    /// the captured structure, then feeds the new data into the
    /// preresolved buffer (memcpy for data leaves, nothing for zeros,
    /// a refill for changed fill values). Returns `None` after
    /// invalidating when the structure diverged.
    fn replay_leaf(
        &mut self,
        kind: LeafKind,
        shape: (usize, usize),
        data: Option<&Matrix>,
    ) -> Option<VarId> {
        let PlanCtl::Replay(r) = &mut self.plan else {
            return None;
        };
        let matched = r.cursor < self.nodes.len() && {
            let node = &mut self.nodes[r.cursor];
            node.value.shape() == shape
                && match (&mut node.op, kind) {
                    (Op::Leaf(LeafKind::Data { grad: old }), LeafKind::Data { grad: new })
                        if *old == new =>
                    {
                        node.value.copy_from(data.expect("data leaves carry data"));
                        true
                    }
                    (Op::Leaf(LeafKind::Zeros), LeafKind::Zeros) => true,
                    (Op::Leaf(LeafKind::Filled(old)), LeafKind::Filled(new)) => {
                        if old.to_bits() != new.to_bits() {
                            node.value.fill(new);
                            *old = new;
                        }
                        true
                    }
                    _ => false,
                }
        };
        if matched {
            r.cursor += 1;
            return Some(VarId(r.cursor - 1));
        }
        self.invalidate_replay();
        None
    }

    /// Records a leaf holding `value` (parameter input).
    pub fn leaf(&mut self, value: Matrix) -> VarId {
        let kind = LeafKind::Data { grad: true };
        if self.replaying() {
            if let Some(id) = self.replay_leaf(kind, value.shape(), Some(&value)) {
                return id;
            }
        }
        self.push(value, Op::Leaf(kind))
    }

    /// Records a leaf holding a pooled copy of `value` — the
    /// allocation-free way to inject parameters into a recycled tape.
    pub fn leaf_copy(&mut self, value: &Matrix) -> VarId {
        let kind = LeafKind::Data { grad: true };
        if self.replaying() {
            if let Some(id) = self.replay_leaf(kind, value.shape(), Some(value)) {
                return id;
            }
        }
        let v = self.pool.take_copy(value);
        self.push(v, Op::Leaf(kind))
    }

    /// Like [`Tape::leaf`] for non-trainable data. The gradient of a
    /// constant is never read, so the compiled backward plan skips
    /// computing it (the interpreter still does).
    pub fn constant(&mut self, value: Matrix) -> VarId {
        let kind = LeafKind::Data { grad: false };
        if self.replaying() {
            if let Some(id) = self.replay_leaf(kind, value.shape(), Some(&value)) {
                return id;
            }
        }
        self.push(value, Op::Leaf(kind))
    }

    /// Like [`Tape::leaf_copy`] for non-trainable data (minibatches,
    /// targets); gradient edges into it are pruned from compiled
    /// backward plans.
    pub fn constant_copy(&mut self, value: &Matrix) -> VarId {
        let kind = LeafKind::Data { grad: false };
        if self.replaying() {
            if let Some(id) = self.replay_leaf(kind, value.shape(), Some(value)) {
                return id;
            }
        }
        let v = self.pool.take_copy(value);
        self.push(v, Op::Leaf(kind))
    }

    /// Records a leaf of zeros drawn from the pool (initial recurrent
    /// states, padding blocks).
    pub fn zeros(&mut self, rows: usize, cols: usize) -> VarId {
        if self.replaying() {
            if let Some(id) = self.replay_leaf(LeafKind::Zeros, (rows, cols), None) {
                return id;
            }
        }
        let v = self.pool.take_zeroed(rows, cols);
        self.push(v, Op::Leaf(LeafKind::Zeros))
    }

    /// Records a constant-filled leaf drawn from the pool (GAN
    /// real/fake targets).
    pub fn filled(&mut self, rows: usize, cols: usize, value: f64) -> VarId {
        if self.replaying() {
            if let Some(id) = self.replay_leaf(LeafKind::Filled(value), (rows, cols), None) {
                return id;
            }
        }
        let mut v = self.pool.take_uninit(rows, cols);
        v.fill(value);
        self.push(v, Op::Leaf(LeafKind::Filled(value)))
    }

    /// The forward value of a node.
    ///
    /// During plan replay only *fresh* values may be read this way:
    /// leaves already fed this step, nodes materialized by
    /// [`Tape::eval`], or anything after [`Tape::backward`] has run
    /// the plan. Reading a deferred (not yet computed) or fused-away
    /// node panics — use [`Tape::eval`] for mid-graph reads and
    /// [`Tape::shape`] for shape-only queries.
    pub fn value(&self, id: VarId) -> &Matrix {
        if let PlanCtl::Replay(r) = &self.plan {
            let node = &self.nodes[id.0];
            let fresh = if matches!(node.op, Op::Leaf(_)) {
                id.0 < r.cursor
            } else {
                id.0 < r.watermark && !r.fwd.dead(id.0)
            };
            assert!(
                fresh,
                "Tape::value({id:?}) during plan replay would read a stale \
                 buffer; use Tape::eval for mid-graph reads or Tape::shape \
                 for shapes"
            );
        }
        &self.nodes[id.0].value
    }

    /// The shape of a node's value. Always valid, even during plan
    /// replay (shapes are frozen by the capture, values may be
    /// deferred).
    pub fn shape(&self, id: VarId) -> (usize, usize) {
        self.nodes[id.0].value.shape()
    }

    /// The forward value of `id`, computing it on demand during plan
    /// replay: every deferred node up to and including `id` is
    /// materialized with the interpreter kernels, so the returned
    /// value is bit-identical to recording mode. Outside replay this
    /// is exactly [`Tape::value`].
    pub fn eval(&mut self, id: VarId) -> &Matrix {
        if let PlanCtl::Replay(r) = &mut self.plan {
            assert!(
                id.0 < r.cursor,
                "Tape::eval({id:?}) of a node not yet re-declared this step"
            );
            for i in r.watermark..=id.0 {
                if !matches!(self.nodes[i].op, Op::Leaf(_)) {
                    crate::plan::exec_node(&mut self.nodes, i, &mut self.pool, &crate::plan::EMPTY_PACKS);
                }
            }
            r.watermark = r.watermark.max(id.0 + 1);
        }
        &self.nodes[id.0].value
    }

    /// The gradient of the last `backward` call w.r.t. node `id`,
    /// **copied** into a fresh matrix (zeros if the node did not
    /// influence the loss). Hot paths should prefer
    /// [`Tape::grad_ref`], which borrows the accumulator instead of
    /// cloning it; this copying form stays for API convenience.
    pub fn grad(&self, id: VarId) -> Matrix {
        match self.grads.get(id.0) {
            Some(Some(g)) => g.clone(),
            _ => {
                let (r, c) = self.nodes[id.0].value.shape();
                Matrix::zeros(r, c)
            }
        }
    }

    /// Borrow of the gradient accumulated for node `id` by the last
    /// `backward` call, or `None` when the node did not influence the
    /// loss (its gradient is identically zero).
    pub fn grad_ref(&self, id: VarId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    // ---- forward ops -------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::Add(a, b)) {
            return id;
        }
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, |x, y| x + y, &mut v);
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::Sub(a, b)) {
            return id;
        }
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, |x, y| x - y, &mut v);
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::Mul(a, b)) {
            return id;
        }
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, |x, y| x * y, &mut v);
        self.push(v, Op::Mul(a, b))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: VarId) -> VarId {
        self.unary_map(a, |x| -x, Op::Neg(a))
    }

    /// Multiplies by a constant scalar.
    pub fn scale(&mut self, a: VarId, s: f64) -> VarId {
        self.unary_map(a, |x| x * s, Op::Scale(a, s))
    }

    /// Adds a constant scalar to every element.
    pub fn add_scalar(&mut self, a: VarId, s: f64) -> VarId {
        self.unary_map(a, |x| x + s, Op::AddScalar(a, s))
    }

    /// Stop-gradient: forward is a copy of `a`, backward treats the
    /// node as a constant (no gradient flows into `a`). This is the
    /// plan-friendly form of the `t.constant(t.value(a).clone())`
    /// idiom: the copy happens on the tape, so nothing needs to read a
    /// value mid-graph.
    pub fn detach(&mut self, a: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::Detach(a)) {
            return id;
        }
        let v = self.pool.take_copy(&self.nodes[a.0].value);
        self.push(v, Op::Detach(a))
    }

    /// Records an elementwise op computed into a pooled buffer.
    fn unary_map(&mut self, a: VarId, f: impl Fn(f64) -> f64, op: Op) -> VarId {
        if let Some(id) = self.replay_op(&op) {
            return id;
        }
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        self.nodes[a.0].value.map_into(f, &mut v);
        self.push(v, op)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::Matmul(a, b)) {
            return id;
        }
        let m = self.nodes[a.0].value.rows();
        let n = self.nodes[b.0].value.cols();
        let mut v = self.pool.take_zeroed(m, n);
        self.nodes[a.0]
            .value
            .matmul_acc_into(&self.nodes[b.0].value, &mut v);
        self.push(v, Op::Matmul(a, b))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        self.unary_map(a, tsgb_linalg::detmath::sigmoid, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        self.unary_map(a, tsgb_linalg::detmath::tanh, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        self.unary_map(a, |x| x.max(0.0), Op::Relu(a))
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: VarId, slope: f64) -> VarId {
        self.unary_map(
            a,
            |x| if x >= 0.0 { x } else { slope * x },
            Op::LeakyRelu(a, slope),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        self.unary_map(a, f64::exp, Op::Exp(a))
    }

    /// Elementwise natural log (inputs must be positive).
    pub fn ln(&mut self, a: VarId) -> VarId {
        self.unary_map(a, f64::ln, Op::Ln(a))
    }

    /// Elementwise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        self.unary_map(a, |x| x * x, Op::Square(a))
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&mut self, a: VarId) -> VarId {
        self.unary_map(a, f64::abs, Op::Abs(a))
    }

    /// Numerically stable `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: VarId) -> VarId {
        self.unary_map(
            a,
            |x| if x > 20.0 { x } else { (1.0 + x.exp()).ln() },
            Op::Softplus(a),
        )
    }

    /// Elementwise reciprocal `1 / x` (inputs must be nonzero) — the
    /// scaling step of unrolled Sinkhorn iterations.
    pub fn recip(&mut self, a: VarId) -> VarId {
        self.unary_map(a, |x| 1.0 / x, Op::Recip(a))
    }

    /// Sum of all elements, as `1 x 1`.
    pub fn sum(&mut self, a: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::Sum(a)) {
            return id;
        }
        let s = self.nodes[a.0].value.sum();
        let mut v = self.pool.take_uninit(1, 1);
        v.fill(s);
        self.push(v, Op::Sum(a))
    }

    /// Mean of all elements, as `1 x 1`.
    pub fn mean(&mut self, a: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::Mean(a)) {
            return id;
        }
        let m = self.nodes[a.0].value.mean();
        let mut v = self.pool.take_uninit(1, 1);
        v.fill(m);
        self.push(v, Op::Mean(a))
    }

    /// Adds a `1 x cols` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: VarId, row: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::AddRowBroadcast(a, row)) {
            return id;
        }
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(r, c);
        v.copy_from(&self.nodes[a.0].value);
        v.add_row_broadcast_assign(&self.nodes[row.0].value);
        self.push(v, Op::AddRowBroadcast(a, row))
    }

    /// Multiplies every row of `a` elementwise by a `1 x cols` row
    /// vector — the diagonal state transition of LS4's SSM layers.
    pub fn mul_row_broadcast(&mut self, a: VarId, row: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::MulRowBroadcast(a, row)) {
            return id;
        }
        let (r, c) = self.nodes[a.0].value.shape();
        {
            let rv = &self.nodes[row.0].value;
            assert_eq!(rv.rows(), 1, "broadcast operand must be a row vector");
            assert_eq!(rv.cols(), c, "broadcast width mismatch");
        }
        let mut v = self.pool.take_uninit(r, c);
        {
            let x = &self.nodes[a.0].value;
            let rv = &self.nodes[row.0].value;
            for row_i in 0..r {
                for (o, (&xv, &sv)) in v
                    .row_mut(row_i)
                    .iter_mut()
                    .zip(x.row(row_i).iter().zip(rv.row(0)))
                {
                    *o = xv * sv;
                }
            }
        }
        self.push(v, Op::MulRowBroadcast(a, row))
    }

    /// `[a | b]` column concatenation.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::ConcatCols(a, b)) {
            return id;
        }
        let (r, ca) = self.nodes[a.0].value.shape();
        let cb = self.nodes[b.0].value.cols();
        assert_eq!(
            self.nodes[b.0].value.rows(),
            r,
            "concat_cols row mismatch"
        );
        let mut v = self.pool.take_uninit(r, ca + cb);
        {
            let (xa, xb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            for row in 0..r {
                v.row_mut(row)[..ca].copy_from_slice(xa.row(row));
                v.row_mut(row)[ca..].copy_from_slice(xb.row(row));
            }
        }
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Columns `[start, end)` of `a`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        if let Some(id) = self.replay_op(&Op::SliceCols(a, start, end)) {
            return id;
        }
        let r = self.nodes[a.0].value.rows();
        assert!(
            start <= end && end <= self.nodes[a.0].value.cols(),
            "column slice out of bounds"
        );
        let mut v = self.pool.take_uninit(r, end - start);
        {
            let x = &self.nodes[a.0].value;
            for row in 0..r {
                v.row_mut(row).copy_from_slice(&x.row(row)[start..end]);
            }
        }
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Vertically stacks the given nodes.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        // Replay match without materializing an `Op` (avoids a
        // per-step `Vec` allocation for the parts list).
        if let PlanCtl::Replay(r) = &mut self.plan {
            let matched = r.cursor < self.nodes.len()
                && match &self.nodes[r.cursor].op {
                    Op::ConcatRows(rec) => rec.as_slice() == parts,
                    _ => false,
                };
            if matched {
                r.cursor += 1;
                return VarId(r.cursor - 1);
            }
            self.invalidate_replay();
        }
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.nodes[parts[0].0].value.cols();
        let total: usize = parts
            .iter()
            .map(|p| {
                let m = &self.nodes[p.0].value;
                assert_eq!(m.cols(), cols, "concat_rows column mismatch");
                m.rows()
            })
            .sum();
        let mut v = self.pool.take_uninit(total, cols);
        {
            let mut offset = 0;
            for p in parts {
                let m = &self.nodes[p.0].value;
                for row in 0..m.rows() {
                    v.row_mut(offset + row).copy_from_slice(m.row(row));
                }
                offset += m.rows();
            }
        }
        self.push(v, Op::ConcatRows(parts.to_vec()))
    }

    /// Rows `[start, end)` of `a`.
    pub fn slice_rows(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        if let Some(id) = self.replay_op(&Op::SliceRows(a, start, end)) {
            return id;
        }
        assert!(
            start <= end && end <= self.nodes[a.0].value.rows(),
            "row slice out of bounds"
        );
        let cols = self.nodes[a.0].value.cols();
        let mut v = self.pool.take_uninit(end - start, cols);
        {
            let x = &self.nodes[a.0].value;
            for row in start..end {
                v.row_mut(row - start).copy_from_slice(x.row(row));
            }
        }
        self.push(v, Op::SliceRows(a, start, end))
    }

    /// Unfolds a `(T, C)` sequence into `(T, K*C)` same-padded
    /// receptive fields; `matmul` with a `(K*C, C_out)` weight then
    /// realizes a 1-D convolution.
    pub fn im2col(&mut self, a: VarId, kernel: usize) -> VarId {
        if let Some(id) = self.replay_op(&Op::Im2Col(a, kernel)) {
            return id;
        }
        assert!(
            kernel % 2 == 1,
            "im2col expects an odd kernel for same padding"
        );
        let (t_len, c) = self.nodes[a.0].value.shape();
        let half = kernel / 2;
        let mut v = self.pool.take_zeroed(t_len, kernel * c);
        {
            let x = &self.nodes[a.0].value;
            for row in 0..t_len {
                for k in 0..kernel {
                    let src = row as isize + k as isize - half as isize;
                    if src < 0 || src >= t_len as isize {
                        continue;
                    }
                    let src_row = x.row(src as usize);
                    v.row_mut(row)[k * c..(k + 1) * c].copy_from_slice(src_row);
                }
            }
        }
        self.push(v, Op::Im2Col(a, kernel))
    }

    /// Row-wise mean: `(R, C) -> (R, 1)`.
    pub fn row_mean(&mut self, a: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::RowMean(a)) {
            return id;
        }
        let (r, c) = self.nodes[a.0].value.shape();
        let inv = 1.0 / c as f64;
        let mut v = self.pool.take_uninit(r, 1);
        {
            let x = &self.nodes[a.0].value;
            for row in 0..r {
                v.row_mut(row)[0] = x.row(row).iter().sum::<f64>() * inv;
            }
        }
        self.push(v, Op::RowMean(a))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        if let Some(id) = self.replay_op(&Op::Transpose(a)) {
            return id;
        }
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.take_uninit(c, r);
        {
            let x = &self.nodes[a.0].value;
            for row in 0..r {
                for col in 0..c {
                    v[(col, row)] = x[(row, col)];
                }
            }
        }
        self.push(v, Op::Transpose(a))
    }

    // ---- fused ops ---------------------------------------------------

    /// Fused affine map `x W + b` (matmul plus row-broadcast bias) as
    /// a single node. Bit-identical to `add_row_broadcast(matmul(x,
    /// w), b)` while recording one node instead of two.
    pub fn affine(&mut self, x: VarId, w: VarId, b: VarId) -> VarId {
        self.affine_act(x, w, b, FusedAct::Identity)
    }

    /// Fused `act(x W + b)` — a whole Linear layer in one node.
    pub fn affine_act(&mut self, x: VarId, w: VarId, b: VarId, act: FusedAct) -> VarId {
        if let Some(id) = self.replay_op(&Op::Affine { x, w, b, act }) {
            return id;
        }
        let m = self.nodes[x.0].value.rows();
        let n = self.nodes[w.0].value.cols();
        let mut v = self.pool.take_zeroed(m, n);
        self.nodes[x.0]
            .value
            .matmul_acc_into(&self.nodes[w.0].value, &mut v);
        v.add_row_broadcast_assign(&self.nodes[b.0].value);
        act.apply(&mut v);
        self.push(v, Op::Affine { x, w, b, act })
    }

    /// Fused `act(x W + h U + b)` — the recurrent-gate shape shared by
    /// every GRU and LSTM gate, recorded as a single node.
    pub fn affine2_act(
        &mut self,
        x: VarId,
        w: VarId,
        h: VarId,
        u: VarId,
        b: VarId,
        act: FusedAct,
    ) -> VarId {
        if let Some(id) = self.replay_op(&Op::Affine2 { x, w, h, u, b, act }) {
            return id;
        }
        let m = self.nodes[x.0].value.rows();
        let n = self.nodes[w.0].value.cols();
        assert_eq!(
            self.nodes[h.0].value.rows(),
            m,
            "affine2_act: x and h row mismatch"
        );
        let mut v = self.pool.take_zeroed(m, n);
        self.nodes[x.0]
            .value
            .matmul_acc_into(&self.nodes[w.0].value, &mut v);
        // h U is accumulated into a separate buffer then added, which
        // keeps the summation order identical to the unfused graph
        // (`add(matmul(x, w), matmul(h, u))`).
        let mut hu = self.pool.take_zeroed(m, n);
        self.nodes[h.0]
            .value
            .matmul_acc_into(&self.nodes[u.0].value, &mut hu);
        v.add_assign(&hu);
        self.pool.put(hu);
        v.add_row_broadcast_assign(&self.nodes[b.0].value);
        act.apply(&mut v);
        self.push(v, Op::Affine2 { x, w, h, u, b, act })
    }

    // ---- backward ----------------------------------------------------

    /// Runs reverse-mode accumulation from `loss`, which must be a
    /// `1 x 1` node. Gradients are then readable via [`Tape::grad_ref`]
    /// (borrowing) or [`Tape::grad`] (copying).
    ///
    /// Gradient accumulators are pooled buffers, and every op's
    /// backward either writes its delta into a pooled temporary and
    /// folds it in with `add_assign`, or — for the matmul family —
    /// accumulates directly into the target buffer via the
    /// `*_acc_into` kernels. No per-node `grad + delta` temporaries
    /// are materialized.
    pub fn backward(&mut self, loss: VarId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss node"
        );
        if let PlanCtl::Replay(r) = &mut self.plan {
            if r.cursor == self.nodes.len() {
                // The whole step matched the captured structure: run
                // the compiled forward (fused, preresolved slots) and
                // the compiled backward (preresolved grad slots).
                let Tape {
                    nodes,
                    grads,
                    pool,
                    plan: PlanCtl::Replay(r),
                    ..
                } = self
                else {
                    unreachable!("checked replay state above");
                };
                r.execute(nodes, grads, pool, loss.0);
                self.replays += 1;
                if tsgb_obs::enabled() {
                    tsgb_obs::counter_add("nn.plan.replays", 1);
                }
                return;
            }
            // The step re-declared fewer ops than captured: the graph
            // shrank. Fall back to the interpreter for this step.
            self.invalidate_replay();
        }
        let n = self.nodes.len();
        // Retire the previous sweep's accumulators (repeated backward
        // without reset is allowed) and start from all-None.
        for g in self.grads.drain(..).flatten() {
            self.pool.put(g);
        }
        self.grads.resize_with(n, || None);

        let Tape { nodes, grads, pool, .. } = self;
        let mut seed = pool.take_uninit(1, 1);
        seed.fill(1.0);
        grads[loss.0] = Some(seed);

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &nodes[i].op {
                Op::Leaf(_) => {}
                Op::Detach(_) => {}
                Op::Add(a, b) => {
                    Self::acc_ref(grads, nodes, pool, *a, &g);
                    Self::acc_ref(grads, nodes, pool, *b, &g);
                }
                Op::Sub(a, b) => {
                    Self::acc_ref(grads, nodes, pool, *a, &g);
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.map_into(|x| -x, &mut d);
                    Self::acc(grads, nodes, pool, *b, d);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let mut da = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[b.0].value, |gi, bi| gi * bi, &mut da);
                    Self::acc(grads, nodes, pool, a, da);
                    let mut db = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[a.0].value, |gi, ai| gi * ai, &mut db);
                    Self::acc(grads, nodes, pool, b, db);
                }
                Op::Neg(a) => {
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.map_into(|x| -x, &mut d);
                    Self::acc(grads, nodes, pool, *a, d);
                }
                Op::Scale(a, s) => {
                    let s = *s;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.map_into(|x| x * s, &mut d);
                    Self::acc(grads, nodes, pool, *a, d);
                }
                Op::AddScalar(a, _) => Self::acc_ref(grads, nodes, pool, *a, &g),
                Op::Matmul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    g.matmul_t_acc_into(&nodes[b.0].value, ga);
                    let gb = Self::grad_slot(grads, nodes, pool, b);
                    nodes[a.0].value.t_matmul_acc_into(&g, gb);
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, |gi, yi| gi * yi * (1.0 - yi), &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, |gi, yi| gi * (1.0 - yi * yi), &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Relu(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(
                        &nodes[a.0].value,
                        |gi, xi| if xi > 0.0 { gi } else { 0.0 },
                        &mut d,
                    );
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::LeakyRelu(a, slope) => {
                    let (a, slope) = (*a, *slope);
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(
                        &nodes[a.0].value,
                        |gi, xi| if xi >= 0.0 { gi } else { slope * gi },
                        &mut d,
                    );
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Exp(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, |gi, yi| gi * yi, &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Ln(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[a.0].value, |gi, xi| gi / xi, &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Square(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[a.0].value, |gi, xi| 2.0 * xi * gi, &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Abs(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(
                        &nodes[a.0].value,
                        |gi, xi| gi * xi.signum() * (xi != 0.0) as u8 as f64,
                        &mut d,
                    );
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Softplus(a) => {
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(
                        &nodes[a.0].value,
                        |gi, xi| gi / (1.0 + (-xi).exp()),
                        &mut d,
                    );
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Recip(a) => {
                    // d(1/x)/dx = -1/x^2 = -y^2
                    let a = *a;
                    let mut d = pool.take_uninit(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, |gi, yi| -gi * yi * yi, &mut d);
                    Self::acc(grads, nodes, pool, a, d);
                }
                Op::Sum(a) => {
                    let a = *a;
                    let g00 = g[(0, 0)];
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    ga.map_inplace(|v| v + g00);
                }
                Op::Mean(a) => {
                    let a = *a;
                    let (r, c) = nodes[a.0].value.shape();
                    let gm = g[(0, 0)] / (r * c) as f64;
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    ga.map_inplace(|v| v + gm);
                }
                Op::AddRowBroadcast(a, row) => {
                    let (a, row) = (*a, *row);
                    Self::acc_ref(grads, nodes, pool, a, &g);
                    // bias grad: column sums of g
                    let gr = Self::grad_slot(grads, nodes, pool, row);
                    g.col_sums_acc_into(gr);
                }
                Op::MulRowBroadcast(a, row) => {
                    let (a, row) = (*a, *row);
                    let mut da = pool.take_uninit(g.rows(), g.cols());
                    {
                        let rv = &nodes[row.0].value;
                        for r in 0..g.rows() {
                            for (o, (&gi, &sv)) in da
                                .row_mut(r)
                                .iter_mut()
                                .zip(g.row(r).iter().zip(rv.row(0)))
                            {
                                *o = gi * sv;
                            }
                        }
                    }
                    Self::acc(grads, nodes, pool, a, da);
                    let x_id = a;
                    let grow = Self::grad_slot(grads, nodes, pool, row);
                    let x = &nodes[x_id.0].value;
                    for r in 0..g.rows() {
                        for (o, (&gi, &xi)) in grow
                            .row_mut(0)
                            .iter_mut()
                            .zip(g.row(r).iter().zip(x.row(r)))
                        {
                            *o += gi * xi;
                        }
                    }
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let ca = nodes[a.0].value.cols();
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for r in 0..g.rows() {
                        for (o, &v) in ga.row_mut(r).iter_mut().zip(&g.row(r)[..ca]) {
                            *o += v;
                        }
                    }
                    let gb = Self::grad_slot(grads, nodes, pool, b);
                    for r in 0..g.rows() {
                        for (o, &v) in gb.row_mut(r).iter_mut().zip(&g.row(r)[ca..]) {
                            *o += v;
                        }
                    }
                }
                Op::SliceCols(a, start, end) => {
                    let (a, start, end) = (*a, *start, *end);
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for r in 0..g.rows() {
                        for (o, &v) in ga.row_mut(r)[start..end].iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                }
                Op::ConcatRows(parts) => {
                    let parts = parts.clone();
                    let mut offset = 0;
                    for p in parts {
                        let rows = nodes[p.0].value.rows();
                        let gp = Self::grad_slot(grads, nodes, pool, p);
                        for r in 0..rows {
                            for (o, &v) in gp.row_mut(r).iter_mut().zip(g.row(offset + r)) {
                                *o += v;
                            }
                        }
                        offset += rows;
                    }
                }
                Op::SliceRows(a, start, _end) => {
                    let (a, start) = (*a, *start);
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for r in 0..g.rows() {
                        for (o, &v) in ga.row_mut(start + r).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                }
                Op::Im2Col(a, kernel) => {
                    let (a, kernel) = (*a, *kernel);
                    let (t_len, c) = nodes[a.0].value.shape();
                    let half = kernel / 2;
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for row in 0..t_len {
                        for k in 0..kernel {
                            let src = row as isize + k as isize - half as isize;
                            if src < 0 || src >= t_len as isize {
                                continue;
                            }
                            let gs = &g.row(row)[k * c..(k + 1) * c];
                            for (o, &v) in ga.row_mut(src as usize).iter_mut().zip(gs) {
                                *o += v;
                            }
                        }
                    }
                }
                Op::RowMean(a) => {
                    let a = *a;
                    let (r, c) = nodes[a.0].value.shape();
                    let inv = 1.0 / c as f64;
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for row in 0..r {
                        let gv = g[(row, 0)] * inv;
                        for o in ga.row_mut(row) {
                            *o += gv;
                        }
                    }
                }
                Op::Transpose(a) => {
                    let a = *a;
                    let ga = Self::grad_slot(grads, nodes, pool, a);
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            ga[(c, r)] += g[(r, c)];
                        }
                    }
                }
                Op::Affine { x, w, b, act } => {
                    let (x, w, b, act) = (*x, *w, *b, *act);
                    let dz_buf = if act == FusedAct::Identity {
                        None
                    } else {
                        let mut d = pool.take_uninit(g.rows(), g.cols());
                        act.dz_into(&g, &nodes[i].value, &mut d);
                        Some(d)
                    };
                    let dz = dz_buf.as_ref().unwrap_or(&g);
                    {
                        let gx = Self::grad_slot(grads, nodes, pool, x);
                        dz.matmul_t_acc_into(&nodes[w.0].value, gx);
                    }
                    {
                        let gw = Self::grad_slot(grads, nodes, pool, w);
                        nodes[x.0].value.t_matmul_acc_into(dz, gw);
                    }
                    {
                        let gb = Self::grad_slot(grads, nodes, pool, b);
                        dz.col_sums_acc_into(gb);
                    }
                    if let Some(d) = dz_buf {
                        pool.put(d);
                    }
                }
                Op::Affine2 { x, w, h, u, b, act } => {
                    let (x, w, h, u, b, act) = (*x, *w, *h, *u, *b, *act);
                    let dz_buf = if act == FusedAct::Identity {
                        None
                    } else {
                        let mut d = pool.take_uninit(g.rows(), g.cols());
                        act.dz_into(&g, &nodes[i].value, &mut d);
                        Some(d)
                    };
                    let dz = dz_buf.as_ref().unwrap_or(&g);
                    {
                        let gx = Self::grad_slot(grads, nodes, pool, x);
                        dz.matmul_t_acc_into(&nodes[w.0].value, gx);
                    }
                    {
                        let gw = Self::grad_slot(grads, nodes, pool, w);
                        nodes[x.0].value.t_matmul_acc_into(dz, gw);
                    }
                    {
                        let gh = Self::grad_slot(grads, nodes, pool, h);
                        dz.matmul_t_acc_into(&nodes[u.0].value, gh);
                    }
                    {
                        let gu = Self::grad_slot(grads, nodes, pool, u);
                        nodes[h.0].value.t_matmul_acc_into(dz, gu);
                    }
                    {
                        let gb = Self::grad_slot(grads, nodes, pool, b);
                        dz.col_sums_acc_into(gb);
                    }
                    if let Some(d) = dz_buf {
                        pool.put(d);
                    }
                }
            }
            grads[i] = Some(g);
        }
    }

    /// Folds an owned delta into the accumulator of `id`: installs it
    /// when the slot is empty, otherwise adds in place and retires the
    /// delta's buffer back to the pool.
    fn acc(
        grads: &mut [Option<Matrix>],
        nodes: &[Node],
        pool: &mut MatrixPool,
        id: VarId,
        delta: Matrix,
    ) {
        debug_assert_eq!(
            nodes[id.0].value.shape(),
            delta.shape(),
            "gradient shape mismatch for node {id:?}"
        );
        match &mut grads[id.0] {
            Some(g) => {
                g.add_assign(&delta);
                pool.put(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    /// Folds a borrowed delta into the accumulator of `id` without
    /// copying when the slot already exists.
    fn acc_ref(
        grads: &mut [Option<Matrix>],
        nodes: &[Node],
        pool: &mut MatrixPool,
        id: VarId,
        delta: &Matrix,
    ) {
        debug_assert_eq!(
            nodes[id.0].value.shape(),
            delta.shape(),
            "gradient shape mismatch for node {id:?}"
        );
        match &mut grads[id.0] {
            Some(g) => g.add_assign(delta),
            slot @ None => *slot = Some(pool.take_copy(delta)),
        }
    }

    /// The gradient accumulator of `id`, created zeroed (from the
    /// pool) on first touch — the target of the in-place `*_acc_into`
    /// backward kernels.
    fn grad_slot<'g>(
        grads: &'g mut [Option<Matrix>],
        nodes: &[Node],
        pool: &mut MatrixPool,
        id: VarId,
    ) -> &'g mut Matrix {
        let (r, c) = nodes[id.0].value.shape();
        grads[id.0].get_or_insert_with(|| pool.take_zeroed(r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(t: &mut Tape, v: f64) -> VarId {
        t.leaf(Matrix::full(1, 1, v))
    }

    #[test]
    fn product_rule() {
        let mut t = Tape::new();
        let a = scalar(&mut t, 3.0);
        let b = scalar(&mut t, 4.0);
        let y = t.mul(a, b);
        t.backward(y);
        assert_eq!(t.grad(a)[(0, 0)], 4.0);
        assert_eq!(t.grad(b)[(0, 0)], 3.0);
    }

    #[test]
    fn chain_rule_through_square_and_mean() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap());
        let sq = t.square(x);
        let m = t.mean(sq);
        t.backward(m);
        // d mean(x^2)/dx = 2x / 3
        let g = t.grad(x);
        for (xi, gi) in [1.0, 2.0, 3.0].iter().zip(g.as_slice()) {
            assert!((gi - 2.0 * xi / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap());
        let b = t.leaf(Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]).unwrap());
        let y = t.matmul(a, b);
        let s = t.sum(y);
        t.backward(s);
        // dS/dA = ones(2,2) * B^T, dS/dB = A^T * ones(2,2)
        let ones = Matrix::full(2, 2, 1.0);
        let expect_a = ones.matmul_t(t.value(b));
        let expect_b = t.value(a).t_matmul(&ones);
        assert_eq!(t.grad(a), expect_a);
        assert_eq!(t.grad(b), expect_b);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        let mut t = Tape::new();
        let x = scalar(&mut t, 2.0);
        let y = t.mul(x, x); // x^2
        t.backward(y);
        assert_eq!(t.grad(x)[(0, 0)], 4.0); // 2x
    }

    #[test]
    fn unused_nodes_have_zero_grad() {
        let mut t = Tape::new();
        let x = scalar(&mut t, 2.0);
        let z = scalar(&mut t, 5.0);
        let y = t.square(x);
        t.backward(y);
        assert_eq!(t.grad(z)[(0, 0)], 0.0);
        assert!(t.grad_ref(z).is_none(), "uninfluential node has no slot");
        assert!(t.grad_ref(x).is_some());
    }

    #[test]
    fn concat_and_slice_route_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap());
        let b = t.leaf(Matrix::from_vec(2, 1, vec![5., 6.]).unwrap());
        let cat = t.concat_cols(a, b);
        let right = t.slice_cols(cat, 2, 3); // just b
        let s = t.sum(right);
        t.backward(s);
        assert_eq!(t.grad(b), Matrix::full(2, 1, 1.0));
        assert_eq!(t.grad(a), Matrix::zeros(2, 2));
    }

    #[test]
    fn concat_rows_roundtrip_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::full(1, 2, 1.0));
        let b = t.leaf(Matrix::full(2, 2, 2.0));
        let cat = t.concat_rows(&[a, b]);
        let sl = t.slice_rows(cat, 1, 3);
        let s = t.sum(sl);
        t.backward(s);
        assert_eq!(t.grad(a), Matrix::zeros(1, 2));
        assert_eq!(t.grad(b), Matrix::full(2, 2, 1.0));
    }

    #[test]
    fn softplus_grad_is_sigmoid() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![-2.0, 0.0, 2.0]).unwrap());
        let sp = t.softplus(x);
        let s = t.sum(sp);
        t.backward(s);
        for (xi, gi) in [-2.0f64, 0.0, 2.0].iter().zip(t.grad(x).as_slice()) {
            let sig = 1.0 / (1.0 + (-xi).exp());
            assert!((gi - sig).abs() < 1e-12);
        }
    }

    #[test]
    fn im2col_forward_layout() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap());
        let u = t.im2col(x, 3);
        // row 0: [pad, x0, x1] = [0, 1, 2]
        assert_eq!(t.value(u).row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(t.value(u).row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(t.value(u).row(2), &[2.0, 3.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "scalar (1x1) loss")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        t.backward(x);
    }

    #[test]
    fn affine_matches_unfused_graph_bitwise() {
        let x_m = Matrix::from_fn(3, 4, |r, c| (r as f64 + 1.0) * 0.3 - c as f64 * 0.7);
        let w_m = Matrix::from_fn(4, 2, |r, c| (r as f64 - 1.5) * (c as f64 + 0.5) * 0.11);
        let b_m = Matrix::from_vec(1, 2, vec![0.25, -0.75]).unwrap();

        for act in [
            FusedAct::Identity,
            FusedAct::Sigmoid,
            FusedAct::Tanh,
            FusedAct::Relu,
        ] {
            // Unfused reference graph.
            let mut t1 = Tape::new();
            let (x1, w1, b1) = (
                t1.leaf(x_m.clone()),
                t1.leaf(w_m.clone()),
                t1.leaf(b_m.clone()),
            );
            let mm = t1.matmul(x1, w1);
            let aff = t1.add_row_broadcast(mm, b1);
            let y1 = match act {
                FusedAct::Identity => aff,
                FusedAct::Sigmoid => t1.sigmoid(aff),
                FusedAct::Tanh => t1.tanh(aff),
                FusedAct::Relu => t1.relu(aff),
            };
            let l1 = t1.sum(y1);
            t1.backward(l1);

            // Fused graph.
            let mut t2 = Tape::new();
            let (x2, w2, b2) = (
                t2.leaf(x_m.clone()),
                t2.leaf(w_m.clone()),
                t2.leaf(b_m.clone()),
            );
            let y2 = t2.affine_act(x2, w2, b2, act);
            let l2 = t2.sum(y2);
            t2.backward(l2);

            assert_eq!(t1.value(y1), t2.value(y2), "{act:?} forward");
            assert_eq!(t1.grad(x1), t2.grad(x2), "{act:?} dx");
            assert_eq!(t1.grad(w1), t2.grad(w2), "{act:?} dw");
            assert_eq!(t1.grad(b1), t2.grad(b2), "{act:?} db");
        }
    }

    #[test]
    fn affine2_matches_unfused_graph_bitwise() {
        let x_m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 * 0.09 - 0.6);
        let w_m = Matrix::from_fn(4, 2, |r, c| ((r + c) as f64).sin() * 0.5);
        let h_m = Matrix::from_fn(3, 5, |r, c| (r as f64 - c as f64) * 0.21);
        let u_m = Matrix::from_fn(5, 2, |r, c| ((r * 2 + c) as f64).cos() * 0.4);
        let b_m = Matrix::from_vec(1, 2, vec![-0.1, 0.35]).unwrap();

        // Unfused: sigmoid(x W + h U + b), the GRU gate shape.
        let mut t1 = Tape::new();
        let x1 = t1.leaf(x_m.clone());
        let w1 = t1.leaf(w_m.clone());
        let h1 = t1.leaf(h_m.clone());
        let u1 = t1.leaf(u_m.clone());
        let b1 = t1.leaf(b_m.clone());
        let xw = t1.matmul(x1, w1);
        let hu = t1.matmul(h1, u1);
        let s = t1.add(xw, hu);
        let sb = t1.add_row_broadcast(s, b1);
        let y1 = t1.sigmoid(sb);
        let l1 = t1.sum(y1);
        t1.backward(l1);

        let mut t2 = Tape::new();
        let x2 = t2.leaf(x_m.clone());
        let w2 = t2.leaf(w_m.clone());
        let h2 = t2.leaf(h_m.clone());
        let u2 = t2.leaf(u_m.clone());
        let b2 = t2.leaf(b_m.clone());
        let y2 = t2.affine2_act(x2, w2, h2, u2, b2, FusedAct::Sigmoid);
        let l2 = t2.sum(y2);
        t2.backward(l2);

        assert_eq!(t1.value(y1), t2.value(y2), "forward");
        assert_eq!(t1.grad(x1), t2.grad(x2), "dx");
        assert_eq!(t1.grad(w1), t2.grad(w2), "dw");
        assert_eq!(t1.grad(h1), t2.grad(h2), "dh");
        assert_eq!(t1.grad(u1), t2.grad(u2), "du");
        assert_eq!(t1.grad(b1), t2.grad(b2), "db");
    }

    #[test]
    fn recycled_tape_is_bit_identical_and_allocation_free() {
        let x_m = Matrix::from_fn(4, 3, |r, c| (r as f64).sin() + c as f64 * 0.3);
        let w_m = Matrix::from_fn(3, 3, |r, c| ((r * 3 + c) as f64 * 0.17).cos());
        let b_m = Matrix::from_fn(1, 3, |_, c| c as f64 * 0.05 - 0.1);

        let run = |t: &mut Tape| {
            let x = t.leaf_copy(&x_m);
            let w = t.leaf_copy(&w_m);
            let b = t.leaf_copy(&b_m);
            let y = t.affine_act(x, w, b, FusedAct::Tanh);
            let sq = t.square(y);
            let l = t.mean(sq);
            t.backward(l);
            (t.value(l)[(0, 0)], t.grad(w), t.grad(b))
        };

        // Fresh tape reference.
        let mut fresh = Tape::new();
        let (l_ref, gw_ref, gb_ref) = run(&mut fresh);

        // Recycled tape: run, reset, run again — identical results.
        let mut t = Tape::new();
        let _ = run(&mut t);
        let warm_misses = t.pool_misses();
        for _ in 0..3 {
            t.reset();
            let (l, gw, gb) = run(&mut t);
            assert_eq!(l.to_bits(), l_ref.to_bits());
            assert_eq!(gw, gw_ref);
            assert_eq!(gb, gb_ref);
        }
        assert_eq!(
            t.pool_misses(),
            warm_misses,
            "steady-state recycled reruns must not allocate fresh buffers"
        );
    }

    #[test]
    fn repeated_backward_without_reset_is_stable() {
        let mut t = Tape::new();
        let x = scalar(&mut t, 2.0);
        let y = t.square(x);
        t.backward(y);
        assert_eq!(t.grad(x)[(0, 0)], 4.0);
        t.backward(y);
        assert_eq!(t.grad(x)[(0, 0)], 4.0, "second sweep must not double");
    }
}
