//! Parameter persistence — save and restore a trained [`Params`]
//! store so a downstream user can train once and generate many times.
//!
//! The format is a tiny self-describing binary layout (no external
//! serializer): a magic header, the parameter count, then per
//! parameter the name (length-prefixed UTF-8), the shape, and the
//! little-endian values. Optimizer moments are deliberately not
//! persisted: a restored model is for inference or fresh fine-tuning.
//!
//! Two value widths share the layout: `TSGBNN01` blobs store `f64`
//! values (the bit-exact default) and `TSGBNN02` blobs store `f32`
//! (the reduced-precision serve tier — half the bytes). Only the
//! per-value width differs; names, counts and shapes are identical.
//! [`restore`] accepts both, widening `f32` values on read;
//! [`transcode_f32`] demotes an existing `f64` blob without needing
//! the model that produced it.

use crate::params::{ParamId, Params};
use std::fmt;
use tsgb_linalg::Matrix;

const MAGIC: &[u8; 8] = b"TSGBNN01";
const MAGIC_F32: &[u8; 8] = b"TSGBNN02";

/// Errors from decoding a parameter snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// A name was not valid UTF-8.
    BadName,
    /// Restoring into a store whose structure does not match.
    StructureMismatch {
        /// Human-readable description of the first mismatch.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a TSGBench parameter snapshot"),
            PersistError::Truncated => write!(f, "snapshot is truncated"),
            PersistError::BadName => write!(f, "snapshot contains an invalid name"),
            PersistError::StructureMismatch { detail } => {
                write!(f, "snapshot does not match the model: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Serializes every parameter (values only) into a byte buffer.
pub fn save(params: &Params) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for id in params.ids() {
        let name = params.name(id).as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        let v = params.value(id);
        out.extend_from_slice(&(v.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(v.cols() as u32).to_le_bytes());
        for &x in v.as_slice() {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.pos + n > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("size")))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("size")))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("size")))
    }

    fn f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("size")))
    }

    /// One stored value at the blob's width, widened to `f64`.
    fn value(&mut self, wide: bool) -> Result<f64, PersistError> {
        if wide {
            self.f64()
        } else {
            Ok(f64::from(self.f32()?))
        }
    }
}

/// Rewrites a `TSGBNN01` blob as `TSGBNN02` with every value demoted
/// to `f32` (round-to-nearest). Structure — names, count, shapes — is
/// preserved byte for byte; a `TSGBNN02` input is returned unchanged.
pub fn transcode_f32(bytes: &[u8]) -> Result<Vec<u8>, PersistError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    match r.take(8)? {
        m if m == MAGIC_F32 => return Ok(bytes.to_vec()),
        m if m == MAGIC => {}
        _ => return Err(PersistError::BadMagic),
    }
    let mut out = Vec::with_capacity(bytes.len() / 2 + 64);
    out.extend_from_slice(MAGIC_F32);
    let count = r.u64()?;
    out.extend_from_slice(&count.to_le_bytes());
    for _ in 0..count {
        let name_len = r.u32()? as usize;
        out.extend_from_slice(&(name_len as u32).to_le_bytes());
        let name = r.take(name_len)?;
        std::str::from_utf8(name).map_err(|_| PersistError::BadName)?;
        out.extend_from_slice(name);
        let rows = r.u32()?;
        let cols = r.u32()?;
        out.extend_from_slice(&rows.to_le_bytes());
        out.extend_from_slice(&cols.to_le_bytes());
        for _ in 0..(rows as usize) * (cols as usize) {
            out.extend_from_slice(&(r.f64()? as f32).to_le_bytes());
        }
    }
    if r.pos != bytes.len() {
        return Err(PersistError::StructureMismatch {
            detail: format!("blob has {} unread trailing bytes", bytes.len() - r.pos),
        });
    }
    Ok(out)
}

/// Restores a snapshot into an existing store built with the *same
/// architecture* (same registration order, names and shapes). Values
/// are overwritten; optimizer moments are untouched. `TSGBNN02`
/// (`f32`) blobs are widened on read, so the restored store is a
/// regular `f64` model whose values happen to be `f32`-representable.
pub fn restore(params: &mut Params, bytes: &[u8]) -> Result<(), PersistError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let wide = match r.take(8)? {
        m if m == MAGIC => true,
        m if m == MAGIC_F32 => false,
        _ => return Err(PersistError::BadMagic),
    };
    let count = r.u64()? as usize;
    if count != params.len() {
        return Err(PersistError::StructureMismatch {
            detail: format!(
                "snapshot has {count} parameters, model has {}",
                params.len()
            ),
        });
    }
    let ids: Vec<ParamId> = params.ids().collect();
    for id in ids {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?).map_err(|_| PersistError::BadName)?;
        if name != params.name(id) {
            return Err(PersistError::StructureMismatch {
                detail: format!(
                    "expected parameter {:?}, snapshot has {name:?}",
                    params.name(id)
                ),
            });
        }
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let (er, ec) = params.value(id).shape();
        if (rows, cols) != (er, ec) {
            return Err(PersistError::StructureMismatch {
                detail: format!("{name}: shape {rows}x{cols} vs model {er}x{ec}"),
            });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(r.value(wide)?);
        }
        params.set_value(
            id,
            Matrix::from_vec(rows, cols, data).expect("validated shape"),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use tsgb_linalg::rng::seeded;

    fn model(seed: u64) -> Params {
        let mut rng = seeded(seed);
        let mut p = Params::new();
        let _ = Linear::new(&mut p, "a", 3, 4, &mut rng);
        let _ = Linear::new(&mut p, "b", 4, 2, &mut rng);
        p
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let src = model(1);
        let bytes = save(&src);
        let mut dst = model(2); // same structure, different values
        restore(&mut dst, &bytes).unwrap();
        for (i, id) in src.ids().enumerate() {
            let did = dst.ids().nth(i).unwrap();
            assert_eq!(src.value(id), dst.value(did));
        }
    }

    #[test]
    fn f32_transcode_roundtrips_at_reduced_precision() {
        let src = model(8);
        let wide = save(&src);
        let narrow = transcode_f32(&wide).unwrap();
        assert!(narrow.len() < wide.len(), "f32 blob must shrink");
        // idempotent on an already-narrow blob
        assert_eq!(transcode_f32(&narrow).unwrap(), narrow);
        let mut dst = model(9);
        restore(&mut dst, &narrow).unwrap();
        for (i, id) in src.ids().enumerate() {
            let did = dst.ids().nth(i).unwrap();
            let got = dst.value(did).as_slice();
            let want = src.value(id).as_slice();
            for (g, w) in got.iter().zip(want) {
                assert_eq!(*g, f64::from(*w as f32), "value must be f32-rounded");
            }
        }
    }

    #[test]
    fn f32_transcode_rejects_garbage() {
        assert_eq!(transcode_f32(b"NOTMAGIC...."), Err(PersistError::BadMagic));
        let mut blob = save(&model(10));
        blob.push(0);
        assert!(matches!(
            transcode_f32(&blob),
            Err(PersistError::StructureMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut dst = model(3);
        assert_eq!(
            restore(&mut dst, b"NOTMAGIC........"),
            Err(PersistError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected() {
        let src = model(4);
        let bytes = save(&src);
        let mut dst = model(5);
        let err = restore(&mut dst, &bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err, PersistError::Truncated);
    }

    #[test]
    fn structure_mismatch_rejected() {
        let src = model(6);
        let bytes = save(&src);
        let mut rng = seeded(7);
        let mut other = Params::new();
        let _ = Linear::new(&mut other, "a", 3, 4, &mut rng);
        let err = restore(&mut other, &bytes).unwrap_err();
        assert!(matches!(err, PersistError::StructureMismatch { .. }));
        assert!(err.to_string().contains("parameters"));

        // same count, different shape
        let mut other2 = Params::new();
        let _ = Linear::new(&mut other2, "a", 3, 4, &mut rng);
        let _ = Linear::new(&mut other2, "b", 5, 2, &mut rng);
        let err2 = restore(&mut other2, &bytes).unwrap_err();
        assert!(matches!(err2, PersistError::StructureMismatch { .. }));
    }
}
