//! Named parameter storage, decoupled from the per-minibatch tape.
//!
//! A [`Params`] store owns every trainable matrix of a model plus the
//! optimizer state attached to it (Adam moments live here so the tape
//! can be rebuilt freely). Each training step:
//!
//! 1. [`Params::bind`] injects every parameter into a fresh tape as a
//!    leaf, returning a [`Binding`];
//! 2. the model's forward pass reads parameter `VarId`s through the
//!    binding;
//! 3. after `backward`, [`Params::absorb_grads`] copies the tape's
//!    gradients back into the store where the optimizer finds them.

use crate::tape::{Tape, VarId};
use tsgb_linalg::Matrix;

/// Index of a parameter within its [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

pub(crate) struct Entry {
    pub name: String,
    pub value: Matrix,
    pub grad: Matrix,
    /// First Adam moment.
    pub m: Matrix,
    /// Second Adam moment.
    pub v: Matrix,
}

/// A store of named trainable parameters with attached optimizer state.
#[derive(Default)]
pub struct Params {
    pub(crate) entries: Vec<Entry>,
}

/// Maps [`ParamId`]s to the [`VarId`]s of one particular tape.
pub struct Binding {
    vars: Vec<VarId>,
}

impl Binding {
    /// The tape node holding parameter `id`.
    pub fn var(&self, id: ParamId) -> VarId {
        self.vars[id.0]
    }
}

impl Params {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value; `name` is used in
    /// diagnostics and gradient-check reports.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.entries.push(Entry {
            name: name.into(),
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Parameter name (for diagnostics).
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].value
    }

    /// Overwrites a parameter value (used by gradient checking and by
    /// weight clipping in WGAN critics).
    pub fn set_value(&mut self, id: ParamId, value: Matrix) {
        assert_eq!(
            self.entries[id.0].value.shape(),
            value.shape(),
            "set_value shape mismatch for {}",
            self.entries[id.0].name
        );
        self.entries[id.0].value = value;
    }

    /// Gradient accumulated by the last [`Params::absorb_grads`].
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].grad
    }

    /// Injects every parameter into `tape` as a leaf (a pooled copy of
    /// the current value) and returns the binding table.
    pub fn bind(&self, tape: &mut Tape) -> Binding {
        let vars = self
            .entries
            .iter()
            .map(|e| tape.leaf_copy(&e.value))
            .collect();
        Binding { vars }
    }

    /// Like [`Params::bind`] but reusing a previous step's [`Binding`]
    /// table, so a recycled tape's rebind allocates nothing at all.
    pub fn rebind(&self, tape: &mut Tape, binding: &mut Binding) {
        binding.vars.clear();
        binding
            .vars
            .extend(self.entries.iter().map(|e| tape.leaf_copy(&e.value)));
    }

    /// Copies the tape gradients of every bound parameter into the
    /// store, replacing previous gradients. Reuses the stored gradient
    /// buffers — no allocation.
    pub fn absorb_grads(&mut self, tape: &Tape, binding: &Binding) {
        for (entry, &var) in self.entries.iter_mut().zip(&binding.vars) {
            match tape.grad_ref(var) {
                Some(g) => entry.grad.copy_from(g),
                None => entry.grad.fill(0.0),
            }
        }
    }

    /// Adds the tape gradients into the store (for multi-loss steps
    /// that accumulate before one optimizer update).
    pub fn accumulate_grads(&mut self, tape: &Tape, binding: &Binding) {
        for (entry, &var) in self.entries.iter_mut().zip(&binding.vars) {
            if let Some(g) = tape.grad_ref(var) {
                entry.grad.add_assign(g);
            }
        }
    }

    /// Zeroes all stored gradients.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.fill(0.0);
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.grad.as_slice().iter().map(|g| g * g).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        // The norm is already computed for clipping, so observing it
        // costs nothing extra (and nothing while recording is off).
        tsgb_obs::observe("nn.grad_norm", norm);
        if norm > max_norm && norm > 0.0 {
            tsgb_obs::counter_add("nn.grad_clip.events", 1);
            let s = max_norm / norm;
            for e in &mut self.entries {
                e.grad.map_inplace(|g| g * s);
            }
        }
    }

    /// Clamps every parameter value into `[-c, c]` — the WGAN weight
    /// clipping used by the RTSGAN critic.
    pub fn clip_values(&mut self, c: f64) {
        for e in &mut self.entries {
            e.value.map_inplace(|v| v.clamp(-c, c));
        }
    }

    /// Iterates over `(ParamId, name)` pairs.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_absorb_roundtrip() {
        let mut p = Params::new();
        let w = p.register("w", Matrix::full(2, 2, 3.0));
        let mut t = Tape::new();
        let b = p.bind(&mut t);
        let wv = b.var(w);
        let sq = t.square(wv);
        let s = t.sum(sq);
        t.backward(s);
        p.absorb_grads(&t, &b);
        assert_eq!(p.grad(w), &Matrix::full(2, 2, 6.0)); // d sum(w^2) = 2w
    }

    #[test]
    fn accumulate_adds() {
        let mut p = Params::new();
        let w = p.register("w", Matrix::full(1, 1, 1.0));
        for _ in 0..2 {
            let mut t = Tape::new();
            let b = p.bind(&mut t);
            let wv = b.var(w);
            let s = t.sum(wv);
            t.backward(s);
            p.accumulate_grads(&t, &b);
        }
        assert_eq!(p.grad(w)[(0, 0)], 2.0);
        p.zero_grads();
        assert_eq!(p.grad(w)[(0, 0)], 0.0);
    }

    #[test]
    fn clipping_bounds_norm_and_values() {
        let mut p = Params::new();
        let w = p.register("w", Matrix::full(1, 2, 5.0));
        let mut t = Tape::new();
        let b = p.bind(&mut t);
        let wv = b.var(w);
        let sq = t.square(wv);
        let s = t.sum(sq);
        t.backward(s);
        p.absorb_grads(&t, &b);
        p.clip_grad_norm(1.0);
        assert!((p.grad_norm() - 1.0).abs() < 1e-12);
        p.clip_values(0.25);
        assert_eq!(p.value(w), &Matrix::full(1, 2, 0.25));
    }
}
