//! Loss functions composed from tape primitives.
//!
//! Each helper returns a `1 x 1` node ready for `Tape::backward`. The
//! GAN losses follow the formulations of the original methods: the
//! non-saturating generator loss and the standard BCE discriminator
//! loss (RGAN, TimeGAN, COSCI-GAN, AEC-GAN), and the Wasserstein
//! critic objective with weight clipping (RTSGAN's latent critic).

use crate::tape::{Tape, VarId};
use tsgb_linalg::Matrix;

/// Mean squared error between a prediction node and a constant target.
pub fn mse_mean(t: &mut Tape, pred: VarId, target: &Matrix) -> VarId {
    let tgt = t.constant_copy(target);
    let d = t.sub(pred, tgt);
    let sq = t.square(d);
    t.mean(sq)
}

/// Mean absolute error between a prediction node and a constant target.
pub fn mae_mean(t: &mut Tape, pred: VarId, target: &Matrix) -> VarId {
    let tgt = t.constant_copy(target);
    let d = t.sub(pred, tgt);
    let a = t.abs(d);
    t.mean(a)
}

/// Binary cross-entropy with logits against a constant `{0,1}` target:
/// `mean(softplus(x) - x * y)`, the numerically stable form.
pub fn bce_with_logits_mean(t: &mut Tape, logits: VarId, targets: &Matrix) -> VarId {
    let y = t.constant_copy(targets);
    bce_with_logits_node(t, logits, y)
}

/// BCE-with-logits where the target is already on the tape.
fn bce_with_logits_node(t: &mut Tape, logits: VarId, y: VarId) -> VarId {
    let sp = t.softplus(logits);
    let xy = t.mul(logits, y);
    let diff = t.sub(sp, xy);
    t.mean(diff)
}

/// BCE-with-logits against a constant-filled target (0 or 1), built
/// from pooled storage.
fn bce_with_logits_filled(t: &mut Tape, logits: VarId, target: f64) -> VarId {
    let (r, c) = t.shape(logits);
    let y = t.filled(r, c, target);
    bce_with_logits_node(t, logits, y)
}

/// Discriminator loss: real logits toward 1, fake logits toward 0.
pub fn gan_discriminator_loss(t: &mut Tape, real_logits: VarId, fake_logits: VarId) -> VarId {
    let lr = bce_with_logits_filled(t, real_logits, 1.0);
    let lf = bce_with_logits_filled(t, fake_logits, 0.0);
    t.add(lr, lf)
}

/// Non-saturating generator loss: fake logits toward 1.
pub fn gan_generator_loss(t: &mut Tape, fake_logits: VarId) -> VarId {
    bce_with_logits_filled(t, fake_logits, 1.0)
}

/// Wasserstein critic loss `mean(fake) - mean(real)` (minimized by the
/// critic; pair with weight clipping).
pub fn wgan_critic_loss(t: &mut Tape, real_scores: VarId, fake_scores: VarId) -> VarId {
    let mf = t.mean(fake_scores);
    let mr = t.mean(real_scores);
    t.sub(mf, mr)
}

/// Wasserstein generator loss `-mean(fake)`.
pub fn wgan_generator_loss(t: &mut Tape, fake_scores: VarId) -> VarId {
    let mf = t.mean(fake_scores);
    t.neg(mf)
}

/// KL divergence of a diagonal Gaussian `N(mu, exp(logvar))` from the
/// standard normal, averaged over the batch:
/// `-0.5 * mean_batch sum_dim (1 + logvar - mu^2 - exp(logvar))`.
pub fn gaussian_kl_mean(t: &mut Tape, mu: VarId, logvar: VarId) -> VarId {
    let batch = t.shape(mu).0 as f64;
    let mu2 = t.square(mu);
    let ev = t.exp(logvar);
    let one_plus = t.add_scalar(logvar, 1.0);
    let a = t.sub(one_plus, mu2);
    let b = t.sub(a, ev);
    let s = t.sum(b);
    t.scale(s, -0.5 / batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_is_zero() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(2, 3, 0.7));
        let l = mse_mean(&mut t, x, &Matrix::full(2, 3, 0.7));
        assert_eq!(t.value(l)[(0, 0)], 0.0);
    }

    #[test]
    fn mae_known_value() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 2, vec![1.0, -1.0]).unwrap());
        let l = mae_mean(&mut t, x, &Matrix::zeros(1, 2));
        assert_eq!(t.value(l)[(0, 0)], 1.0);
    }

    #[test]
    fn bce_matches_closed_form() {
        let mut t = Tape::new();
        let logits = t.leaf(Matrix::from_vec(1, 2, vec![0.0, 2.0]).unwrap());
        let targets = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let l = bce_with_logits_mean(&mut t, logits, &targets);
        // -log sigma(0) = ln 2; -log(1 - sigma(2)) = softplus(2)
        let expected = (f64::ln(2.0) + (1.0f64 + 2.0f64.exp()).ln()) / 2.0;
        assert!((t.value(l)[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn kl_of_standard_normal_is_zero() {
        let mut t = Tape::new();
        let mu = t.leaf(Matrix::zeros(4, 3));
        let logvar = t.leaf(Matrix::zeros(4, 3));
        let l = gaussian_kl_mean(&mut t, mu, logvar);
        assert!(t.value(l)[(0, 0)].abs() < 1e-12);
    }

    #[test]
    fn kl_positive_otherwise() {
        let mut t = Tape::new();
        let mu = t.leaf(Matrix::full(4, 3, 0.5));
        let logvar = t.leaf(Matrix::full(4, 3, -1.0));
        let l = gaussian_kl_mean(&mut t, mu, logvar);
        assert!(t.value(l)[(0, 0)] > 0.0);
    }

    #[test]
    fn wgan_losses_oppose() {
        let mut t = Tape::new();
        let real = t.leaf(Matrix::full(3, 1, 2.0));
        let fake = t.leaf(Matrix::full(3, 1, -1.0));
        let lc = wgan_critic_loss(&mut t, real, fake);
        let lg = wgan_generator_loss(&mut t, fake);
        assert_eq!(t.value(lc)[(0, 0)], -3.0);
        assert_eq!(t.value(lg)[(0, 0)], 1.0);
    }

    #[test]
    fn discriminator_loss_low_when_separating() {
        let mut t = Tape::new();
        let real = t.leaf(Matrix::full(4, 1, 10.0));
        let fake = t.leaf(Matrix::full(4, 1, -10.0));
        let l = gan_discriminator_loss(&mut t, real, fake);
        assert!(t.value(l)[(0, 0)] < 1e-3);
    }
}
