//! Tape-free `f32` inference mirrors for the serve tier.
//!
//! Training stays on the `f64` tape; the structures here are
//! *read-only replicas* built from a fitted [`Params`] store by
//! parameter name, demoted once to `f32` ([`ParamsF32`]) and then
//! driven through plain forward passes — no tape nodes, no gradient
//! bookkeeping, and matmuls on the packed `f32` kernel in
//! `tsgb_linalg::gemm`. A method that opts into the f32 serve tier
//! (`TsgMethod::generate_batch_f32`) builds its replica lazily and
//! caches it next to the `f64` nets.
//!
//! The mirrors reuse the layers' parameter-naming scheme
//! (`{name}.w` / `{name}.b` for [`Linear`](crate::layers::Linear),
//! `{name}.{i}` for [`Mlp`](crate::layers::Mlp) layers, `{name}.wz`
//! &c. for [`GruCell`](crate::layers::GruCell)), so a replica is
//! constructed from the same `name` the `f64` layer was registered
//! under and fails loudly if the store does not contain it.

use crate::layers::Activation;
use crate::params::Params;
use tsgb_linalg::MatrixF32;

/// A name-addressable `f32` snapshot of a [`Params`] store.
pub struct ParamsF32 {
    entries: Vec<(String, MatrixF32)>,
}

impl ParamsF32 {
    /// Demotes every parameter of `params` to `f32`.
    pub fn from_params(params: &Params) -> Self {
        Self {
            entries: params
                .entries
                .iter()
                .map(|e| (e.name.clone(), MatrixF32::from_f64(&e.value)))
                .collect(),
        }
    }

    /// The parameter registered under `name`; panics when absent
    /// (a replica/name-scheme bug, not a runtime condition).
    pub fn get(&self, name: &str) -> &MatrixF32 {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m)
            .unwrap_or_else(|| panic!("ParamsF32: no parameter named {name:?}"))
    }

    /// Whether a parameter named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Total `f32` scalar count (half the `f64` store's bytes).
    pub fn scalar_count(&self) -> usize {
        self.entries.iter().map(|(_, m)| m.len()).sum()
    }
}

/// Applies an [`Activation`] elementwise in `f32`, with the same
/// formulas the tape uses in `f64`.
pub fn apply_activation_f32(act: Activation, m: &mut MatrixF32) {
    match act {
        Activation::None => {}
        Activation::Relu => m.map_inplace(|x| x.max(0.0)),
        Activation::LeakyRelu => m.map_inplace(|x| if x >= 0.0 { x } else { 0.2 * x }),
        Activation::Tanh => m.map_inplace(f32::tanh),
        Activation::Sigmoid => m.map_inplace(|x| 1.0 / (1.0 + (-x).exp())),
    }
}

/// `y = x W + b` on `f32` replicas of a trained `Linear`.
pub struct LinearF32 {
    w: MatrixF32,
    b: MatrixF32,
}

impl LinearF32 {
    /// Replicates the `Linear` registered under `name`.
    pub fn from_params(p: &ParamsF32, name: &str) -> Self {
        Self {
            w: p.get(&format!("{name}.w")).clone(),
            b: p.get(&format!("{name}.b")).clone(),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &MatrixF32) -> MatrixF32 {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast_assign(&self.b);
        y
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

/// A fully connected stack replicating a trained `Mlp`.
pub struct MlpF32 {
    layers: Vec<LinearF32>,
    hidden: Activation,
    output: Activation,
}

impl MlpF32 {
    /// Replicates the `Mlp` registered under `name`, discovering the
    /// depth from the `{name}.{i}.w` naming scheme.
    pub fn from_params(p: &ParamsF32, name: &str, hidden: Activation, output: Activation) -> Self {
        let mut layers = Vec::new();
        while p.contains(&format!("{name}.{}.w", layers.len())) {
            layers.push(LinearF32::from_params(p, &format!("{name}.{}", layers.len())));
        }
        assert!(!layers.is_empty(), "MlpF32: no layers named {name:?}");
        Self {
            layers,
            hidden,
            output,
        }
    }

    /// Forward pass through all layers and activations.
    pub fn forward(&self, x: &MatrixF32) -> MatrixF32 {
        let last = self.layers.len() - 1;
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            let act = if i == last { self.output } else { self.hidden };
            apply_activation_f32(act, &mut h);
        }
        h
    }
}

/// A GRU cell replica; same update as the tape cell:
/// `h' = h + z .* (htilde - h)`.
pub struct GruCellF32 {
    wz: MatrixF32,
    uz: MatrixF32,
    bz: MatrixF32,
    wr: MatrixF32,
    ur: MatrixF32,
    br: MatrixF32,
    wh: MatrixF32,
    uh: MatrixF32,
    bh: MatrixF32,
    /// Hidden width.
    pub hidden_dim: usize,
}

impl GruCellF32 {
    /// Replicates the `GruCell` registered under `name`.
    pub fn from_params(p: &ParamsF32, name: &str) -> Self {
        let g = |s: &str| p.get(&format!("{name}.{s}")).clone();
        let uz = g("uz");
        let hidden_dim = uz.cols();
        Self {
            wz: g("wz"),
            uz,
            bz: g("bz"),
            wr: g("wr"),
            ur: g("ur"),
            br: g("br"),
            wh: g("wh"),
            uh: g("uh"),
            bh: g("bh"),
            hidden_dim,
        }
    }

    fn gate(
        &self,
        x: &MatrixF32,
        h: &MatrixF32,
        w: &MatrixF32,
        u: &MatrixF32,
        b: &MatrixF32,
        act: Activation,
    ) -> MatrixF32 {
        let mut g = x.matmul(w);
        g.add_assign(&h.matmul(u));
        g.add_row_broadcast_assign(b);
        apply_activation_f32(act, &mut g);
        g
    }

    /// One step: `(x, h) -> h'`.
    pub fn step(&self, x: &MatrixF32, h: &MatrixF32) -> MatrixF32 {
        let z = self.gate(x, h, &self.wz, &self.uz, &self.bz, Activation::Sigmoid);
        let r = self.gate(x, h, &self.wr, &self.ur, &self.br, Activation::Sigmoid);
        let mut rh = r;
        rh.mul_elem_assign(h);
        let htilde = self.gate(x, &rh, &self.wh, &self.uh, &self.bh, Activation::Tanh);
        // h' = h + z .* (htilde - h)
        let mut diff = htilde;
        let neg_h = {
            let mut n = h.clone();
            n.map_inplace(|v| -v);
            n
        };
        diff.add_assign(&neg_h);
        diff.mul_elem_assign(&z);
        let mut out = h.clone();
        out.add_assign(&diff);
        out
    }

    /// Runs the cell from a zero state over a step sequence, returning
    /// every hidden state (mirrors `GruCell::run`).
    pub fn run(&self, xs: &[MatrixF32], batch: usize) -> Vec<MatrixF32> {
        let mut h = MatrixF32::zeros(batch, self.hidden_dim);
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            h = self.step(x, &h);
            out.push(h.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{GruCell, Linear, Mlp};
    use crate::tape::Tape;
    use tsgb_linalg::rng::seeded;
    use tsgb_linalg::Matrix;

    fn randn_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        Matrix::from_fn(r, c, |_, _| tsgb_linalg::rng::randn(&mut rng))
    }

    /// f32 forward vs f64 tape forward must agree to f32 precision.
    fn assert_close(f32_out: &MatrixF32, f64_out: &Matrix, tol: f64) {
        assert_eq!(f32_out.shape(), f64_out.shape());
        for (a, b) in f32_out.as_slice().iter().zip(f64_out.as_slice()) {
            assert!(
                (f64::from(*a) - b).abs() <= tol * (1.0 + b.abs()),
                "f32 replica diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn mlp_replica_tracks_the_tape() {
        let mut rng = seeded(3);
        let mut params = Params::new();
        let mlp = Mlp::new(
            &mut params,
            "net",
            &[6, 16, 4],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        let x = randn_matrix(5, 6, 11);
        let mut t = Tape::new();
        let bind = params.bind(&mut t);
        let xv = t.constant_copy(&x);
        let y = mlp.forward(&mut t, &bind, xv);
        let want = t.value(y).clone();

        let p32 = ParamsF32::from_params(&params);
        let mlp32 = MlpF32::from_params(&p32, "net", Activation::Relu, Activation::Sigmoid);
        let got = mlp32.forward(&MatrixF32::from_f64(&x));
        assert_close(&got, &want, 1e-5);
    }

    #[test]
    fn gru_replica_tracks_the_tape() {
        let mut rng = seeded(4);
        let mut params = Params::new();
        let cell = GruCell::new(&mut params, "g", 3, 8, &mut rng);
        let xs: Vec<Matrix> = (0..4).map(|i| randn_matrix(2, 3, 20 + i)).collect();
        let mut t = Tape::new();
        let bind = params.bind(&mut t);
        let x_vars: Vec<_> = xs.iter().map(|x| t.constant_copy(x)).collect();
        let hs = cell.run(&mut t, &bind, &x_vars, 2);
        let want = t.value(*hs.last().unwrap()).clone();

        let p32 = ParamsF32::from_params(&params);
        let cell32 = GruCellF32::from_params(&p32, "g");
        let xs32: Vec<MatrixF32> = xs.iter().map(MatrixF32::from_f64).collect();
        let got = cell32.run(&xs32, 2);
        assert_close(got.last().unwrap(), &want, 1e-4);
    }

    #[test]
    fn missing_parameter_panics_with_the_name() {
        let mut rng = seeded(5);
        let mut params = Params::new();
        let _ = Linear::new(&mut params, "lin", 2, 2, &mut rng);
        let p32 = ParamsF32::from_params(&params);
        assert!(p32.contains("lin.w"));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p32.get("nope.w")));
        assert!(r.is_err());
    }
}
