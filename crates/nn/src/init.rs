//! Weight initialization schemes.
//!
//! Xavier/Glorot uniform for feedforward weights, scaled-normal for
//! recurrent matrices, zeros for biases — matching the defaults of the
//! frameworks the original methods were written in.

use tsgb_rand::rngs::SmallRng;
use tsgb_rand::Rng;
use tsgb_linalg::Matrix;

/// Xavier/Glorot uniform: `U[-a, a]` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Normal with standard deviation `std`.
pub fn scaled_normal(rows: usize, cols: usize, std: f64, rng: &mut SmallRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| tsgb_linalg::rng::randn(rng) * std)
}

/// All-zeros (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsgb_linalg::rng::seeded;
    use tsgb_linalg::stats;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = seeded(5);
        let w = xavier_uniform(30, 50, &mut rng);
        let a = (6.0 / 80.0f64).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() < a));
        assert!(w.mean().abs() < 0.02);
    }

    #[test]
    fn scaled_normal_std() {
        let mut rng = seeded(6);
        let w = scaled_normal(100, 100, 0.3, &mut rng);
        let s = stats::std_dev(w.as_slice());
        assert!((s - 0.3).abs() < 0.02, "std = {s}");
    }
}
