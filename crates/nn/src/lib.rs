#![warn(missing_docs)]

//! `tsgb-nn`: the deep-learning substrate for TSGBench.
//!
//! The paper's ten TSG methods are GANs, VAEs, flows, ODE networks and
//! state-space models, all trained with minibatch gradient descent. In
//! the original work that substrate is PyTorch/TensorFlow on a GPU;
//! here it is a small, from-scratch, reverse-mode automatic
//! differentiation engine over dense [`tsgb_linalg::Matrix`] values.
//!
//! Architecture:
//!
//! * [`tape`] — an arena-based gradient tape. Each forward op pushes a
//!   node (value + backward closure inputs); [`tape::Tape::backward`]
//!   walks the arena in reverse to accumulate gradients. Building a
//!   fresh tape per minibatch keeps lifetimes trivial and memory
//!   bounded.
//! * [`params`] — named parameter store decoupled from the tape, so
//!   optimizers ([`optim`]) can hold Adam moments across steps.
//! * [`layers`] — Linear, GRU and LSTM cells, and 1-D convolution,
//!   written against the tape ops.
//! * [`loss`] — MSE, BCE-with-logits, Gaussian KL, and the adversarial
//!   losses used by the GAN methods.
//! * [`gradcheck`] — central finite-difference verification used by the
//!   test suite to prove every op and layer differentiates correctly.

//! * [`infer32`] — tape-free `f32` replicas of the layers for the
//!   reduced-precision serve tier (`TSGB_SERVE_DTYPE=f32`).
//! * [`plan`] — compiled execution plans: a recorded training step is
//!   frozen into preresolved forward/backward schedules and replayed
//!   with zero re-recording (`TSGB_PLAN=on|off`, on by default),
//!   bit-identical to the interpreted tape.

pub mod gradcheck;
pub mod infer32;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod params;
pub mod persist;
pub mod plan;
pub mod tape;

pub use params::{ParamId, Params};
pub use plan::{plan_enabled, with_plan_mode};
pub use tape::{Tape, VarId};
