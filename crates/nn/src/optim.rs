//! Optimizers over a [`Params`] store.
//!
//! [`Adam`] (the default across all ten methods, matching their
//! original implementations) and plain [`Sgd`] for baselines and
//! tests. Moments are stored inside the parameter entries, so an
//! optimizer object holds only hyper-parameters and the step counter.

use crate::params::Params;

/// Stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// A new SGD optimizer.
    pub fn new(lr: f64) -> Self {
        Self { lr }
    }

    /// Applies one step using the gradients stored in `params`.
    pub fn step(&self, params: &mut Params) {
        for e in &mut params.entries {
            e.value.axpy(-self.lr, &e.grad);
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay, `beta_1` (paper §5 uses 0.9 for RTSGAN).
    pub beta1: f64,
    /// Second-moment decay, `beta_2` (0.999).
    pub beta2: f64,
    /// Denominator fuzz.
    pub eps: f64,
    t: u64,
}

impl Adam {
    /// Adam with the standard `(0.9, 0.999, 1e-8)` configuration.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Adam with explicit betas (GAN training often uses `beta1 = 0.5`).
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Applies one update using the gradients stored in `params`.
    pub fn step(&mut self, params: &mut Params) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for e in &mut params.entries {
            let n = e.value.len();
            let val = e.value.as_mut_slice();
            let g = e.grad.as_slice();
            let m = e.m.as_mut_slice();
            let v = e.v.as_mut_slice();
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                val[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use tsgb_linalg::Matrix;

    /// Minimizes `(w - 3)^2` and checks convergence, recycling one
    /// tape across all iterations as the training loops do.
    fn converges(step: &mut dyn FnMut(&mut Params)) -> f64 {
        let mut p = Params::new();
        let w = p.register("w", Matrix::full(1, 1, 0.0));
        let mut t = Tape::new();
        for _ in 0..500 {
            t.reset();
            let b = p.bind(&mut t);
            let wv = b.var(w);
            let shifted = t.add_scalar(wv, -3.0);
            let sq = t.square(shifted);
            let loss = t.sum(sq);
            t.backward(loss);
            p.absorb_grads(&t, &b);
            step(&mut p);
        }
        p.value(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let sgd = Sgd::new(0.1);
        let w = converges(&mut |p| sgd.step(p));
        assert!((w - 3.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let w = converges(&mut |p| adam.step(p));
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step from zero moments, the update magnitude should
        // be ~lr regardless of gradient scale (Adam's invariance).
        for &scale in &[1e-3, 1.0, 1e3] {
            let mut p = Params::new();
            let w = p.register("w", Matrix::full(1, 1, 0.0));
            let mut t = Tape::new();
            let b = p.bind(&mut t);
            let wv = b.var(w);
            let s = t.scale(wv, scale);
            let loss = t.sum(s);
            t.backward(loss);
            p.absorb_grads(&t, &b);
            let mut adam = Adam::new(0.01);
            adam.step(&mut p);
            let delta = p.value(w)[(0, 0)].abs();
            assert!(
                (delta - 0.01).abs() < 1e-6,
                "scale {scale}: delta = {delta}"
            );
        }
    }
}
