//! Neural-network layers over the gradient tape.
//!
//! Layers own [`ParamId`]s (registered in a shared [`Params`] store at
//! construction) and are stateless at forward time: `forward` takes
//! the tape and the parameter binding, so the same layer object can be
//! used across the fresh tape built for every minibatch.
//!
//! Provided: [`Linear`], [`GruCell`], [`LstmCell`], [`Conv1d`] (same
//! padding via the tape's `im2col`), and the [`Mlp`] convenience stack.
//! These cover the architectures of all ten TSG methods at reduced
//! scale; batch-norm and dropout are intentionally omitted (documented
//! substitution: the reduced-capacity models do not overfit enough to
//! need them, and their train/eval mode split would complicate the
//! benchmark's determinism guarantees).

use crate::init;
use crate::params::{Binding, ParamId, Params};
use crate::tape::{FusedAct, Tape, VarId};
use tsgb_rand::rngs::SmallRng;
use tsgb_linalg::Matrix;

/// Activation applied by [`Mlp`] between layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// ReLU.
    Relu,
    /// Leaky ReLU with slope 0.2 (the GAN-discriminator default).
    LeakyRelu,
    /// tanh.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, t: &mut Tape, x: VarId) -> VarId {
        match self {
            Activation::None => x,
            Activation::Relu => t.relu(x),
            Activation::LeakyRelu => t.leaky_relu(x, 0.2),
            Activation::Tanh => t.tanh(x),
            Activation::Sigmoid => t.sigmoid(x),
        }
    }

    /// The fusable equivalent, when one exists (leaky ReLU needs the
    /// pre-activation sign and cannot be recovered from the output).
    fn fused(self) -> Option<FusedAct> {
        match self {
            Activation::None => Some(FusedAct::Identity),
            Activation::Relu => Some(FusedAct::Relu),
            Activation::Tanh => Some(FusedAct::Tanh),
            Activation::Sigmoid => Some(FusedAct::Sigmoid),
            Activation::LeakyRelu => None,
        }
    }
}

/// Fully connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input width (for shape assertions in debug builds).
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Registers a `in_dim -> out_dim` layer in `params`.
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let w = params.register(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = params.register(format!("{name}.b"), init::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// `x (batch, in_dim) -> (batch, out_dim)`, recorded as one fused
    /// affine node.
    pub fn forward(&self, t: &mut Tape, bind: &Binding, x: VarId) -> VarId {
        debug_assert_eq!(t.shape(x).1, self.in_dim, "Linear input width mismatch");
        t.affine(x, bind.var(self.w), bind.var(self.b))
    }

    /// Forward plus activation, fused into one node when the
    /// activation allows it.
    pub fn forward_act(&self, t: &mut Tape, bind: &Binding, x: VarId, act: Activation) -> VarId {
        debug_assert_eq!(t.shape(x).1, self.in_dim, "Linear input width mismatch");
        match act.fused() {
            Some(f) => t.affine_act(x, bind.var(self.w), bind.var(self.b), f),
            None => {
                let y = t.affine(x, bind.var(self.w), bind.var(self.b));
                act.apply(t, y)
            }
        }
    }
}

/// A stack of [`Linear`] layers with a shared hidden activation and an
/// optional output activation.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden: Activation,
    output: Activation,
}

impl Mlp {
    /// Builds an MLP through the given layer widths, e.g.
    /// `[in, h1, h2, out]`.
    pub fn new(
        params: &mut Params,
        name: &str,
        widths: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Self {
            layers,
            hidden,
            output,
        }
    }

    /// Forward through all layers; each layer + activation is one
    /// fused node when the activation allows it.
    pub fn forward(&self, t: &mut Tape, bind: &Binding, x: VarId) -> VarId {
        let n = self.layers.len();
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i + 1 == n { self.output } else { self.hidden };
            h = layer.forward_act(t, bind, h, act);
        }
        h
    }
}

/// Gated recurrent unit cell (Cho et al., 2014).
///
/// `z = sigma(x Wz + h Uz + bz)`, `r = sigma(x Wr + h Ur + br)`,
/// `htilde = tanh(x Wh + (r .* h) Uh + bh)`,
/// `h' = (1 - z) .* h + z .* htilde`.
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
}

impl GruCell {
    /// Registers a GRU cell in `params`.
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let w = |p: &mut Params, suffix: &str, r, c, rng: &mut SmallRng| {
            p.register(format!("{name}.{suffix}"), init::xavier_uniform(r, c, rng))
        };
        let wz = w(params, "wz", in_dim, hidden_dim, rng);
        let uz = w(params, "uz", hidden_dim, hidden_dim, rng);
        let wr = w(params, "wr", in_dim, hidden_dim, rng);
        let ur = w(params, "ur", hidden_dim, hidden_dim, rng);
        let wh = w(params, "wh", in_dim, hidden_dim, rng);
        let uh = w(params, "uh", hidden_dim, hidden_dim, rng);
        let bz = params.register(format!("{name}.bz"), init::zeros(1, hidden_dim));
        let br = params.register(format!("{name}.br"), init::zeros(1, hidden_dim));
        let bh = params.register(format!("{name}.bh"), init::zeros(1, hidden_dim));
        Self {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            in_dim,
            hidden_dim,
        }
    }

    /// One step: `x (batch, in_dim)`, `h (batch, hidden) -> h'`. Each
    /// gate is one fused [`Tape::affine2_act`] node.
    pub fn step(&self, t: &mut Tape, bind: &Binding, x: VarId, h: VarId) -> VarId {
        let z = t.affine2_act(
            x,
            bind.var(self.wz),
            h,
            bind.var(self.uz),
            bind.var(self.bz),
            FusedAct::Sigmoid,
        );
        let r = t.affine2_act(
            x,
            bind.var(self.wr),
            h,
            bind.var(self.ur),
            bind.var(self.br),
            FusedAct::Sigmoid,
        );
        let rh = t.mul(r, h);
        let htilde = t.affine2_act(
            x,
            bind.var(self.wh),
            rh,
            bind.var(self.uh),
            bind.var(self.bh),
            FusedAct::Tanh,
        );
        // h' = h + z .* (htilde - h)
        let diff = t.sub(htilde, h);
        let zd = t.mul(z, diff);
        t.add(h, zd)
    }

    /// Runs the cell over a sequence of per-step inputs, returning all
    /// hidden states. `batch` fixes the zero initial state's rows.
    pub fn run(&self, t: &mut Tape, bind: &Binding, xs: &[VarId], batch: usize) -> Vec<VarId> {
        let mut h = t.zeros(batch, self.hidden_dim);
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            h = self.step(t, bind, x, h);
            out.push(h);
        }
        out
    }
}

/// Long short-term memory cell (standard formulation, forget-gate bias
/// initialized to 1 for stable early training).
#[derive(Debug, Clone)]
pub struct LstmCell {
    wi: ParamId,
    ui: ParamId,
    bi: ParamId,
    wf: ParamId,
    uf: ParamId,
    bf: ParamId,
    wo: ParamId,
    uo: ParamId,
    bo: ParamId,
    wc: ParamId,
    uc: ParamId,
    bc: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
}

impl LstmCell {
    /// Registers an LSTM cell in `params`.
    pub fn new(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let w = |p: &mut Params, suffix: &str, r, c, rng: &mut SmallRng| {
            p.register(format!("{name}.{suffix}"), init::xavier_uniform(r, c, rng))
        };
        let wi = w(params, "wi", in_dim, hidden_dim, rng);
        let ui = w(params, "ui", hidden_dim, hidden_dim, rng);
        let wf = w(params, "wf", in_dim, hidden_dim, rng);
        let uf = w(params, "uf", hidden_dim, hidden_dim, rng);
        let wo = w(params, "wo", in_dim, hidden_dim, rng);
        let uo = w(params, "uo", hidden_dim, hidden_dim, rng);
        let wc = w(params, "wc", in_dim, hidden_dim, rng);
        let uc = w(params, "uc", hidden_dim, hidden_dim, rng);
        let bi = params.register(format!("{name}.bi"), init::zeros(1, hidden_dim));
        let bf = params.register(format!("{name}.bf"), Matrix::full(1, hidden_dim, 1.0));
        let bo = params.register(format!("{name}.bo"), init::zeros(1, hidden_dim));
        let bc = params.register(format!("{name}.bc"), init::zeros(1, hidden_dim));
        Self {
            wi,
            ui,
            bi,
            wf,
            uf,
            bf,
            wo,
            uo,
            bo,
            wc,
            uc,
            bc,
            in_dim,
            hidden_dim,
        }
    }

    #[allow(clippy::too_many_arguments)] // the three gate weights are one unit
    fn gate(
        &self,
        t: &mut Tape,
        bind: &Binding,
        x: VarId,
        h: VarId,
        w: ParamId,
        u: ParamId,
        b: ParamId,
        act: FusedAct,
    ) -> VarId {
        t.affine2_act(x, bind.var(w), h, bind.var(u), bind.var(b), act)
    }

    /// One step: returns `(h', c')`. Each gate is one fused node.
    pub fn step(
        &self,
        t: &mut Tape,
        bind: &Binding,
        x: VarId,
        h: VarId,
        c: VarId,
    ) -> (VarId, VarId) {
        let i = self.gate(t, bind, x, h, self.wi, self.ui, self.bi, FusedAct::Sigmoid);
        let f = self.gate(t, bind, x, h, self.wf, self.uf, self.bf, FusedAct::Sigmoid);
        let o = self.gate(t, bind, x, h, self.wo, self.uo, self.bo, FusedAct::Sigmoid);
        let ctilde = self.gate(t, bind, x, h, self.wc, self.uc, self.bc, FusedAct::Tanh);
        let fc = t.mul(f, c);
        let ic = t.mul(i, ctilde);
        let c_new = t.add(fc, ic);
        let tc = t.tanh(c_new);
        let h_new = t.mul(o, tc);
        (h_new, c_new)
    }

    /// Runs the cell over a sequence, returning all hidden states.
    pub fn run(&self, t: &mut Tape, bind: &Binding, xs: &[VarId], batch: usize) -> Vec<VarId> {
        let mut h = t.zeros(batch, self.hidden_dim);
        let mut c = t.zeros(batch, self.hidden_dim);
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            let (h2, c2) = self.step(t, bind, x, h, c);
            h = h2;
            c = c2;
            out.push(h);
        }
        out
    }
}

/// Same-padded 1-D convolution over a `(T, C_in)` sequence.
#[derive(Debug, Clone)]
pub struct Conv1d {
    w: ParamId,
    b: ParamId,
    kernel: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
}

impl Conv1d {
    /// Registers a conv layer; `kernel` must be odd (same padding).
    pub fn new(
        params: &mut Params,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(
            kernel % 2 == 1,
            "Conv1d kernel must be odd for same padding"
        );
        let w = params.register(
            format!("{name}.w"),
            init::xavier_uniform(kernel * in_ch, out_ch, rng),
        );
        let b = params.register(format!("{name}.b"), init::zeros(1, out_ch));
        Self {
            w,
            b,
            kernel,
            in_ch,
            out_ch,
        }
    }

    /// `x (T, C_in) -> (T, C_out)`.
    pub fn forward(&self, t: &mut Tape, bind: &Binding, x: VarId) -> VarId {
        debug_assert_eq!(t.shape(x).1, self.in_ch, "Conv1d channel mismatch");
        let unfolded = t.im2col(x, self.kernel);
        t.affine(unfolded, bind.var(self.w), bind.var(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsgb_linalg::rng::seeded;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = seeded(1);
        let mut p = Params::new();
        let lin = Linear::new(&mut p, "l", 3, 2, &mut rng);
        let mut t = Tape::new();
        let b = p.bind(&mut t);
        let x = t.constant(Matrix::zeros(4, 3));
        let y = lin.forward(&mut t, &b, x);
        assert_eq!(t.value(y).shape(), (4, 2));
        // zero input -> output equals bias (zeros at init)
        assert_eq!(t.value(y), &Matrix::zeros(4, 2));
    }

    #[test]
    fn mlp_stacks() {
        let mut rng = seeded(2);
        let mut p = Params::new();
        let mlp = Mlp::new(
            &mut p,
            "m",
            &[4, 8, 8, 1],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        let mut t = Tape::new();
        let b = p.bind(&mut t);
        let x = t.constant(Matrix::full(5, 4, 0.3));
        let y = mlp.forward(&mut t, &b, x);
        assert_eq!(t.value(y).shape(), (5, 1));
        assert!(t
            .value(y)
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn gru_runs_sequence() {
        let mut rng = seeded(3);
        let mut p = Params::new();
        let gru = GruCell::new(&mut p, "g", 2, 5, &mut rng);
        let mut t = Tape::new();
        let b = p.bind(&mut t);
        let xs: Vec<VarId> = (0..7)
            .map(|i| t.constant(Matrix::full(3, 2, i as f64 * 0.1)))
            .collect();
        let hs = gru.run(&mut t, &b, &xs, 3);
        assert_eq!(hs.len(), 7);
        assert_eq!(t.value(hs[6]).shape(), (3, 5));
        // hidden state stays in (-1, 1): it is a convex combination of
        // tanh outputs starting from zero
        assert!(t.value(hs[6]).as_slice().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn lstm_runs_sequence_and_grads_flow() {
        let mut rng = seeded(4);
        let mut p = Params::new();
        let lstm = LstmCell::new(&mut p, "l", 2, 4, &mut rng);
        let mut t = Tape::new();
        let b = p.bind(&mut t);
        let xs: Vec<VarId> = (0..5)
            .map(|_| t.constant(Matrix::full(2, 2, 0.5)))
            .collect();
        let hs = lstm.run(&mut t, &b, &xs, 2);
        let last = *hs.last().unwrap();
        let sq = t.square(last);
        let loss = t.mean(sq);
        t.backward(loss);
        p.absorb_grads(&t, &b);
        assert!(
            p.grad_norm() > 0.0,
            "gradients must flow through 5 LSTM steps"
        );
    }

    #[test]
    fn conv1d_is_translation_consistent() {
        let mut rng = seeded(5);
        let mut p = Params::new();
        let conv = Conv1d::new(&mut p, "c", 1, 1, 3, &mut rng);
        let mut t = Tape::new();
        let b = p.bind(&mut t);
        // An impulse at position 3 of a length-9 sequence.
        let mut imp = Matrix::zeros(9, 1);
        imp[(3, 0)] = 1.0;
        let x = t.constant(imp);
        let y = conv.forward(&mut t, &b, x);
        assert_eq!(t.value(y).shape(), (9, 1));
        // Response is the (flipped) kernel centered at 3, plus bias 0:
        // positions far from the impulse are exactly bias.
        assert_eq!(t.value(y)[(7, 0)], 0.0);
        assert!(t.value(y).row(2)[0].abs() + t.value(y).row(3)[0].abs() > 0.0);
    }
}
