//! Compiled execution plans: record-once/replay-many training steps.
//!
//! Training loops re-declare the same graph topology every minibatch.
//! Recording it on the [`crate::Tape`] is allocation-free (PR 2's
//! arena recycling), but still pays per-step op dispatch, shape
//! re-derivation, pool hashing, and node bookkeeping. This module
//! freezes one recorded step into an executable **plan**:
//!
//! * a forward step list with preresolved buffer slots (node indices —
//!   every shape was checked once, at record time) and activation
//!   fusion across the op pairs the fused `affine*` ops don't cover
//!   (`sigmoid(matmul(..))` and friends);
//! * a reverse-order backward step list that accumulates into
//!   preresolved gradient slots, with per-edge *first-touch* flags
//!   resolved at compile time (the interpreter discovers them
//!   dynamically through its `Option<Matrix>` slots).
//!
//! # Determinism argument
//!
//! Replay is **bit-identical** to the interpreted tape because every
//! plan step runs the *same* scalar kernels in the *same* order on the
//! *same* operands:
//!
//! * forward steps reuse each node's own value buffer and the exact
//!   record-path expressions (fusion only changes *where* the
//!   pre-activation lands, never the arithmetic — the activation is
//!   applied to identical input bits);
//! * backward steps replicate the interpreter's accumulate order. A
//!   first-touch edge mirrors the interpreter's install-into-empty-slot
//!   move: "compute the delta straight into the slot" for owned
//!   deltas, "copy" for borrowed ones, and "zero then accumulate" for
//!   the `*_acc_into` family (zero-then-add rather than a direct store,
//!   so `-0.0` deltas keep the interpreter's `0.0 + -0.0 == 0.0`
//!   bits). Later touches `add_assign` exactly like the interpreter.
//!
//! Scalar payloads (`scale`, `add_scalar`, `leaky_relu` and `filled`
//! leaves) are per-step *feeds*: the replaying tape writes new values
//! through into the recorded ops and the plan reads them live, so a
//! data-dependent scalar never invalidates the structure.
//!
//! # Lifecycle
//!
//! `record -> capture -> replay* -> (invalidate -> record -> capture)*`
//!
//! [`crate::Tape::begin_step`] captures after the first recorded step
//! and rewinds on subsequent boundaries. Any structural mismatch while
//! replaying (changed batch size, a different graph) materializes the
//! already-matched prefix with interpreter kernels, retires the stale
//! suffix, and falls back to recording; the next boundary re-captures.

use crate::tape::{FusedAct, LeafKind, Node, Op};
use std::cell::Cell;
use std::collections::HashMap;
use tsgb_linalg::gemm::{matmul_prepacked_acc_into, pack_b_panels, pack_bt_panels, packed_b_len};
use tsgb_linalg::{Matrix, MatrixPool};

// ---------------------------------------------------------------------
// Mode gating: TSGB_PLAN env + per-thread override
// ---------------------------------------------------------------------

thread_local! {
    /// 0 = no override; 1 = plan on; 2 = plan off.
    static PLAN_OVERRIDE: Cell<u8> = const { Cell::new(0) };

    /// Cached `TSGB_PLAN` value; 0 = not read yet. Env lookups take a
    /// process-wide lock — far too slow for a per-step check.
    static PLAN_ENV: Cell<u8> = const { Cell::new(0) };
}

/// Whether tapes compile recorded steps into execution plans: the
/// [`with_plan_mode`] override if active, else `TSGB_PLAN`
/// (`on` | `off`), else on. Unrecognized values mean on.
pub fn plan_enabled() -> bool {
    let o = PLAN_OVERRIDE.with(Cell::get);
    if o != 0 {
        return o == 1;
    }
    let cached = PLAN_ENV.with(Cell::get);
    let code = if cached != 0 {
        cached
    } else {
        let code = match std::env::var("TSGB_PLAN").as_deref() {
            Ok("off") | Ok("0") | Ok("false") => 2,
            _ => 1,
        };
        PLAN_ENV.with(|c| c.set(code));
        code
    };
    code == 1
}

/// Runs `f` with plan compilation forced on or off for the current
/// thread (restored afterwards, also on panic). The equivalence tests
/// use this to compare the compiled and interpreted paths without
/// touching the process environment.
pub fn with_plan_mode<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            PLAN_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(PLAN_OVERRIDE.with(|c| c.replace(if on { 1 } else { 2 })));
    f()
}

// ---------------------------------------------------------------------
// Plan structure
// ---------------------------------------------------------------------

/// One compiled forward step: recompute node `out`'s value in place.
/// `src == out` runs the node's own op; `src < out` is a fused
/// activation pair (compute `src`'s pre-activation directly into
/// `out`'s buffer, apply `out`'s activation in place — `src` stays
/// stale/dead).
#[derive(Clone, Copy)]
struct FwdStep {
    out: u32,
    src: u32,
}

/// The frozen forward schedule of a captured step.
pub(crate) struct FwdPlan {
    steps: Vec<FwdStep>,
    /// Nodes fused away: their value buffers are never refreshed
    /// during replay ([`crate::Tape::value`] refuses to read them).
    dead: Vec<bool>,
    /// Prepacked panels for the leaf right-hand operands of profitable
    /// forward GEMMs — the recurrent weights, packed once per replay
    /// and consumed by every timestep's `h @ U`.
    pcache: PackCache,
}

/// Packed right-operand panels ([`tsgb_linalg::gemm`] layout) for the
/// recurring GEMMs of a frozen step, keyed by node id. The node set
/// and panel lengths are frozen at compile; the panel *contents* are
/// repacked from the live node values before each use, so weight
/// updates flow through exactly like they do for the transpose cache.
pub(crate) struct PackCache {
    entries: Vec<(u32, Vec<f64>)>,
}

impl PackCache {
    fn get(&self, id: usize) -> Option<&[f64]> {
        self.entries
            .iter()
            .find(|(e, _)| *e as usize == id)
            .map(|(_, p)| p.as_slice())
    }
}

/// The no-prepack cache the interpreter's materialization paths
/// ([`crate::Tape::eval`], invalidation fallback) pass to
/// [`exec_node`]: every GEMM takes the plain kernels.
pub(crate) static EMPTY_PACKS: PackCache = PackCache {
    entries: Vec::new(),
};

/// Whether an `m x k` times `k x n` product is worth routing through
/// prepacked panels: measured at the plan's own shapes, the
/// microkernel wins once the row tile fills (`m >= 8`) and the
/// `k`-chain and panel width amortize the packed streaming (~1.6x at
/// the 16x32x32 recurrent `h @ U` / `dz @ Uᵀ` shape), and loses when
/// rows, depth, or width are tiny (0.5-0.6x at 4x16x32 / 16x4x32).
fn pack_profitable(m: usize, k: usize, n: usize) -> bool {
    m >= 8 && k >= 32 && n >= 16
}

impl FwdPlan {
    /// Whether node `i` was fused away (its buffer holds stale bits).
    pub(crate) fn dead(&self, i: usize) -> bool {
        self.dead[i]
    }
}

/// One compiled backward step for a reached node. `flags_at` indexes
/// the step's per-edge first-touch flags; `scratch` indexes the plan's
/// scratch pool (`u32::MAX` when the step needs none).
#[derive(Clone, Copy)]
struct BwdStep {
    node: u32,
    flags_at: u32,
    scratch: u32,
}

/// A compiled backward sweep for one loss node, with preresolved
/// first-touch flags and pre-taken scratch buffers.
struct BwdPlan {
    loss: usize,
    steps: Vec<BwdStep>,
    /// Per-edge first-touch flags, in the exact order the interpreter
    /// visits edges; `true` mirrors "install into an empty slot".
    /// Pruned edges (into no-grad leaves) keep a placeholder slot so
    /// the positional indexing in [`run_step`] never shifts.
    flags: Vec<bool>,
    /// Nodes the sweep reaches — exactly the slots the interpreter
    /// would leave `Some`, minus pruned no-grad leaves.
    reached: Vec<bool>,
    /// One buffer per step that needs a temporary (non-first-touch
    /// mapped deltas, fused-activation `dz`), shaped like that step's
    /// incoming gradient.
    scratch: Vec<Matrix>,
    /// Transposes of the nodes consumed as `matmul_t` right-hand
    /// sides (weights of `Affine`/`Affine2`, the RHS of `Matmul`),
    /// refreshed once per run and shared by every step that consults
    /// them. `matmul_t(a, b)` is documented bit-identical to
    /// `matmul(a, bᵀ)`, and the plain `matmul` band kernel streams
    /// rows ~40% faster than the column-gathering `matmul_t`, so one
    /// cheap transpose amortized over the whole sweep (a recurrent
    /// weight is hit once per timestep) is a clear win.
    tcache: Vec<(u32, Matrix)>,
    /// Same idea, one step further: the `matmul_t` right-hand sides
    /// whose shape clears [`pack_profitable`] skip the transpose
    /// detour and go straight to prepacked microkernel panels of the
    /// transpose, repacked once per run. An id lands here *or* in
    /// [`Self::tcache`] per edge (both, if a weight is consumed at
    /// both profitable and tiny shapes); [`run_step`] re-derives the
    /// same predicate from the frozen shapes to pick the right cache.
    ptcache: PackCache,
}

/// Whether a node is a leaf whose gradient nobody can observe
/// (constants, zeros padding, filled targets). The compiled backward
/// plan prunes every edge into such leaves; the interpreter still
/// computes them, and since pruning only removes *writes to those
/// slots*, parameter gradients are bit-identical either way.
fn nograd(op: &Op) -> bool {
    matches!(
        op,
        Op::Leaf(LeafKind::Data { grad: false } | LeafKind::Zeros | LeafKind::Filled(_))
    )
}

/// A captured step: the forward schedule plus lazily compiled backward
/// sweeps (one per loss node observed) and the replay cursors.
pub(crate) struct Replay {
    /// Ops re-declared (signature-matched) so far this step.
    pub(crate) cursor: usize,
    /// Nodes whose values are fresh this step: everything below was
    /// materialized (by the plan run or [`crate::Tape::eval`]).
    pub(crate) watermark: usize,
    pub(crate) fwd: FwdPlan,
    bwd: Vec<BwdPlan>,
}

fn fusable_producer(op: &Op) -> bool {
    matches!(
        op,
        Op::Matmul(..)
            | Op::Affine {
                act: FusedAct::Identity,
                ..
            }
            | Op::Affine2 {
                act: FusedAct::Identity,
                ..
            }
    )
}

impl Replay {
    /// Freezes the recorded node list into a forward plan and pre-sizes
    /// `pool` from the plan's buffer manifest, so post-invalidation
    /// re-records and backward compiles never miss.
    pub(crate) fn capture(nodes: &[Node], pool: &mut MatrixPool) -> Replay {
        let n = nodes.len();
        let mut uses = vec![0u32; n];
        let mut count = |id: &crate::VarId| uses[id.0] += 1;
        for node in nodes {
            match &node.op {
                Op::Leaf(_) => {}
                Op::Add(a, b)
                | Op::Sub(a, b)
                | Op::Mul(a, b)
                | Op::Matmul(a, b)
                | Op::AddRowBroadcast(a, b)
                | Op::MulRowBroadcast(a, b)
                | Op::ConcatCols(a, b) => {
                    count(a);
                    count(b);
                }
                Op::Neg(a)
                | Op::Scale(a, _)
                | Op::AddScalar(a, _)
                | Op::Detach(a)
                | Op::Sigmoid(a)
                | Op::Tanh(a)
                | Op::Relu(a)
                | Op::LeakyRelu(a, _)
                | Op::Exp(a)
                | Op::Ln(a)
                | Op::Square(a)
                | Op::Abs(a)
                | Op::Softplus(a)
                | Op::Recip(a)
                | Op::Sum(a)
                | Op::Mean(a)
                | Op::SliceCols(a, _, _)
                | Op::SliceRows(a, _, _)
                | Op::Im2Col(a, _)
                | Op::RowMean(a)
                | Op::Transpose(a) => count(a),
                Op::ConcatRows(parts) => parts.iter().for_each(&mut count),
                Op::Affine { x, w, b, .. } => {
                    count(x);
                    count(w);
                    count(b);
                }
                Op::Affine2 { x, w, h, u, b, .. } => {
                    count(x);
                    count(w);
                    count(h);
                    count(u);
                    count(b);
                }
            }
        }

        // Activation fusion: a single-use Matmul / identity-Affine(2)
        // feeding an output-derivative activation collapses into one
        // step; the producer's buffer goes dead.
        let mut dead = vec![false; n];
        let mut fuse_src: Vec<u32> = (0..n as u32).collect();
        for i in 0..n {
            if let Op::Sigmoid(a) | Op::Tanh(a) | Op::Relu(a) = nodes[i].op {
                if uses[a.0] == 1 && fusable_producer(&nodes[a.0].op) {
                    dead[a.0] = true;
                    fuse_src[i] = a.0 as u32;
                }
            }
        }
        let steps = (0..n)
            .filter(|&i| !dead[i] && !matches!(nodes[i].op, Op::Leaf(_)))
            .map(|i| FwdStep {
                out: i as u32,
                src: fuse_src[i],
            })
            .collect();

        // Prepack manifest: leaf right-hand operands of profitable
        // GEMMs. Only leaves qualify because the panels are refreshed
        // *before* the forward sweep runs — a computed operand's value
        // would still be stale then. (Weights are leaves; that is
        // exactly the recurring case worth packing.) Fused-away
        // producers still run their GEMM in `exec_fused`, so the scan
        // ignores `dead`.
        let mut fneed: Vec<u32> = Vec::new();
        {
            let mut site = |a: &crate::VarId, b: &crate::VarId| {
                let (m, k) = nodes[a.0].value.shape();
                let n = nodes[b.0].value.cols();
                if pack_profitable(m, k, n) && matches!(nodes[b.0].op, Op::Leaf(_)) {
                    fneed.push(b.0 as u32);
                }
            };
            for node in nodes {
                match &node.op {
                    Op::Matmul(a, b) => site(a, b),
                    Op::Affine { x, w, .. } => site(x, w),
                    Op::Affine2 { x, w, h, u, .. } => {
                        site(x, w);
                        site(h, u);
                    }
                    _ => {}
                }
            }
        }
        fneed.sort_unstable();
        fneed.dedup();
        let pcache = PackCache {
            entries: fneed
                .into_iter()
                .map(|id| {
                    let (k, n) = nodes[id as usize].value.shape();
                    (id, vec![0.0; packed_b_len(k, n)])
                })
                .collect(),
        };

        // Buffer-slot manifest -> pool pre-size. A warm re-record after
        // an invalidation redraws every node value, and the first
        // backward compile takes scratch buffers (all node-shaped); a
        // small margin covers the interpreter's transient deltas.
        let mut manifest: HashMap<usize, usize> = HashMap::new();
        for node in nodes {
            *manifest
                .entry(node.value.rows() * node.value.cols())
                .or_insert(0) += 1;
        }
        for (&elems, &count) in &manifest {
            pool.reserve(elems, count + 2);
        }

        Replay {
            cursor: 0,
            watermark: 0,
            fwd: FwdPlan {
                steps,
                dead,
                pcache,
            },
            bwd: Vec::new(),
        }
    }

    /// Starts a new replayed step: every op must be re-declared, every
    /// value is stale until the plan runs.
    pub(crate) fn rewind(&mut self) {
        self.cursor = 0;
        self.watermark = 0;
    }

    /// Dismantles the plan, yielding its scratch buffers for pooling.
    pub(crate) fn into_scratch(self) -> Vec<Matrix> {
        self.bwd
            .into_iter()
            .flat_map(|b| {
                b.scratch
                    .into_iter()
                    .chain(b.tcache.into_iter().map(|(_, m)| m))
            })
            .collect()
    }

    /// Runs one fully matched step: the compiled forward (skipping
    /// anything [`crate::Tape::eval`] already materialized), then the
    /// compiled backward for `loss` (compiled on first use).
    pub(crate) fn execute(
        &mut self,
        nodes: &mut [Node],
        grads: &mut Vec<Option<Matrix>>,
        pool: &mut MatrixPool,
        loss: usize,
    ) {
        if self.watermark < nodes.len() {
            // Repack the frozen weight panels from this step's live
            // values (Adam moved them since the last replay). Skipped
            // when a second loss backward finds everything fresh.
            for (id, panels) in self.fwd.pcache.entries.iter_mut() {
                pack_b_panels(&nodes[*id as usize].value, panels);
            }
        }
        for step in &self.fwd.steps {
            let out = step.out as usize;
            if out < self.watermark {
                continue;
            }
            if step.src == step.out {
                exec_node(nodes, out, pool, &self.fwd.pcache);
            } else {
                exec_fused(nodes, step.src as usize, out, pool, &self.fwd.pcache);
            }
        }
        self.watermark = nodes.len();

        let idx = match self.bwd.iter().position(|b| b.loss == loss) {
            Some(idx) => idx,
            None => {
                let plan = BwdPlan::compile(nodes, loss, pool);
                self.bwd.push(plan);
                self.bwd.len() - 1
            }
        };
        self.bwd[idx].run(nodes, grads, pool, &self.fwd.dead);
    }
}

// ---------------------------------------------------------------------
// Forward execution
// ---------------------------------------------------------------------

/// `dst += a * b`, through node `b_id`'s prepacked panels when the
/// forward plan cached them, else the plain matmul. The two paths are
/// bit-identical (see [`tsgb_linalg::gemm`]); the cache only holds ids
/// whose shape made packing profitable.
fn mm(a: &Matrix, b_id: usize, b: &Matrix, packs: &PackCache, dst: &mut Matrix) {
    if let Some(panels) = packs.get(b_id) {
        matmul_prepacked_acc_into(a, panels, b.cols(), dst);
    } else {
        a.matmul_acc_into(b, dst);
    }
}

/// Recomputes node `i`'s value in place with the interpreter's own
/// kernels and operand order — the unfused path, also used to
/// materialize deferred prefixes for [`crate::Tape::eval`] and
/// invalidation fallback (which pass [`EMPTY_PACKS`]).
pub(crate) fn exec_node(nodes: &mut [Node], i: usize, pool: &mut MatrixPool, packs: &PackCache) {
    let (lo, hi) = nodes.split_at_mut(i);
    let node = &mut hi[0];
    let v = &mut node.value;
    match &node.op {
        Op::Leaf(_) => {}
        Op::Add(a, b) => lo[a.0].value.zip_map_into(&lo[b.0].value, |x, y| x + y, v),
        Op::Sub(a, b) => lo[a.0].value.zip_map_into(&lo[b.0].value, |x, y| x - y, v),
        Op::Mul(a, b) => lo[a.0].value.zip_map_into(&lo[b.0].value, |x, y| x * y, v),
        Op::Neg(a) => lo[a.0].value.map_into(|x| -x, v),
        Op::Scale(a, s) => {
            let s = *s;
            lo[a.0].value.map_into(|x| x * s, v)
        }
        Op::AddScalar(a, s) => {
            let s = *s;
            lo[a.0].value.map_into(|x| x + s, v)
        }
        Op::Detach(a) => v.copy_from(&lo[a.0].value),
        Op::Matmul(a, b) => {
            v.fill(0.0);
            mm(&lo[a.0].value, b.0, &lo[b.0].value, packs, v);
        }
        Op::Sigmoid(a) => lo[a.0].value.map_into(tsgb_linalg::detmath::sigmoid, v),
        Op::Tanh(a) => lo[a.0].value.map_into(tsgb_linalg::detmath::tanh, v),
        Op::Relu(a) => lo[a.0].value.map_into(|x| x.max(0.0), v),
        Op::LeakyRelu(a, slope) => {
            let slope = *slope;
            lo[a.0]
                .value
                .map_into(|x| if x >= 0.0 { x } else { slope * x }, v)
        }
        Op::Exp(a) => lo[a.0].value.map_into(f64::exp, v),
        Op::Ln(a) => lo[a.0].value.map_into(f64::ln, v),
        Op::Square(a) => lo[a.0].value.map_into(|x| x * x, v),
        Op::Abs(a) => lo[a.0].value.map_into(f64::abs, v),
        Op::Softplus(a) => lo[a.0]
            .value
            .map_into(|x| if x > 20.0 { x } else { (1.0 + x.exp()).ln() }, v),
        Op::Recip(a) => lo[a.0].value.map_into(|x| 1.0 / x, v),
        Op::Sum(a) => {
            let s = lo[a.0].value.sum();
            v.fill(s);
        }
        Op::Mean(a) => {
            let m = lo[a.0].value.mean();
            v.fill(m);
        }
        Op::AddRowBroadcast(a, row) => {
            v.copy_from(&lo[a.0].value);
            v.add_row_broadcast_assign(&lo[row.0].value);
        }
        Op::MulRowBroadcast(a, row) => {
            let x = &lo[a.0].value;
            let rv = &lo[row.0].value;
            for row_i in 0..x.rows() {
                for (o, (&xv, &sv)) in v
                    .row_mut(row_i)
                    .iter_mut()
                    .zip(x.row(row_i).iter().zip(rv.row(0)))
                {
                    *o = xv * sv;
                }
            }
        }
        Op::ConcatCols(a, b) => {
            let (xa, xb) = (&lo[a.0].value, &lo[b.0].value);
            let ca = xa.cols();
            for row in 0..xa.rows() {
                v.row_mut(row)[..ca].copy_from_slice(xa.row(row));
                v.row_mut(row)[ca..].copy_from_slice(xb.row(row));
            }
        }
        Op::SliceCols(a, start, end) => {
            let (start, end) = (*start, *end);
            let x = &lo[a.0].value;
            for row in 0..x.rows() {
                v.row_mut(row).copy_from_slice(&x.row(row)[start..end]);
            }
        }
        Op::ConcatRows(parts) => {
            let mut offset = 0;
            for p in parts {
                let m = &lo[p.0].value;
                for row in 0..m.rows() {
                    v.row_mut(offset + row).copy_from_slice(m.row(row));
                }
                offset += m.rows();
            }
        }
        Op::SliceRows(a, start, end) => {
            let (start, end) = (*start, *end);
            let x = &lo[a.0].value;
            for row in start..end {
                v.row_mut(row - start).copy_from_slice(x.row(row));
            }
        }
        Op::Im2Col(a, kernel) => {
            let kernel = *kernel;
            let x = &lo[a.0].value;
            let (t_len, c) = x.shape();
            let half = kernel / 2;
            v.fill(0.0);
            for row in 0..t_len {
                for k in 0..kernel {
                    let src = row as isize + k as isize - half as isize;
                    if src < 0 || src >= t_len as isize {
                        continue;
                    }
                    v.row_mut(row)[k * c..(k + 1) * c].copy_from_slice(x.row(src as usize));
                }
            }
        }
        Op::RowMean(a) => {
            let x = &lo[a.0].value;
            let inv = 1.0 / x.cols() as f64;
            for row in 0..x.rows() {
                v.row_mut(row)[0] = x.row(row).iter().sum::<f64>() * inv;
            }
        }
        Op::Transpose(a) => {
            let x = &lo[a.0].value;
            for row in 0..x.rows() {
                for col in 0..x.cols() {
                    v[(col, row)] = x[(row, col)];
                }
            }
        }
        Op::Affine { x, w, b, act } => {
            let act = *act;
            v.fill(0.0);
            mm(&lo[x.0].value, w.0, &lo[w.0].value, packs, v);
            v.add_row_broadcast_assign(&lo[b.0].value);
            act.apply(v);
        }
        Op::Affine2 { x, w, h, u, b, act } => {
            let act = *act;
            v.fill(0.0);
            mm(&lo[x.0].value, w.0, &lo[w.0].value, packs, v);
            // Separate h U accumulator, added afterwards: identical
            // summation order to the record path.
            let mut hu = pool.take_zeroed(v.rows(), v.cols());
            mm(&lo[h.0].value, u.0, &lo[u.0].value, packs, &mut hu);
            v.add_assign(&hu);
            pool.put(hu);
            v.add_row_broadcast_assign(&lo[b.0].value);
            act.apply(v);
        }
    }
}

/// Runs a fused activation pair: computes `src`'s pre-activation
/// directly into `out`'s buffer, then applies `out`'s activation in
/// place. `src`'s own buffer is left stale (dead). Bit-identical to
/// the unfused pair: the activation sees the exact pre-activation bits
/// the producer would have stored.
fn exec_fused(nodes: &mut [Node], src: usize, out: usize, pool: &mut MatrixPool, packs: &PackCache) {
    let (lo, hi) = nodes.split_at_mut(out);
    let act = match hi[0].op {
        Op::Sigmoid(_) => FusedAct::Sigmoid,
        Op::Tanh(_) => FusedAct::Tanh,
        Op::Relu(_) => FusedAct::Relu,
        _ => unreachable!("only output-derivative activations fuse"),
    };
    let v = &mut hi[0].value;
    match &lo[src].op {
        Op::Matmul(a, b) => {
            v.fill(0.0);
            mm(&lo[a.0].value, b.0, &lo[b.0].value, packs, v);
        }
        Op::Affine { x, w, b, .. } => {
            v.fill(0.0);
            mm(&lo[x.0].value, w.0, &lo[w.0].value, packs, v);
            v.add_row_broadcast_assign(&lo[b.0].value);
        }
        Op::Affine2 { x, w, h, u, b, .. } => {
            v.fill(0.0);
            mm(&lo[x.0].value, w.0, &lo[w.0].value, packs, v);
            let mut hu = pool.take_zeroed(v.rows(), v.cols());
            mm(&lo[h.0].value, u.0, &lo[u.0].value, packs, &mut hu);
            v.add_assign(&hu);
            pool.put(hu);
            v.add_row_broadcast_assign(&lo[b.0].value);
        }
        _ => unreachable!("only matmul/identity-affine producers fuse"),
    }
    act.apply(v);
}

// ---------------------------------------------------------------------
// Backward compilation + execution
// ---------------------------------------------------------------------

impl BwdPlan {
    /// Simulates the interpreter's reverse sweep from `loss` over the
    /// frozen graph, recording which nodes are reached, the first-touch
    /// flag of every edge (in interpreter visit order), and which steps
    /// need a scratch buffer — then takes those buffers from the pool.
    ///
    /// The edge enumeration here and the arms of [`BwdPlan::run`] must
    /// stay in lockstep: both walk a step's edges in the same order,
    /// consuming one flag each.
    fn compile(nodes: &[Node], loss: usize, pool: &mut MatrixPool) -> BwdPlan {
        let mut has = vec![false; nodes.len()];
        has[loss] = true;
        let mut steps = Vec::new();
        let mut flags = Vec::new();
        let mut scratch = Vec::new();
        // Node ids whose transpose the sweep wants cached (`matmul_t`
        // right-hand sides of live edges); deduped below. Profitable
        // shapes route to the prepacked panel cache instead.
        let mut tneed: Vec<u32> = Vec::new();
        let mut pneed: Vec<u32> = Vec::new();
        for i in (0..=loss).rev() {
            if !has[i] {
                continue;
            }
            let flags_at = flags.len() as u32;
            // Activated affines always need a dz temporary; mapped
            // edges add one below when they are not first-touch.
            let mut need_scratch = matches!(
                &nodes[i].op,
                Op::Affine { act, .. } | Op::Affine2 { act, .. } if *act != FusedAct::Identity
            );
            {
                // `mapped` edges compute an elementwise delta: a
                // non-first touch needs a temporary to add from.
                // A live `matmul_t` right-hand side: prepacked panels
                // when the multiply's shape is profitable, else the
                // plain transpose cache. The deltas multiplied against
                // the transpose are all node-`i`-shaped, so `m` is
                // this node's row count.
                let m = nodes[i].value.rows();
                let mut twant = |rhs: usize| {
                    let (n, k) = nodes[rhs].value.shape();
                    if pack_profitable(m, k, n) {
                        pneed.push(rhs as u32);
                    } else {
                        tneed.push(rhs as u32);
                    }
                };
                let mut edge = |t: usize, mapped: bool| {
                    if nograd(&nodes[t].op) {
                        // Pruned edge: the flag slot is kept (so the
                        // positional indexing in `run_step` matches)
                        // but never read, and the leaf stays
                        // unreached.
                        flags.push(true);
                        return;
                    }
                    let fresh = !has[t];
                    has[t] = true;
                    flags.push(fresh);
                    if mapped && !fresh {
                        need_scratch = true;
                    }
                };
                match &nodes[i].op {
                    Op::Leaf(_) | Op::Detach(_) => continue,
                    Op::Add(a, b) => {
                        edge(a.0, false);
                        edge(b.0, false);
                    }
                    Op::Sub(a, b) => {
                        edge(a.0, false);
                        edge(b.0, true);
                    }
                    Op::Mul(a, b) => {
                        edge(a.0, true);
                        edge(b.0, true);
                    }
                    Op::Neg(a)
                    | Op::Scale(a, _)
                    | Op::Sigmoid(a)
                    | Op::Tanh(a)
                    | Op::Relu(a)
                    | Op::LeakyRelu(a, _)
                    | Op::Exp(a)
                    | Op::Ln(a)
                    | Op::Square(a)
                    | Op::Abs(a)
                    | Op::Softplus(a)
                    | Op::Recip(a) => edge(a.0, true),
                    Op::AddScalar(a, _) => edge(a.0, false),
                    Op::Matmul(a, b) => {
                        edge(a.0, false);
                        edge(b.0, false);
                        if !nograd(&nodes[a.0].op) {
                            twant(b.0);
                        }
                    }
                    Op::Sum(a)
                    | Op::Mean(a)
                    | Op::SliceCols(a, _, _)
                    | Op::SliceRows(a, _, _)
                    | Op::Im2Col(a, _)
                    | Op::RowMean(a)
                    | Op::Transpose(a) => edge(a.0, false),
                    Op::AddRowBroadcast(a, row) => {
                        edge(a.0, false);
                        edge(row.0, false);
                    }
                    Op::MulRowBroadcast(a, row) => {
                        edge(a.0, true);
                        edge(row.0, false);
                    }
                    Op::ConcatCols(a, b) => {
                        edge(a.0, false);
                        edge(b.0, false);
                    }
                    Op::ConcatRows(parts) => {
                        for p in parts {
                            edge(p.0, false);
                        }
                    }
                    Op::Affine { x, w, b, .. } => {
                        edge(x.0, false);
                        edge(w.0, false);
                        edge(b.0, false);
                        if !nograd(&nodes[x.0].op) {
                            twant(w.0);
                        }
                    }
                    Op::Affine2 { x, w, h, u, b, .. } => {
                        edge(x.0, false);
                        edge(w.0, false);
                        edge(h.0, false);
                        edge(u.0, false);
                        edge(b.0, false);
                        if !nograd(&nodes[x.0].op) {
                            twant(w.0);
                        }
                        if !nograd(&nodes[h.0].op) {
                            twant(u.0);
                        }
                    }
                }
            }
            let scratch_idx = if need_scratch {
                let (r, c) = nodes[i].value.shape();
                scratch.push(pool.take_uninit(r, c));
                (scratch.len() - 1) as u32
            } else {
                u32::MAX
            };
            steps.push(BwdStep {
                node: i as u32,
                flags_at,
                scratch: scratch_idx,
            });
        }
        tneed.sort_unstable();
        tneed.dedup();
        let tcache = tneed
            .into_iter()
            .map(|id| {
                let (r, c) = nodes[id as usize].value.shape();
                (id, pool.take_uninit(c, r))
            })
            .collect();
        pneed.sort_unstable();
        pneed.dedup();
        let ptcache = PackCache {
            entries: pneed
                .into_iter()
                .map(|id| {
                    // The packed operand is the *transpose*, so the
                    // panel geometry swaps the node's axes.
                    let (n, k) = nodes[id as usize].value.shape();
                    (id, vec![0.0; packed_b_len(k, n)])
                })
                .collect(),
        };
        BwdPlan {
            loss,
            steps,
            flags,
            reached: has,
            scratch,
            tcache,
            ptcache,
        }
    }

    /// Runs the compiled sweep. Mirrors the interpreter exactly: the
    /// same kernels, same edge order, with the `Option` slot dance
    /// replaced by precomputed first-touch flags.
    fn run(
        &mut self,
        nodes: &[Node],
        grads: &mut Vec<Option<Matrix>>,
        pool: &mut MatrixPool,
        dead: &[bool],
    ) {
        let n = nodes.len();
        if grads.len() < n {
            grads.resize_with(n, || None);
        }
        // Slot maintenance: exactly the interpreter's end state has
        // `Some` on reached nodes and `None` elsewhere. Unreached
        // leftovers (from a previous different loss) retire to the
        // pool; reached slots get a buffer whose every element the
        // sweep overwrites before reading.
        for (i, slot) in grads.iter_mut().enumerate() {
            if self.reached.get(i).copied().unwrap_or(false) {
                if slot.is_none() {
                    let (r, c) = nodes[i].value.shape();
                    *slot = Some(pool.take_uninit(r, c));
                }
            } else if let Some(g) = slot.take() {
                pool.put(g);
            }
        }
        grads[self.loss]
            .as_mut()
            .expect("loss slot materialized above")
            .fill(1.0);

        let BwdPlan {
            steps,
            flags,
            scratch,
            tcache,
            ptcache,
            ..
        } = self;
        // Refresh the cached transposes and packed panels: values
        // (weights) change every step, the set of cached nodes never
        // does.
        for (id, buf) in tcache.iter_mut() {
            nodes[*id as usize].value.transpose_into(buf);
        }
        for (id, panels) in ptcache.entries.iter_mut() {
            pack_bt_panels(&nodes[*id as usize].value, panels);
        }
        for step in steps.iter() {
            let i = step.node as usize;
            // Contributions to node i come only from consumers (larger
            // indices, already processed), so grads[i] is final here.
            let (lo, hi) = grads.split_at_mut(i);
            let g: &Matrix = hi[0].as_ref().expect("reached grads are materialized");
            let fa = step.flags_at as usize;
            let sbuf = scratch.get_mut(step.scratch as usize);
            run_step(nodes, lo, g, i, &flags[fa..], sbuf, tcache, ptcache, dead);
        }
    }
}

/// Folds a borrowed delta into a slot: first touch copies (the
/// interpreter's `take_copy` install), later touches `add_assign`.
fn fold_ref(dst: &mut Matrix, fresh: bool, delta: &Matrix) {
    if fresh {
        dst.copy_from(delta);
    } else {
        dst.add_assign(delta);
    }
}

/// Prepares a `*_acc_into` target: first touch zeroes the slot (the
/// interpreter's `take_zeroed`), so accumulating kernels see the same
/// bits either way.
fn acc_slot(slot: &mut Option<Matrix>, fresh: bool) -> &mut Matrix {
    let dst = slot.as_mut().expect("reached grads are materialized");
    if fresh {
        dst.fill(0.0);
    }
    dst
}

/// `dst += a * (node rhs's value)ᵀ`, via whichever cache
/// [`BwdPlan::compile`] routed the edge to: prepacked transpose
/// panels when the shape cleared [`pack_profitable`] (the predicate
/// re-derives identically here — all inputs are frozen shapes), else
/// the plain matmul against the cached transpose. Both are
/// bit-identical to `a.matmul_t_acc_into(rhs, dst)` (equality
/// documented on [`Matrix::matmul_t`] and [`tsgb_linalg::gemm`]).
fn mul_t_acc(
    nodes: &[Node],
    tcache: &[(u32, Matrix)],
    ptcache: &PackCache,
    a: &Matrix,
    rhs: usize,
    dst: &mut Matrix,
) {
    let (n, k) = nodes[rhs].value.shape();
    if pack_profitable(a.rows(), k, n) {
        let panels = ptcache
            .get(rhs)
            .expect("profitable matmul_t RHS has packed panels");
        matmul_prepacked_acc_into(a, panels, n, dst);
    } else {
        let t = &tcache
            .iter()
            .find(|(id, _)| *id as usize == rhs)
            .expect("live matmul_t RHS has a cached transpose")
            .1;
        a.matmul_acc_into(t, dst);
    }
}

/// Executes one backward step for node `i`: `g` is its (final)
/// incoming gradient, `lo` the grad slots of all earlier nodes,
/// `flags` this step's first-touch flags, `sbuf` its scratch buffer,
/// `tcache`/`ptcache` the plan's per-run caches of transposed
/// `matmul_t` right-hand sides (plain and prepacked).
///
/// Every arm replicates the interpreter arm for the same op — same
/// kernels, same operand order, with first-touch flags standing in
/// for the interpreter's empty-slot checks. Two sanctioned
/// deviations, both bit-identical: edges into no-grad leaves are
/// skipped entirely (`live` mirrors compile's pruning — nothing else
/// reads those slots), and `x.matmul_t_acc_into(w, ..)` runs through
/// [`mul_t_acc`].
#[allow(clippy::too_many_arguments)]
fn run_step(
    nodes: &[Node],
    lo: &mut [Option<Matrix>],
    g: &Matrix,
    i: usize,
    flags: &[bool],
    mut sbuf: Option<&mut Matrix>,
    tcache: &[(u32, Matrix)],
    ptcache: &PackCache,
    dead: &[bool],
) {
    let live = |t: usize| !nograd(&nodes[t].op);
    // A mapped (elementwise-delta) edge: first touch computes straight
    // into the slot; later touches compute into scratch and add.
    macro_rules! mapped {
        ($t:expr, $fresh:expr, |$dst:ident| $compute:expr) => {{
            if $fresh {
                let $dst: &mut Matrix =
                    lo[$t].as_mut().expect("reached grads are materialized");
                $compute;
            } else {
                let $dst: &mut Matrix =
                    sbuf.as_deref_mut().expect("non-fresh mapped edge has scratch");
                $compute;
                lo[$t]
                    .as_mut()
                    .expect("reached grads are materialized")
                    .add_assign($dst);
            }
        }};
    }
    match &nodes[i].op {
        Op::Leaf(_) | Op::Detach(_) => unreachable!("no backward steps are compiled for these"),
        Op::Add(a, b) => {
            if live(a.0) {
                fold_ref(
                    lo[a.0].as_mut().expect("reached grads are materialized"),
                    flags[0],
                    g,
                );
            }
            if live(b.0) {
                fold_ref(
                    lo[b.0].as_mut().expect("reached grads are materialized"),
                    flags[1],
                    g,
                );
            }
        }
        Op::Sub(a, b) => {
            if live(a.0) {
                fold_ref(
                    lo[a.0].as_mut().expect("reached grads are materialized"),
                    flags[0],
                    g,
                );
            }
            if live(b.0) {
                mapped!(b.0, flags[1], |dst| g.map_into(|x| -x, dst));
            }
        }
        Op::Mul(a, b) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[b.0].value,
                    |gi, bi| gi * bi,
                    dst
                ));
            }
            if live(b.0) {
                mapped!(b.0, flags[1], |dst| g.zip_map_into(
                    &nodes[a.0].value,
                    |gi, ai| gi * ai,
                    dst
                ));
            }
        }
        Op::Neg(a) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.map_into(|x| -x, dst));
            }
        }
        Op::Scale(a, s) => {
            let s = *s;
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.map_into(|x| x * s, dst));
            }
        }
        Op::AddScalar(a, _) => {
            if live(a.0) {
                fold_ref(
                    lo[a.0].as_mut().expect("reached grads are materialized"),
                    flags[0],
                    g,
                );
            }
        }
        Op::Matmul(a, b) => {
            if live(a.0) {
                let ga = acc_slot(&mut lo[a.0], flags[0]);
                mul_t_acc(nodes, tcache, ptcache, g, b.0, ga);
            }
            if live(b.0) {
                let gb = acc_slot(&mut lo[b.0], flags[1]);
                nodes[a.0].value.t_matmul_acc_into(g, gb);
            }
        }
        Op::Sigmoid(a) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[i].value,
                    |gi, yi| gi * yi * (1.0 - yi),
                    dst
                ));
            }
        }
        Op::Tanh(a) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[i].value,
                    |gi, yi| gi * (1.0 - yi * yi),
                    dst
                ));
            }
        }
        Op::Relu(a) if !live(a.0) => {}
        Op::Relu(a) => {
            if dead[a.0] {
                // Fused pair: the pre-activation buffer is stale, but
                // `y = max(x, 0)` makes `y > 0` decide identically to
                // `x > 0` (x > 0 => y = x; x <= 0 => y = 0).
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[i].value,
                    |gi, yi| if yi > 0.0 { gi } else { 0.0 },
                    dst
                ));
            } else {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[a.0].value,
                    |gi, xi| if xi > 0.0 { gi } else { 0.0 },
                    dst
                ));
            }
        }
        Op::LeakyRelu(a, slope) => {
            let slope = *slope;
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[a.0].value,
                    |gi, xi| if xi >= 0.0 { gi } else { slope * gi },
                    dst
                ));
            }
        }
        Op::Exp(a) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[i].value,
                    |gi, yi| gi * yi,
                    dst
                ));
            }
        }
        Op::Ln(a) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[a.0].value,
                    |gi, xi| gi / xi,
                    dst
                ));
            }
        }
        Op::Square(a) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[a.0].value,
                    |gi, xi| 2.0 * xi * gi,
                    dst
                ));
            }
        }
        Op::Abs(a) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[a.0].value,
                    |gi, xi| gi * xi.signum() * (xi != 0.0) as u8 as f64,
                    dst
                ));
            }
        }
        Op::Softplus(a) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[a.0].value,
                    |gi, xi| gi / (1.0 + (-xi).exp()),
                    dst
                ));
            }
        }
        Op::Recip(a) => {
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| g.zip_map_into(
                    &nodes[i].value,
                    |gi, yi| -gi * yi * yi,
                    dst
                ));
            }
        }
        Op::Sum(a) => {
            if live(a.0) {
                let g00 = g[(0, 0)];
                let ga = acc_slot(&mut lo[a.0], flags[0]);
                ga.map_inplace(|v| v + g00);
            }
        }
        Op::Mean(a) => {
            if live(a.0) {
                let (r, c) = nodes[a.0].value.shape();
                let gm = g[(0, 0)] / (r * c) as f64;
                let ga = acc_slot(&mut lo[a.0], flags[0]);
                ga.map_inplace(|v| v + gm);
            }
        }
        Op::AddRowBroadcast(a, row) => {
            if live(a.0) {
                fold_ref(
                    lo[a.0].as_mut().expect("reached grads are materialized"),
                    flags[0],
                    g,
                );
            }
            if live(row.0) {
                let gr = acc_slot(&mut lo[row.0], flags[1]);
                g.col_sums_acc_into(gr);
            }
        }
        Op::MulRowBroadcast(a, row) => {
            let rv = &nodes[row.0].value;
            if live(a.0) {
                mapped!(a.0, flags[0], |dst| {
                    for r in 0..g.rows() {
                        for (o, (&gi, &sv)) in dst
                            .row_mut(r)
                            .iter_mut()
                            .zip(g.row(r).iter().zip(rv.row(0)))
                        {
                            *o = gi * sv;
                        }
                    }
                });
            }
            if live(row.0) {
                let x = &nodes[a.0].value;
                let grow = acc_slot(&mut lo[row.0], flags[1]);
                for r in 0..g.rows() {
                    for (o, (&gi, &xi)) in grow
                        .row_mut(0)
                        .iter_mut()
                        .zip(g.row(r).iter().zip(x.row(r)))
                    {
                        *o += gi * xi;
                    }
                }
            }
        }
        Op::ConcatCols(a, b) => {
            let ca = nodes[a.0].value.cols();
            if live(a.0) {
                let ga = acc_slot(&mut lo[a.0], flags[0]);
                for r in 0..g.rows() {
                    for (o, &v) in ga.row_mut(r).iter_mut().zip(&g.row(r)[..ca]) {
                        *o += v;
                    }
                }
            }
            if live(b.0) {
                let gb = acc_slot(&mut lo[b.0], flags[1]);
                for r in 0..g.rows() {
                    for (o, &v) in gb.row_mut(r).iter_mut().zip(&g.row(r)[ca..]) {
                        *o += v;
                    }
                }
            }
        }
        Op::SliceCols(a, start, end) => {
            if live(a.0) {
                let (start, end) = (*start, *end);
                let ga = acc_slot(&mut lo[a.0], flags[0]);
                for r in 0..g.rows() {
                    for (o, &v) in ga.row_mut(r)[start..end].iter_mut().zip(g.row(r)) {
                        *o += v;
                    }
                }
            }
        }
        Op::ConcatRows(parts) => {
            let mut offset = 0;
            for (k, p) in parts.iter().enumerate() {
                let rows = nodes[p.0].value.rows();
                if live(p.0) {
                    let gp = acc_slot(&mut lo[p.0], flags[k]);
                    for r in 0..rows {
                        for (o, &v) in gp.row_mut(r).iter_mut().zip(g.row(offset + r)) {
                            *o += v;
                        }
                    }
                }
                offset += rows;
            }
        }
        Op::SliceRows(a, start, _end) => {
            if live(a.0) {
                let start = *start;
                let ga = acc_slot(&mut lo[a.0], flags[0]);
                for r in 0..g.rows() {
                    for (o, &v) in ga.row_mut(start + r).iter_mut().zip(g.row(r)) {
                        *o += v;
                    }
                }
            }
        }
        Op::Im2Col(a, kernel) if !live(a.0) => {
            let _ = kernel;
        }
        Op::Im2Col(a, kernel) => {
            let kernel = *kernel;
            let (t_len, c) = nodes[a.0].value.shape();
            let half = kernel / 2;
            let ga = acc_slot(&mut lo[a.0], flags[0]);
            for row in 0..t_len {
                for k in 0..kernel {
                    let src = row as isize + k as isize - half as isize;
                    if src < 0 || src >= t_len as isize {
                        continue;
                    }
                    let gs = &g.row(row)[k * c..(k + 1) * c];
                    for (o, &v) in ga.row_mut(src as usize).iter_mut().zip(gs) {
                        *o += v;
                    }
                }
            }
        }
        Op::RowMean(a) => {
            if live(a.0) {
                let (r, c) = nodes[a.0].value.shape();
                let inv = 1.0 / c as f64;
                let ga = acc_slot(&mut lo[a.0], flags[0]);
                for row in 0..r {
                    let gv = g[(row, 0)] * inv;
                    for o in ga.row_mut(row) {
                        *o += gv;
                    }
                }
            }
        }
        Op::Transpose(a) => {
            if live(a.0) {
                let ga = acc_slot(&mut lo[a.0], flags[0]);
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        ga[(c, r)] += g[(r, c)];
                    }
                }
            }
        }
        Op::Affine { x, w, b, act } => {
            let dz: &Matrix = if *act == FusedAct::Identity {
                g
            } else {
                let d = sbuf.as_deref_mut().expect("activated affine has scratch");
                act.dz_into(g, &nodes[i].value, d);
                d
            };
            if live(x.0) {
                let gx = acc_slot(&mut lo[x.0], flags[0]);
                mul_t_acc(nodes, tcache, ptcache, dz, w.0, gx);
            }
            if live(w.0) {
                let gw = acc_slot(&mut lo[w.0], flags[1]);
                nodes[x.0].value.t_matmul_acc_into(dz, gw);
            }
            if live(b.0) {
                let gb = acc_slot(&mut lo[b.0], flags[2]);
                dz.col_sums_acc_into(gb);
            }
        }
        Op::Affine2 { x, w, h, u, b, act } => {
            let dz: &Matrix = if *act == FusedAct::Identity {
                g
            } else {
                let d = sbuf.expect("activated affine2 has scratch");
                act.dz_into(g, &nodes[i].value, d);
                d
            };
            if live(x.0) {
                let gx = acc_slot(&mut lo[x.0], flags[0]);
                mul_t_acc(nodes, tcache, ptcache, dz, w.0, gx);
            }
            if live(w.0) {
                let gw = acc_slot(&mut lo[w.0], flags[1]);
                nodes[x.0].value.t_matmul_acc_into(dz, gw);
            }
            if live(h.0) {
                let gh = acc_slot(&mut lo[h.0], flags[2]);
                mul_t_acc(nodes, tcache, ptcache, dz, u.0, gh);
            }
            if live(u.0) {
                let gu = acc_slot(&mut lo[u.0], flags[3]);
                nodes[h.0].value.t_matmul_acc_into(dz, gu);
            }
            if live(b.0) {
                let gb = acc_slot(&mut lo[b.0], flags[4]);
                dz.col_sums_acc_into(gb);
            }
        }
    }
}
