//! Finite-difference gradient verification.
//!
//! Every layer and composite loss in this crate is validated against
//! central differences: perturb each parameter scalar by `±eps`,
//! re-evaluate the loss, and compare `(f+ - f-) / 2eps` with the
//! tape's analytic gradient. The relative-error criterion follows the
//! standard CS231n recipe.

use crate::params::Params;
use crate::tape::Tape;
use tsgb_linalg::Matrix;

/// Result of a gradient check: the largest relative error found and
/// where it occurred.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Worst relative error across all checked scalars.
    pub max_rel_err: f64,
    /// `(parameter name, flat index)` of the worst scalar.
    pub worst: Option<(String, usize)>,
    /// Number of scalars compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed at the given tolerance.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_err <= tol
    }
}

/// Verifies the analytic gradients of `loss_fn` (a closure that builds
/// a fresh tape over the current parameter values and returns the
/// scalar loss value after running backward and absorbing gradients
/// into `params`).
///
/// `stride` subsamples the scalars to keep large checks fast: every
/// `stride`-th scalar of every parameter is perturbed.
pub fn check(
    params: &mut Params,
    mut loss_fn: impl FnMut(&mut Params) -> f64,
    eps: f64,
    stride: usize,
) -> GradCheckReport {
    assert!(stride >= 1);
    // Evaluate once to populate analytic grads.
    let _ = loss_fn(params);
    let analytic: Vec<Matrix> = params.ids().map(|id| params.grad(id).clone()).collect();

    let mut max_rel_err: f64 = 0.0;
    let mut worst = None;
    let mut checked = 0;
    let ids: Vec<_> = params.ids().collect();
    for (pi, id) in ids.iter().enumerate() {
        let base = params.value(*id).clone();
        let n = base.len();
        let mut i = 0;
        while i < n {
            let mut plus = base.clone();
            plus.as_mut_slice()[i] += eps;
            params.set_value(*id, plus);
            let fp = loss_fn(params);

            let mut minus = base.clone();
            minus.as_mut_slice()[i] -= eps;
            params.set_value(*id, minus);
            let fm = loss_fn(params);

            params.set_value(*id, base.clone());

            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic[pi].as_slice()[i];
            let denom = a.abs().max(numeric.abs()).max(1e-8);
            let rel = (a - numeric).abs() / denom;
            checked += 1;
            if rel > max_rel_err {
                max_rel_err = rel;
                worst = Some((params.name(*id).to_string(), i));
            }
            i += stride;
        }
    }
    GradCheckReport {
        max_rel_err,
        worst,
        checked,
    }
}

/// Convenience wrapper: builds the standard loss closure shape used in
/// the tests — forward through `f` on a recycled tape (the same
/// reset-per-evaluation pattern the training loops use), backward,
/// absorb.
pub fn check_model(
    params: &mut Params,
    mut f: impl FnMut(&mut Tape, &crate::params::Binding) -> crate::tape::VarId,
    eps: f64,
    stride: usize,
) -> GradCheckReport {
    let mut t = Tape::new();
    check(
        params,
        move |p| {
            t.reset();
            let b = p.bind(&mut t);
            let loss = f(&mut t, &b);
            t.backward(loss);
            p.absorb_grads(&t, &b);
            t.value(loss)[(0, 0)]
        },
        eps,
        stride,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Conv1d, GruCell, LstmCell, Mlp};
    use crate::loss;
    use tsgb_linalg::rng::{randn_matrix, seeded};

    const TOL: f64 = 1e-5;
    const EPS: f64 = 1e-5;

    #[test]
    fn mlp_with_mse_gradients_check() {
        let mut rng = seeded(11);
        let mut p = Params::new();
        let mlp = Mlp::new(
            &mut p,
            "m",
            &[3, 6, 2],
            Activation::Tanh,
            Activation::None,
            &mut rng,
        );
        let x = randn_matrix(4, 3, &mut rng);
        let y = randn_matrix(4, 2, &mut rng);
        let report = check_model(
            &mut p,
            move |t, b| {
                let xv = t.constant(x.clone());
                let out = mlp.forward(t, b, xv);
                loss::mse_mean(t, out, &y)
            },
            EPS,
            1,
        );
        assert!(
            report.passes(TOL),
            "worst {:?}: {}",
            report.worst,
            report.max_rel_err
        );
        assert!(report.checked > 30);
    }

    #[test]
    fn gru_sequence_gradients_check() {
        let mut rng = seeded(12);
        let mut p = Params::new();
        let gru = GruCell::new(&mut p, "g", 2, 4, &mut rng);
        let xs: Vec<_> = (0..5).map(|_| randn_matrix(3, 2, &mut rng)).collect();
        let target = randn_matrix(3, 4, &mut rng);
        let report = check_model(
            &mut p,
            move |t, b| {
                let vars: Vec<_> = xs.iter().map(|x| t.constant(x.clone())).collect();
                let hs = gru.run(t, b, &vars, 3);
                loss::mse_mean(t, *hs.last().unwrap(), &target)
            },
            EPS,
            3,
        );
        assert!(
            report.passes(TOL),
            "worst {:?}: {}",
            report.worst,
            report.max_rel_err
        );
    }

    #[test]
    fn lstm_sequence_gradients_check() {
        let mut rng = seeded(13);
        let mut p = Params::new();
        let lstm = LstmCell::new(&mut p, "l", 2, 3, &mut rng);
        let xs: Vec<_> = (0..4).map(|_| randn_matrix(2, 2, &mut rng)).collect();
        let target = randn_matrix(2, 3, &mut rng);
        let report = check_model(
            &mut p,
            move |t, b| {
                let vars: Vec<_> = xs.iter().map(|x| t.constant(x.clone())).collect();
                let hs = lstm.run(t, b, &vars, 2);
                loss::mse_mean(t, *hs.last().unwrap(), &target)
            },
            EPS,
            3,
        );
        assert!(
            report.passes(TOL),
            "worst {:?}: {}",
            report.worst,
            report.max_rel_err
        );
    }

    #[test]
    fn conv1d_gradients_check() {
        let mut rng = seeded(14);
        let mut p = Params::new();
        let conv = Conv1d::new(&mut p, "c", 2, 3, 3, &mut rng);
        let x = randn_matrix(6, 2, &mut rng);
        let y = randn_matrix(6, 3, &mut rng);
        let report = check_model(
            &mut p,
            move |t, b| {
                let xv = t.constant(x.clone());
                let out = conv.forward(t, b, xv);
                loss::mse_mean(t, out, &y)
            },
            EPS,
            1,
        );
        assert!(
            report.passes(TOL),
            "worst {:?}: {}",
            report.worst,
            report.max_rel_err
        );
    }

    #[test]
    fn bce_and_kl_gradients_check() {
        let mut rng = seeded(15);
        let mut p = Params::new();
        let w = p.register("w", randn_matrix(3, 4, &mut rng));
        let targets = tsgb_linalg::Matrix::from_fn(3, 4, |r, c| ((r + c) % 2) as f64);
        let report = check_model(
            &mut p,
            move |t, b| loss::bce_with_logits_mean(t, b.var(w), &targets),
            EPS,
            1,
        );
        assert!(report.passes(TOL), "bce: {}", report.max_rel_err);

        let mut p2 = Params::new();
        let mu = p2.register("mu", randn_matrix(3, 4, &mut rng));
        let lv = p2.register("lv", randn_matrix(3, 4, &mut rng).scale(0.3));
        let report2 = check_model(
            &mut p2,
            move |t, b| loss::gaussian_kl_mean(t, b.var(mu), b.var(lv)),
            EPS,
            1,
        );
        assert!(report2.passes(TOL), "kl: {}", report2.max_rel_err);
    }

    #[test]
    fn recip_check() {
        let mut rng = seeded(18);
        let mut p = Params::new();
        // keep inputs away from zero
        let x = p.register("x", randn_matrix(3, 3, &mut rng).map(|v| v.abs() + 1.0));
        let report = check_model(
            &mut p,
            move |t, b| {
                let r = t.recip(b.var(x));
                let sq = t.square(r);
                t.mean(sq)
            },
            EPS,
            1,
        );
        assert!(report.passes(TOL), "{}", report.max_rel_err);
    }

    #[test]
    fn mul_row_broadcast_check() {
        let mut rng = seeded(17);
        let mut p = Params::new();
        let x = p.register("x", randn_matrix(4, 3, &mut rng));
        let row = p.register("row", randn_matrix(1, 3, &mut rng));
        let report = check_model(
            &mut p,
            move |t, b| {
                let y = t.mul_row_broadcast(b.var(x), b.var(row));
                let sq = t.square(y);
                t.mean(sq)
            },
            EPS,
            1,
        );
        assert!(report.passes(TOL), "{}", report.max_rel_err);
    }

    #[test]
    fn fused_affine_act_gradients_check() {
        use crate::tape::FusedAct;
        let mut rng = seeded(19);
        for act in [
            FusedAct::Identity,
            FusedAct::Sigmoid,
            FusedAct::Tanh,
            FusedAct::Relu,
        ] {
            let mut p = Params::new();
            let x = p.register("x", randn_matrix(4, 3, &mut rng));
            let w = p.register("w", randn_matrix(3, 2, &mut rng));
            let bias = p.register("b", randn_matrix(1, 2, &mut rng));
            let report = check_model(
                &mut p,
                move |t, b| {
                    let y = t.affine_act(b.var(x), b.var(w), b.var(bias), act);
                    let sq = t.square(y);
                    t.mean(sq)
                },
                EPS,
                1,
            );
            assert!(
                report.passes(TOL),
                "affine {act:?} worst {:?}: {}",
                report.worst,
                report.max_rel_err
            );
        }
    }

    #[test]
    fn fused_affine2_act_gradients_check() {
        use crate::tape::FusedAct;
        let mut rng = seeded(20);
        for act in [FusedAct::Sigmoid, FusedAct::Tanh] {
            let mut p = Params::new();
            let x = p.register("x", randn_matrix(3, 4, &mut rng));
            let w = p.register("w", randn_matrix(4, 2, &mut rng));
            let h = p.register("h", randn_matrix(3, 5, &mut rng));
            let u = p.register("u", randn_matrix(5, 2, &mut rng));
            let bias = p.register("b", randn_matrix(1, 2, &mut rng));
            let report = check_model(
                &mut p,
                move |t, b| {
                    let y = t.affine2_act(b.var(x), b.var(w), b.var(h), b.var(u), b.var(bias), act);
                    let sq = t.square(y);
                    t.mean(sq)
                },
                EPS,
                1,
            );
            assert!(
                report.passes(TOL),
                "affine2 {act:?} worst {:?}: {}",
                report.worst,
                report.max_rel_err
            );
        }
    }

    #[test]
    fn conv1d_edge_shape_gradients_check() {
        let mut rng = seeded(21);
        // (seq, in_ch, out_ch, kernel): single-timestep sequences where
        // same-padding covers the whole input, single channels, and a
        // non-square wide kernel.
        for (seq, in_ch, out_ch, kernel) in
            [(1, 2, 3, 3), (4, 1, 1, 3), (5, 3, 1, 5), (1, 1, 4, 1)]
        {
            let mut p = Params::new();
            let conv = Conv1d::new(&mut p, "c", in_ch, out_ch, kernel, &mut rng);
            let x = randn_matrix(seq, in_ch, &mut rng);
            let y = randn_matrix(seq, out_ch, &mut rng);
            let report = check_model(
                &mut p,
                move |t, b| {
                    let xv = t.constant(x.clone());
                    let out = conv.forward(t, b, xv);
                    loss::mse_mean(t, out, &y)
                },
                EPS,
                1,
            );
            assert!(
                report.passes(TOL),
                "conv ({seq},{in_ch},{out_ch},k{kernel}) worst {:?}: {}",
                report.worst,
                report.max_rel_err
            );
        }
    }

    #[test]
    fn fused_affine2_act_edge_shape_gradients_check() {
        use crate::tape::FusedAct;
        let mut rng = seeded(22);
        // (batch, in, hidden, out): single-sample batches, hidden size
        // one, and strongly non-square blocks.
        for (batch, input, hidden, out) in [(1, 3, 2, 4), (3, 2, 1, 1), (1, 1, 1, 1), (2, 7, 3, 5)]
        {
            for act in [FusedAct::Identity, FusedAct::Sigmoid, FusedAct::Tanh] {
                let mut p = Params::new();
                let x = p.register("x", randn_matrix(batch, input, &mut rng));
                let w = p.register("w", randn_matrix(input, out, &mut rng));
                let h = p.register("h", randn_matrix(batch, hidden, &mut rng));
                let u = p.register("u", randn_matrix(hidden, out, &mut rng));
                let bias = p.register("b", randn_matrix(1, out, &mut rng));
                let report = check_model(
                    &mut p,
                    move |t, b| {
                        let y = t.affine2_act(
                            b.var(x),
                            b.var(w),
                            b.var(h),
                            b.var(u),
                            b.var(bias),
                            act,
                        );
                        let sq = t.square(y);
                        t.mean(sq)
                    },
                    EPS,
                    1,
                );
                assert!(
                    report.passes(TOL),
                    "affine2 ({batch},{input},{hidden},{out}) {act:?} worst {:?}: {}",
                    report.worst,
                    report.max_rel_err
                );
            }
        }
    }

    #[test]
    fn abs_and_softplus_and_broadcast_check() {
        let mut rng = seeded(16);
        let mut p = Params::new();
        let w = p.register("w", randn_matrix(4, 3, &mut rng));
        let bias = p.register("b", randn_matrix(1, 3, &mut rng));
        let report = check_model(
            &mut p,
            move |t, b| {
                let x = t.add_row_broadcast(b.var(w), b.var(bias));
                let sp = t.softplus(x);
                let a = t.abs(sp);
                let rm = t.row_mean(a);
                let tr = t.transpose(rm);
                t.mean(tr)
            },
            EPS,
            1,
        );
        assert!(report.passes(TOL), "{}", report.max_rel_err);
    }
}
