//! Deterministic seeded-loop fallbacks for the proptest properties in
//! `autodiff_properties.rs` (opt-in via the `proptest` feature). These
//! always run, with no external deps.

use tsgb_linalg::rng::{seeded, uniform_matrix};
use tsgb_nn::gradcheck;
use tsgb_nn::params::Params;
use tsgb_nn::tape::Tape;
use tsgb_rand::Rng;

#[test]
fn gradient_of_linear_combination_is_exact_seeded() {
    let mut rng = seeded(0xD1);
    for _ in 0..10 {
        let x = uniform_matrix(3, 3, -2.0, 2.0, &mut rng);
        let y = uniform_matrix(3, 3, -2.0, 2.0, &mut rng);
        let a = rng.gen_range(-3.0..3.0);
        let b = rng.gen_range(-3.0..3.0);
        let mut t = Tape::new();
        let xv = t.leaf(x);
        let yv = t.leaf(y);
        let ax = t.scale(xv, a);
        let by = t.scale(yv, b);
        let sum = t.add(ax, by);
        let loss = t.sum(sum);
        t.backward(loss);
        for &g in t.grad(xv).as_slice() {
            assert!((g - a).abs() < 1e-12);
        }
        for &g in t.grad(yv).as_slice() {
            assert!((g - b).abs() < 1e-12);
        }
    }
}

#[test]
fn random_composite_graphs_gradcheck_seeded() {
    let mut rng = seeded(0xD2);
    for round in 0..8 {
        let w = uniform_matrix(2, 3, -2.0, 2.0, &mut rng);
        let v = uniform_matrix(3, 2, -2.0, 2.0, &mut rng);
        let pick = round % 4;
        let mut p = Params::new();
        let wid = p.register("w", w);
        let vid = p.register("v", v);
        let report = gradcheck::check_model(
            &mut p,
            move |t, b| {
                let wv = b.var(wid);
                let vv = b.var(vid);
                let prod = t.matmul(wv, vv);
                let act = match pick {
                    0 => t.tanh(prod),
                    1 => t.sigmoid(prod),
                    2 => t.softplus(prod),
                    _ => {
                        let s = t.square(prod);
                        t.leaky_relu(s, 0.1)
                    }
                };
                let sq = t.square(act);
                t.mean(sq)
            },
            1e-5,
            1,
        );
        assert!(
            report.passes(2e-4),
            "rel err {} at {:?}",
            report.max_rel_err,
            report.worst
        );
    }
}

#[test]
fn reuse_accumulates_seeded() {
    let mut rng = seeded(0xD3);
    for _ in 0..6 {
        let x = uniform_matrix(2, 2, -2.0, 2.0, &mut rng);
        let mut t = Tape::new();
        let xv = t.leaf(x);
        let s1 = t.sum(xv);
        let s2 = t.sum(xv);
        let loss = t.add(s1, s2);
        t.backward(loss);
        for &g in t.grad(xv).as_slice() {
            assert!((g - 2.0).abs() < 1e-12);
        }
    }
}

#[test]
fn unused_leaves_have_zero_gradients_seeded() {
    let mut rng = seeded(0xD4);
    for _ in 0..6 {
        let x = uniform_matrix(2, 2, -2.0, 2.0, &mut rng);
        let y = uniform_matrix(2, 2, -2.0, 2.0, &mut rng);
        let mut t = Tape::new();
        let xv = t.leaf(x);
        let yv = t.leaf(y);
        let sq = t.square(xv);
        let loss = t.mean(sq);
        t.backward(loss);
        assert!(t.grad(yv).as_slice().iter().all(|&g| g == 0.0));
    }
}
