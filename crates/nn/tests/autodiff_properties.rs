//! Property tests on the gradient tape: linearity of differentiation
//! and randomized finite-difference agreement on composite graphs.

use proptest::prelude::*;
use tsgb_linalg::Matrix;
use tsgb_nn::gradcheck;
use tsgb_nn::params::Params;
use tsgb_nn::tape::Tape;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// d(sum(a*x + b*y))/dx = a everywhere — gradients of linear maps
    /// are exact constants.
    #[test]
    fn gradient_of_linear_combination_is_exact(
        x in small_matrix(3, 3),
        y in small_matrix(3, 3),
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let mut t = Tape::new();
        let xv = t.leaf(x);
        let yv = t.leaf(y);
        let ax = t.scale(xv, a);
        let by = t.scale(yv, b);
        let sum = t.add(ax, by);
        let loss = t.sum(sum);
        t.backward(loss);
        for &g in t.grad(xv).as_slice() {
            prop_assert!((g - a).abs() < 1e-12);
        }
        for &g in t.grad(yv).as_slice() {
            prop_assert!((g - b).abs() < 1e-12);
        }
    }

    /// Random composite graphs agree with central finite differences.
    #[test]
    fn random_composite_graphs_gradcheck(
        w in small_matrix(2, 3),
        v in small_matrix(3, 2),
        pick in 0usize..4,
    ) {
        let mut p = Params::new();
        let wid = p.register("w", w);
        let vid = p.register("v", v);
        let report = gradcheck::check_model(
            &mut p,
            move |t, b| {
                let wv = b.var(wid);
                let vv = b.var(vid);
                let prod = t.matmul(wv, vv); // 2x2
                let act = match pick {
                    0 => t.tanh(prod),
                    1 => t.sigmoid(prod),
                    2 => t.softplus(prod),
                    _ => {
                        let s = t.square(prod);
                        t.leaky_relu(s, 0.1)
                    }
                };
                let sq = t.square(act);
                t.mean(sq)
            },
            1e-5,
            1,
        );
        prop_assert!(report.passes(2e-4), "rel err {} at {:?}", report.max_rel_err, report.worst);
    }

    /// Gradients accumulate additively when a node is reused.
    #[test]
    fn reuse_accumulates(x in small_matrix(2, 2)) {
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        // loss = sum(x) + sum(x) => grad = 2 everywhere
        let s1 = t.sum(xv);
        let s2 = t.sum(xv);
        let loss = t.add(s1, s2);
        t.backward(loss);
        for &g in t.grad(xv).as_slice() {
            prop_assert!((g - 2.0).abs() < 1e-12);
        }
    }

    /// Constants (non-parameter leaves) never corrupt parameter grads:
    /// grad wrt an unused leaf is exactly zero.
    #[test]
    fn unused_leaves_have_zero_gradients(x in small_matrix(2, 2), y in small_matrix(2, 2)) {
        let mut t = Tape::new();
        let xv = t.leaf(x);
        let yv = t.leaf(y);
        let sq = t.square(xv);
        let loss = t.mean(sq);
        t.backward(loss);
        prop_assert!(t.grad(yv).as_slice().iter().all(|&g| g == 0.0));
    }
}
