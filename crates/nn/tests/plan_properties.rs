//! Compiled-plan equivalence properties: replaying a frozen execution
//! plan must be a pure performance optimization. Every test here
//! trains the same seeded workload twice — once with plan compilation
//! on (record once, replay every later step) and once on the
//! interpreted tape — and demands bit-for-bit identical parameters,
//! while also pinning the capture/replay/invalidation counters the
//! plan machinery reports.

use tsgb_linalg::rng::{randn_matrix, seeded};
use tsgb_linalg::Matrix;
use tsgb_nn::layers::{GruCell, Linear};
use tsgb_nn::loss;
use tsgb_nn::optim::Adam;
use tsgb_nn::params::Params;
use tsgb_nn::tape::Tape;

/// One training step's worth of data: per-timestep inputs plus the
/// regression target (shaped to the step's batch size).
type StepData = (Vec<Matrix>, Matrix);

/// Seeded minibatches; `batch_of(i)` lets a test change the batch
/// size mid-training to exercise the invalidation fallback.
fn make_steps(
    steps: usize,
    seq_of: impl Fn(usize) -> usize,
    batch_of: impl Fn(usize) -> usize,
    features: usize,
) -> Vec<StepData> {
    let mut rng = seeded(911);
    (0..steps)
        .map(|i| {
            let xs = (0..seq_of(i))
                .map(|_| randn_matrix(batch_of(i), features, &mut rng))
                .collect();
            let target = randn_matrix(batch_of(i), features, &mut rng);
            (xs, target)
        })
        .collect()
}

/// Trains a GRU + linear head on `data`, recycling one tape across
/// steps, with plan compilation on or off. Returns the final
/// parameters and the tape's (captures, replays, invalidations).
fn train(plan: bool, data: &[StepData], features: usize, hidden: usize) -> (Params, (u64, u64, u64)) {
    let mut rng = seeded(7);
    let mut p = Params::new();
    let cell = GruCell::new(&mut p, "g", features, hidden, &mut rng);
    let head = Linear::new(&mut p, "h", hidden, features, &mut rng);
    let mut opt = Adam::new(1e-3);
    let mut tape = Tape::new();
    let mut binding = p.bind(&mut tape);
    for (xs, target) in data {
        tape.begin_step(plan);
        let t = &mut tape;
        p.rebind(t, &mut binding);
        let mut h = t.zeros(xs[0].rows(), hidden);
        for x in xs {
            let xv = t.constant_copy(x);
            h = cell.step(t, &binding, xv, h);
        }
        let pred = head.forward(t, &binding, h);
        let l = loss::mse_mean(t, pred, target);
        t.backward(l);
        p.absorb_grads(t, &binding);
        opt.step(&mut p);
    }
    let stats = tape.plan_stats();
    (p, stats)
}

/// Bitwise parameter comparison — not tolerance-based: the plan runs
/// the interpreter's own kernels against the same bits, so any
/// difference at all is a bug.
fn assert_params_bitwise(ctx: &str, a: &Params, b: &Params) {
    for id in a.ids() {
        let (av, bv) = (a.value(id).as_slice(), b.value(id).as_slice());
        assert_eq!(av.len(), bv.len(), "{ctx}: {:?} length", a.name(id));
        for (i, (x, y)) in av.iter().zip(bv).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: param {:?}[{i}] diverged: plan {x:e} vs tape {y:e}",
                a.name(id)
            );
        }
    }
}

/// Replay == interpretation, bitwise, across ragged shapes: batch=1,
/// hidden=1, and non-square everything.
#[test]
fn plan_matches_tape_bitwise_on_ragged_shapes() {
    const STEPS: usize = 12;
    for &(batch, seq, features, hidden) in &[(1usize, 5usize, 3usize, 4usize), (4, 6, 2, 1), (3, 7, 5, 2)] {
        let data = make_steps(STEPS, |_| seq, |_| batch, features);
        let (tape_params, tape_stats) = train(false, &data, features, hidden);
        let (plan_params, plan_stats) = train(true, &data, features, hidden);
        let ctx = format!("batch={batch} seq={seq} features={features} hidden={hidden}");
        assert_params_bitwise(&ctx, &plan_params, &tape_params);
        assert_eq!(tape_stats, (0, 0, 0), "{ctx}: plan-off tape compiled something");
        // Step 0 records and is interpreted; the capture happens at
        // the next step boundary; every later step replays.
        assert_eq!(
            plan_stats,
            (1, (STEPS - 1) as u64, 0),
            "{ctx}: unexpected capture/replay/invalidation counts"
        );
    }
}

/// A mid-training batch-size change must invalidate the plan
/// (leaf-shape mismatch), fall back to the interpreter for that step,
/// re-capture warm at the next boundary — and stay bit-identical
/// throughout.
#[test]
fn mid_training_batch_change_invalidates_and_recaptures() {
    const STEPS: usize = 12;
    let data = make_steps(STEPS, |_| 6, |i| if i < STEPS / 2 { 3 } else { 2 }, 4);
    let (tape_params, _) = train(false, &data, 4, 5);
    let (plan_params, plan_stats) = train(true, &data, 4, 5);
    assert_params_bitwise("batch 3->2", &plan_params, &tape_params);
    // Capture after step 0; replay steps 1..5; step 6 diverges
    // (batch 3 -> 2) and interprets; re-capture after it; replay the
    // rest.
    assert_eq!(
        plan_stats,
        (2, (STEPS - 2) as u64, 1),
        "expected exactly one invalidation and a warm re-capture"
    );
}

/// Same fallback discipline when the *structure* grows instead of a
/// leaf shape changing: lengthening the sequence adds ops, which the
/// replay detects as a signature mismatch mid-record.
#[test]
fn mid_training_seq_change_invalidates_and_recaptures() {
    const STEPS: usize = 10;
    let data = make_steps(STEPS, |i| if i < STEPS / 2 { 4 } else { 7 }, |_| 3, 2);
    let (tape_params, _) = train(false, &data, 2, 6);
    let (plan_params, plan_stats) = train(true, &data, 2, 6);
    assert_params_bitwise("seq 4->7", &plan_params, &tape_params);
    assert_eq!(
        plan_stats,
        (2, (STEPS - 2) as u64, 1),
        "expected exactly one invalidation and a warm re-capture"
    );
}

/// Steady-state replay allocates nothing new: once the plan has run a
/// couple of steps, the pool never misses again.
#[test]
fn steady_state_replay_has_zero_pool_misses() {
    let data = make_steps(20, |_| 6, |_| 4, 3);
    let mut rng = seeded(7);
    let mut p = Params::new();
    let cell = GruCell::new(&mut p, "g", 3, 5, &mut rng);
    let head = Linear::new(&mut p, "h", 5, 3, &mut rng);
    let mut opt = Adam::new(1e-3);
    let mut tape = Tape::new();
    let mut binding = p.bind(&mut tape);
    let mut warm_misses = 0;
    for (i, (xs, target)) in data.iter().enumerate() {
        tape.begin_step(true);
        let t = &mut tape;
        p.rebind(t, &mut binding);
        let mut h = t.zeros(xs[0].rows(), 5);
        for x in xs {
            let xv = t.constant_copy(x);
            h = cell.step(t, &binding, xv, h);
        }
        let pred = head.forward(t, &binding, h);
        let l = loss::mse_mean(t, pred, target);
        t.backward(l);
        p.absorb_grads(t, &binding);
        opt.step(&mut p);
        if i == 4 {
            warm_misses = tape.pool_misses();
        }
    }
    assert_eq!(
        tape.pool_misses(),
        warm_misses,
        "pool missed after the plan was warm"
    );
}
