#![warn(missing_docs)]

//! `tsgb-par`: a std-only parallel execution runtime for the benchmark.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Every primitive is index-addressed: task `i`
//!    always computes the same value and lands in slot `i` of the
//!    output, so results are bit-identical no matter how many worker
//!    threads run — including one (inline execution). Reductions over
//!    parallel results must fold the returned `Vec` in index order,
//!    which callers get for free from [`parallel_map`].
//! 2. **Zero dependencies.** Built on [`std::thread::scope`]; worker
//!    threads borrow the caller's data directly, no channels or arcs.
//! 3. **No oversubscription.** Worker closures run with the pool size
//!    forced to 1, so nested parallel calls (e.g. a parallel matmul
//!    inside a parallel eval measure) degrade to inline execution
//!    instead of multiplying threads.
//!
//! Pool sizing: the `TSGB_THREADS` environment variable when set (a
//! positive integer; `1` disables threading entirely), otherwise
//! [`std::thread::available_parallelism`]. [`with_threads`] overrides
//! the size for the current thread's dynamic scope, which tests use to
//! compare thread counts without touching the process environment.

use std::cell::Cell;

thread_local! {
    /// 0 = no override; otherwise the forced pool size for this thread.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };

    /// Cached environment-derived pool size; 0 = not read yet. An
    /// `std::env::var` lookup takes a process-global lock, far too
    /// expensive for the hot path (`max_threads` runs on every matmul
    /// dispatch), so each thread reads the environment once.
    static ENV_CACHE: Cell<usize> = const { Cell::new(0) };
}

/// The pool size the next parallel call on this thread will use:
/// the [`with_threads`] override if active, else `TSGB_THREADS`, else
/// the machine's available parallelism.
pub fn max_threads() -> usize {
    let o = THREAD_OVERRIDE.with(|c| c.get());
    if o > 0 {
        return o;
    }
    env_threads()
}

/// The environment-derived pool size (ignoring [`with_threads`]),
/// read once per thread: a change to `TSGB_THREADS` is observed by
/// threads spawned after it, not by threads that already sized their
/// pool.
fn env_threads() -> usize {
    ENV_CACHE.with(|c| {
        let cached = c.get();
        if cached > 0 {
            return cached;
        }
        let n = read_env_threads();
        c.set(n);
        n
    })
}

/// Uncached environment read behind [`env_threads`].
fn read_env_threads() -> usize {
    if let Ok(v) = std::env::var("TSGB_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` with the pool size forced to `n` on the current thread
/// (restored afterwards, also on panic). `with_threads(1, f)` proves
/// the serial path: every parallel primitive inside runs inline.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Contiguous task ranges for `n` tasks over `threads` workers; the
/// chunking depends only on `(n, threads)`, never on timing.
fn chunk_ranges(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunk = n.div_ceil(threads);
    (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(s, e)| s < e)
        .collect()
}

/// Maps `f` over `0..n` and returns the results in index order.
///
/// Output slot `i` always holds `f(i)`; with the pool sized at 1 (or
/// `n <= 1`) the whole map runs inline on the calling thread. Worker
/// threads run `f` with nested parallelism disabled.
pub fn parallel_map<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = max_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let ranges = chunk_ranges(n, threads);
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let f = &f;
                s.spawn(move || with_threads(1, || (start..end).map(f).collect::<Vec<R>>()))
            })
            .collect();
        for h in handles {
            chunks.push(h.join().expect("tsgb-par worker panicked"));
        }
    });
    chunks.into_iter().flatten().collect()
}

/// Runs `f(i)` for every `i` in `0..n`, in parallel. Use only for
/// side-effect-free-per-index work (e.g. filling disjoint interior
/// state through `&self`); for output collection use [`parallel_map`],
/// for disjoint mutation use [`parallel_chunks_mut`].
pub fn parallel_for(n: usize, f: impl Fn(usize) + Sync) {
    let threads = max_threads().min(n);
    if threads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let ranges = chunk_ranges(n, threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let f = &f;
                s.spawn(move || {
                    with_threads(1, || {
                        for i in start..end {
                            f(i);
                        }
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().expect("tsgb-par worker panicked");
        }
    });
}

/// Splits `data` into consecutive `chunk_len`-sized pieces (the last
/// may be shorter) and calls `f(chunk_index, chunk)` on each, in
/// parallel. Chunk `i` always covers `data[i*chunk_len ..]` — the
/// partition is independent of the thread count, so writes land in
/// identical places no matter how the chunks are scheduled.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = max_threads().min(n_chunks);
    if threads <= 1 {
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            f(i, c);
        }
        return;
    }
    // hand each worker a contiguous run of whole chunks
    let ranges = chunk_ranges(n_chunks, threads);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut handles = Vec::with_capacity(ranges.len());
        for &(start, end) in &ranges {
            let bytes = ((end - start) * chunk_len).min(rest.len());
            let (head, tail) = rest.split_at_mut(bytes);
            rest = tail;
            let f = &f;
            handles.push(s.spawn(move || {
                with_threads(1, || {
                    for (j, c) in head.chunks_mut(chunk_len).enumerate() {
                        f(start + j, c);
                    }
                })
            }));
        }
        for h in handles {
            h.join().expect("tsgb-par worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = with_threads(threads, || parallel_map(100, |i| i * i));
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn single_thread_runs_inline() {
        let caller = std::thread::current().id();
        let ids = with_threads(1, || parallel_map(8, |_| std::thread::current().id()));
        assert!(
            ids.iter().all(|&id| id == caller),
            "pool of 1 must not spawn"
        );
    }

    #[test]
    fn multi_thread_actually_spawns() {
        if env_threads() < 2 {
            // single-core machine: spawning is pointless, inline is correct
            return;
        }
        let caller = std::thread::current().id();
        let ids = with_threads(4, || parallel_map(64, |_| std::thread::current().id()));
        assert!(ids.iter().any(|&id| id != caller));
    }

    #[test]
    fn workers_disable_nested_parallelism() {
        let nested = with_threads(4, || parallel_map(4, |_| max_threads()));
        if nested.len() == 4 {
            // whichever thread ran the task, the nested pool must be 1
            // (inline caller keeps its own override of 4 only when the
            // task ran without spawning, which with_threads(4) forbids
            // for n=4 > 1)
            assert!(nested.iter().all(|&t| t == 1), "{nested:?}");
        }
    }

    #[test]
    fn tsgb_threads_env_forces_inline() {
        // process-global env var: this is the only test that touches
        // it. The value is cached per thread at first use, so each
        // assertion runs on a freshly spawned thread.
        std::env::set_var("TSGB_THREADS", "1");
        std::thread::spawn(|| {
            let caller = std::thread::current().id();
            let ids = parallel_map(16, |_| std::thread::current().id());
            assert!(
                ids.iter().all(|&id| id == caller),
                "TSGB_THREADS=1 must degrade to inline execution"
            );
        })
        .join()
        .unwrap();
        std::env::set_var("TSGB_THREADS", "3");
        std::thread::spawn(|| assert_eq!(max_threads(), 3))
            .join()
            .unwrap();
        std::env::remove_var("TSGB_THREADS");
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let before = max_threads();
        with_threads(2, || assert_eq!(max_threads(), 2));
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn chunks_mut_partitions_identically() {
        let mut serial = vec![0usize; 103];
        with_threads(1, || {
            parallel_chunks_mut(&mut serial, 10, |idx, c| {
                for (j, v) in c.iter_mut().enumerate() {
                    *v = idx * 1000 + j;
                }
            })
        });
        for threads in [2, 5, 16] {
            let mut par = vec![0usize; 103];
            with_threads(threads, || {
                parallel_chunks_mut(&mut par, 10, |idx, c| {
                    for (j, v) in c.iter_mut().enumerate() {
                        *v = idx * 1000 + j;
                    }
                })
            });
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_for_covers_every_index() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            parallel_for(57, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 16, 97] {
            for t in [1usize, 2, 3, 7, 32] {
                let r = chunk_ranges(n, t);
                let total: usize = r.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, n);
                let mut expect = 0;
                for &(s, e) in &r {
                    assert_eq!(s, expect);
                    assert!(e > s);
                    expect = e;
                }
                assert_eq!(expect, n.min(expect.max(n)));
            }
        }
    }
}
