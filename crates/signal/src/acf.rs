//! Autocorrelation functions and period detection.
//!
//! Two benchmark roles (paper §4.1–4.2):
//!
//! * the preprocessing pipeline selects the window length `l` with the
//!   autocorrelation function "ensuring that each `T_r` encompasses at
//!   least one time series period";
//! * the ACD measure (M5) is the mean absolute difference between the
//!   autocorrelation functions of the original and generated series.

use crate::fft::{fft, ifft, Complex};

/// Autocorrelation of `xs` for lags `0..=max_lag`, computed via the
/// Wiener–Khinchin theorem (FFT of the zero-padded series), normalized
/// so that lag 0 equals 1 for any non-constant series.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(n > 0, "autocorrelation of empty series");
    let max_lag = max_lag.min(n - 1);
    let mean = xs.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = xs.iter().map(|x| x - mean).collect();
    // Zero-pad to at least 2n to make the circular convolution linear.
    let m = (2 * n).next_power_of_two();
    let mut buf: Vec<Complex> = centered.iter().map(|&x| Complex::new(x, 0.0)).collect();
    buf.resize(m, Complex::ZERO);
    let spec = fft(&buf);
    let power: Vec<Complex> = spec
        .into_iter()
        .map(|c| Complex::new(c.norm_sqr(), 0.0))
        .collect();
    let corr = ifft(&power);
    let c0 = corr[0].re;
    if c0 < 1e-12 {
        // Constant series: define ACF as 1 at lag 0, 0 elsewhere.
        let mut out = vec![0.0; max_lag + 1];
        out[0] = 1.0;
        return out;
    }
    (0..=max_lag).map(|k| corr[k].re / c0).collect()
}

/// Detects the dominant period of a series as the lag of the first
/// prominent autocorrelation peak.
///
/// Scans lags `2..=max_period` for local maxima of the ACF above
/// `min_corr`; returns the smallest such lag, or `None` when the
/// series shows no periodic structure under that threshold.
pub fn dominant_period(xs: &[f64], max_period: usize, min_corr: f64) -> Option<usize> {
    if xs.len() < 4 {
        return None;
    }
    let acf = autocorrelation(xs, max_period.min(xs.len() - 1));
    let mut best: Option<(usize, f64)> = None;
    for lag in 2..acf.len().saturating_sub(1) {
        let here = acf[lag];
        if here > acf[lag - 1] && here >= acf[lag + 1] && here >= min_corr {
            // first prominent peak wins unless a later peak is much stronger
            match best {
                None => best = Some((lag, here)),
                Some((_, b)) if here > b + 0.1 => best = Some((lag, here)),
                _ => {}
            }
            if best.map(|(l, _)| l) == Some(lag) && here > 0.9 {
                break; // essentially exact periodicity
            }
        }
    }
    best.map(|(lag, _)| lag)
}

/// The window length the preprocessing pipeline should use: the
/// smallest of the candidate lengths that covers at least one dominant
/// period of every channel (paper §4.1). Falls back to `default_l`
/// when no channel shows periodic structure.
pub fn select_window_length(
    channels: &[Vec<f64>],
    candidates: &[usize],
    default_l: usize,
) -> usize {
    let mut needed = 0usize;
    for ch in channels {
        if let Some(p) = dominant_period(ch, 256, 0.2) {
            needed = needed.max(p);
        }
    }
    if needed == 0 {
        return default_l;
    }
    candidates
        .iter()
        .copied()
        .filter(|&c| c >= needed)
        .min()
        .unwrap_or_else(|| candidates.iter().copied().max().unwrap_or(default_l))
}

/// Mean absolute difference between the ACFs of two series over lags
/// `1..=max_lag` — the per-channel kernel of the ACD measure (M5).
pub fn acf_difference(a: &[f64], b: &[f64], max_lag: usize) -> f64 {
    let fa = autocorrelation(a, max_lag);
    let fb = autocorrelation(b, max_lag);
    let lags = fa.len().min(fb.len());
    if lags <= 1 {
        return 0.0;
    }
    (1..lags).map(|k| (fa[k] - fb[k]).abs()).sum::<f64>() / (lags - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sine(n: usize, period: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * i as f64 / period).sin())
            .collect()
    }

    #[test]
    fn acf_of_sine_peaks_at_period() {
        let xs = sine(400, 20.0);
        let acf = autocorrelation(&xs, 50);
        assert!((acf[0] - 1.0).abs() < 1e-9);
        assert!(acf[20] > 0.95, "acf[20] = {}", acf[20]);
        assert!(acf[10] < -0.9, "half period is anti-correlated");
    }

    #[test]
    fn acf_matches_direct_computation() {
        let xs: Vec<f64> = (0..64).map(|i| ((i * 7 % 13) as f64) * 0.3 - 1.0).collect();
        let acf = autocorrelation(&xs, 10);
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let c: Vec<f64> = xs.iter().map(|x| x - mean).collect();
        let c0: f64 = c.iter().map(|x| x * x).sum();
        for k in 0..=10 {
            let ck: f64 = (0..n - k).map(|i| c[i] * c[i + k]).sum();
            assert!((acf[k] - ck / c0).abs() < 1e-9, "lag {k}");
        }
    }

    #[test]
    fn dominant_period_of_sine() {
        let xs = sine(500, 25.0);
        assert_eq!(dominant_period(&xs, 100, 0.2), Some(25));
    }

    #[test]
    fn white_noise_has_no_period() {
        // deterministic pseudo-noise from a well-mixed LCG
        let mut state = 0x2545F4914F6CDD1Du64;
        let xs: Vec<f64> = (0..500)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
            })
            .collect();
        assert_eq!(dominant_period(&xs, 100, 0.4), None);
    }

    #[test]
    fn window_selection_covers_period() {
        let channels = vec![sine(600, 20.0), sine(600, 30.0)];
        let l = select_window_length(&channels, &[14, 24, 125, 128], 24);
        assert!(l >= 30, "selected l = {l} must cover the longest period");
        assert_eq!(l, 125);
    }

    #[test]
    fn window_selection_falls_back() {
        let flat = vec![vec![1.0; 100]];
        assert_eq!(select_window_length(&flat, &[24, 125], 24), 24);
    }

    #[test]
    fn acd_zero_for_identical_series() {
        let xs = sine(200, 16.0);
        assert_eq!(acf_difference(&xs, &xs, 30), 0.0);
    }

    #[test]
    fn acd_detects_period_mismatch() {
        let a = sine(400, 16.0);
        let b = sine(400, 29.0);
        assert!(acf_difference(&a, &b, 40) > 0.3);
    }

    #[test]
    fn constant_series_acf_is_delta() {
        let acf = autocorrelation(&[5.0; 32], 8);
        assert_eq!(acf[0], 1.0);
        assert!(acf[1..].iter().all(|&v| v == 0.0));
    }
}
