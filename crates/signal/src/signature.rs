//! Truncated path signatures (Chen, 1958; Lyons' rough-path theory) —
//! the substrate of the Sig-WGAN extension method (paper Table 2,
//! Ni et al. 2020/2021).
//!
//! The signature of a path `X: [0, T] -> R^d` is the sequence of
//! iterated integrals; truncated at depth `m` it is a canonical,
//! reparametrization-invariant feature vector of size
//! `d + d^2 + ... + d^m`. For the piecewise-linear paths of discrete
//! time series it has a closed form assembled segment-by-segment with
//! **Chen's identity**: appending a linear segment with increment `Δ`
//! updates the levels as
//!
//! ```text
//! S3 <- S3 + S2 ⊗ Δ + S1 ⊗ Δ⊗Δ/2 + Δ⊗Δ⊗Δ/6
//! S2 <- S2 + S1 ⊗ Δ + Δ⊗Δ/2
//! S1 <- S1 + Δ
//! ```
//!
//! Sig-WGAN's key theorem is that the W1 distance between path
//! distributions is approximated by the distance between *expected
//! signatures*, turning GAN training into moment matching in signature
//! space — no discriminator training at all.

use tsgb_linalg::Matrix;

/// Number of signature features for dimension `d` at `depth`.
pub fn signature_dim(d: usize, depth: usize) -> usize {
    assert!((1..=3).contains(&depth), "supported depths: 1..=3");
    let mut total = 0;
    let mut level = 1;
    for _ in 0..depth {
        level *= d;
        total += level;
    }
    total
}

/// Truncated signature of a `(T, d)` path, flattened as
/// `[level1 (d) | level2 (d^2, row-major) | level3 (d^3)]`.
pub fn signature(path: &Matrix, depth: usize) -> Vec<f64> {
    assert!((1..=3).contains(&depth), "supported depths: 1..=3");
    let (t_len, d) = path.shape();
    assert!(t_len >= 2, "a path needs at least two points");
    let mut s1 = vec![0.0f64; d];
    let mut s2 = vec![0.0f64; if depth >= 2 { d * d } else { 0 }];
    let mut s3 = vec![0.0f64; if depth >= 3 { d * d * d } else { 0 }];

    for t in 1..t_len {
        let prev = path.row(t - 1);
        let cur = path.row(t);
        let delta: Vec<f64> = cur.iter().zip(prev).map(|(a, b)| a - b).collect();

        if depth >= 3 {
            // S3 += S2 ⊗ Δ + S1 ⊗ (Δ⊗Δ)/2 + Δ⊗Δ⊗Δ/6
            for i in 0..d {
                for j in 0..d {
                    for k in 0..d {
                        s3[(i * d + j) * d + k] += s2[i * d + j] * delta[k]
                            + s1[i] * delta[j] * delta[k] / 2.0
                            + delta[i] * delta[j] * delta[k] / 6.0;
                    }
                }
            }
        }
        if depth >= 2 {
            // S2 += S1 ⊗ Δ + Δ⊗Δ/2
            for i in 0..d {
                for j in 0..d {
                    s2[i * d + j] += s1[i] * delta[j] + delta[i] * delta[j] / 2.0;
                }
            }
        }
        for (acc, &dl) in s1.iter_mut().zip(&delta) {
            *acc += dl;
        }
    }

    let mut out = s1;
    out.extend(s2);
    out.extend(s3);
    out
}

/// Prepends a linear time channel `t / (T-1)` to a path — the standard
/// augmentation that makes signatures sensitive to parametrization
/// (otherwise the signature is invariant to time reparametrization,
/// which would blind Sig-WGAN to speed differences).
pub fn time_augment(path: &Matrix) -> Matrix {
    let (t_len, d) = path.shape();
    Matrix::from_fn(t_len, d + 1, |t, c| {
        if c == 0 {
            t as f64 / (t_len.max(2) - 1) as f64
        } else {
            path[(t, c - 1)]
        }
    })
}

/// The expected (mean) signature over a set of `(T, d)` paths — the
/// statistic Sig-WGAN matches.
pub fn expected_signature(paths: &[Matrix], depth: usize) -> Vec<f64> {
    assert!(!paths.is_empty(), "need at least one path");
    let dim = signature_dim(paths[0].cols(), depth);
    let mut acc = vec![0.0f64; dim];
    for p in paths {
        for (a, v) in acc.iter_mut().zip(signature(p, depth)) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= paths.len() as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_of(points: &[&[f64]]) -> Matrix {
        let d = points[0].len();
        Matrix::from_fn(points.len(), d, |r, c| points[r][c])
    }

    #[test]
    fn level1_is_total_increment() {
        let p = path_of(&[&[0.0, 0.0], &[1.0, 2.0], &[3.0, -1.0]]);
        let s = signature(&p, 1);
        assert_eq!(s, vec![3.0, -1.0]);
    }

    #[test]
    fn straight_line_level2_is_half_outer_product() {
        // For a single linear segment, S2 = Δ⊗Δ/2 regardless of how
        // many collinear points sample it (reparametrization invariance).
        let one_seg = path_of(&[&[0.0, 0.0], &[2.0, 4.0]]);
        let many_seg = path_of(&[&[0.0, 0.0], &[0.5, 1.0], &[1.0, 2.0], &[2.0, 4.0]]);
        let s_one = signature(&one_seg, 2);
        let s_many = signature(&many_seg, 2);
        for (a, b) in s_one.iter().zip(&s_many) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // S2 block: [2,4]⊗[2,4]/2 = [[2,4],[4,8]]
        assert_eq!(&s_one[2..], &[2.0, 4.0, 4.0, 8.0]);
    }

    #[test]
    fn levy_area_detects_orientation() {
        // A square loop traversed counterclockwise vs clockwise has
        // opposite Levy area: A = (S2[0,1] - S2[1,0]) / 2.
        let ccw = path_of(&[
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 1.0],
            &[0.0, 1.0],
            &[0.0, 0.0],
        ]);
        let cw = path_of(&[
            &[0.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[1.0, 0.0],
            &[0.0, 0.0],
        ]);
        let area = |p: &Matrix| {
            let s = signature(p, 2);
            let d = 2;
            (s[d + 1] - s[d + 2]) / 2.0 // s2[0][1] - s2[1][0]
        };
        let a_ccw = area(&ccw);
        let a_cw = area(&cw);
        assert!((a_ccw - 1.0).abs() < 1e-12, "ccw unit square area: {a_ccw}");
        assert!((a_cw + 1.0).abs() < 1e-12, "cw unit square area: {a_cw}");
        // level-1 signature cannot see the loop at all
        let s1 = &signature(&ccw, 1);
        assert!(s1.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn chens_identity_concatenation() {
        // signature(path A then B) computed in one pass must equal the
        // incremental Chen combination — verified implicitly by
        // computing the same path split at different points.
        let full = path_of(&[&[0.0], &[1.0], &[0.5], &[2.0], &[1.5]]);
        let s_full = signature(&full, 3);
        // same polyline, denser sampling of identical segments
        let dense = path_of(&[
            &[0.0],
            &[0.5],
            &[1.0],
            &[0.75],
            &[0.5],
            &[1.25],
            &[2.0],
            &[1.75],
            &[1.5],
        ]);
        let s_dense = signature(&dense, 3);
        for (a, b) in s_full.iter().zip(&s_dense) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dims_and_time_augmentation() {
        assert_eq!(signature_dim(2, 1), 2);
        assert_eq!(signature_dim(2, 2), 6);
        assert_eq!(signature_dim(3, 3), 39);
        let p = path_of(&[&[5.0], &[6.0], &[7.0]]);
        let aug = time_augment(&p);
        assert_eq!(aug.shape(), (3, 2));
        assert_eq!(aug[(0, 0)], 0.0);
        assert_eq!(aug[(2, 0)], 1.0);
        assert_eq!(aug[(1, 1)], 6.0);
    }

    #[test]
    fn expected_signature_averages() {
        let a = path_of(&[&[0.0], &[1.0]]);
        let b = path_of(&[&[0.0], &[3.0]]);
        let e = expected_signature(&[a, b], 2);
        assert_eq!(e[0], 2.0); // mean increment
        assert_eq!(e[1], (0.5 + 4.5) / 2.0); // mean Δ²/2
    }
}
