//! The real-packed DFT used by Fourier Flows (paper A8).
//!
//! Fourier Flows (Alaa et al., ICLR'21) operate in the frequency
//! domain: each length-`l` real series is mapped to exactly `l` real
//! coefficients (the non-redundant real and imaginary parts of its
//! rDFT), a *bijection* on `R^l` whose Jacobian is orthogonal up to a
//! constant — which is what makes the flow's log-determinant
//! computable. This module provides that packing and its exact inverse.

use crate::fft::{irfft, rfft, Complex};

/// Number of non-redundant complex bins for a length-`n` real signal.
pub fn spectrum_len(n: usize) -> usize {
    n / 2 + 1
}

/// Packs the rDFT of a real series into `n` real numbers:
/// `[Re X_0, Re X_1, Im X_1, Re X_2, Im X_2, ...]`, dropping the
/// always-zero imaginary parts of the DC bin and (for even `n`) the
/// Nyquist bin. The packing is a linear bijection on `R^n`.
pub fn real_dft(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let spec = rfft(xs);
    let mut out = Vec::with_capacity(n);
    out.push(spec[0].re);
    let last = spec.len() - 1;
    for (k, bin) in spec.iter().enumerate().skip(1) {
        if k == last && n.is_multiple_of(2) {
            out.push(bin.re); // Nyquist bin: imaginary part is zero
        } else {
            out.push(bin.re);
            out.push(bin.im);
        }
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Exact inverse of [`real_dft`].
pub fn inverse_real_dft(packed: &[f64]) -> Vec<f64> {
    let n = packed.len();
    let m = spectrum_len(n);
    let mut spec = vec![Complex::ZERO; m];
    spec[0] = Complex::new(packed[0], 0.0);
    let mut i = 1;
    for (k, bin) in spec.iter_mut().enumerate().skip(1) {
        if k == m - 1 && n.is_multiple_of(2) {
            *bin = Complex::new(packed[i], 0.0);
            i += 1;
        } else {
            *bin = Complex::new(packed[i], packed[i + 1]);
            i += 2;
        }
    }
    debug_assert_eq!(i, n);
    irfft(&spec, n)
}

/// The log-absolute-determinant of the [`real_dft`] packing viewed as a
/// linear map on `R^n`.
///
/// The unnormalized DFT matrix restricted to the real packing has
/// `|det| = n^{n/2} * 2^{-(n - ceil bins adjustments)}`; rather than
/// deriving the closed form per parity we compute it once numerically
/// at construction time in the flow (it is data-independent), so this
/// helper returns the value computed from the transform of basis
/// vectors. Exposed here so the flow and its tests share one source of
/// truth.
#[allow(clippy::needless_range_loop)] // dual-row elimination reads clearer indexed
pub fn packing_log_abs_det(n: usize) -> f64 {
    // The map is linear; build its matrix column by column and take the
    // log|det| by Gaussian elimination. n <= 192 in this benchmark, so
    // the O(n^3) cost is negligible and paid once per flow.
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(n);
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        cols.push(real_dft(&e));
    }
    // a[r][c] = transform matrix entries (row r, col c)
    let mut a: Vec<Vec<f64>> = (0..n)
        .map(|r| (0..n).map(|c| cols[c][r]).collect())
        .collect();
    let mut log_det = 0.0;
    for k in 0..n {
        // partial pivot
        let (piv, _) = a
            .iter()
            .enumerate()
            .skip(k)
            .map(|(i, row)| (i, row[k].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite pivots"))
            .expect("non-empty");
        a.swap(k, piv);
        let p = a[k][k];
        assert!(p.abs() > 1e-12, "rDFT packing matrix is singular?");
        log_det += p.abs().ln();
        for i in k + 1..n {
            let f = a[i][k] / p;
            if f == 0.0 {
                continue;
            }
            for c in k..n {
                a[i][c] -= f * a[k][c];
            }
        }
    }
    log_det
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrips() {
        for &n in &[14usize, 24, 125, 128, 168, 192, 5, 6] {
            let xs: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.13).sin() * (i as f64))
                .collect();
            let back = inverse_real_dft(&real_dft(&xs));
            for (a, b) in xs.iter().zip(&back) {
                assert!((a - b).abs() < 1e-8, "n = {n}");
            }
        }
    }

    #[test]
    fn packing_is_length_preserving() {
        for &n in &[24usize, 125] {
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            assert_eq!(real_dft(&xs).len(), n);
        }
    }

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let xs = vec![2.0; 24];
        let packed = real_dft(&xs);
        assert!((packed[0] - 48.0).abs() < 1e-9); // unnormalized DC = sum
        assert!(packed[1..].iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn log_det_is_finite_and_positive_dimension_scaling() {
        let d24 = packing_log_abs_det(24);
        let d48 = packing_log_abs_det(48);
        assert!(d24.is_finite() && d48.is_finite());
        // |det| grows with n for the unnormalized DFT.
        assert!(d48 > d24);
    }

    #[test]
    fn linearity_of_packing() {
        let n = 25;
        let a: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).sin()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + 3.0 * y).collect();
        let lhs = real_dft(&sum);
        let ra = real_dft(&a);
        let rb = real_dft(&b);
        for ((l, x), y) in lhs.iter().zip(&ra).zip(&rb) {
            assert!((l - (2.0 * x + 3.0 * y)).abs() < 1e-8);
        }
    }
}
