//! Sliding-window segmentation (paper §4.1).
//!
//! The pipeline converts a long multivariate series `T` (an `L x N`
//! matrix) into `R = L - l + 1` overlapping windows of length `l` with
//! stride 1, producing the canonical `(R, l, N)` tensor.

use tsgb_linalg::{Matrix, Tensor3};

/// Segments a long `L x N` series into overlapping windows of length
/// `l` with the given stride. Stride 1 yields the paper's
/// `R = L - l + 1` windows.
///
/// # Panics
/// Panics when `l == 0`, `stride == 0`, or `l > L`.
pub fn sliding_windows(series: &Matrix, l: usize, stride: usize) -> Tensor3 {
    let (big_l, n) = series.shape();
    assert!(
        l > 0 && stride > 0,
        "window length and stride must be positive"
    );
    assert!(
        l <= big_l,
        "window length {l} exceeds series length {big_l}"
    );
    let r = (big_l - l) / stride + 1;
    let mut out = Tensor3::zeros(r, l, n);
    for w in 0..r {
        let start = w * stride;
        for t in 0..l {
            let row = series.row(start + t);
            for (f, &v) in row.iter().enumerate() {
                *out.at_mut(w, t, f) = v;
            }
        }
    }
    out
}

/// Number of stride-1 windows for a series of length `big_l`: the
/// paper's `R = L - l + 1`.
pub fn window_count(big_l: usize, l: usize) -> usize {
    assert!(l >= 1 && l <= big_l);
    big_l - l + 1
}

/// Reconstructs a long series from stride-1 windows by averaging the
/// overlapping positions — the pseudo-inverse of [`sliding_windows`],
/// used by tests and by methods that generate window-by-window.
#[allow(clippy::needless_range_loop)] // rows index both the counts and the matrix
pub fn overlap_average(windows: &Tensor3) -> Matrix {
    let (r, l, n) = windows.shape();
    assert!(r > 0, "cannot reconstruct from zero windows");
    let big_l = r + l - 1;
    let mut acc = Matrix::zeros(big_l, n);
    let mut counts = vec![0.0f64; big_l];
    for w in 0..r {
        for t in 0..l {
            counts[w + t] += 1.0;
            for f in 0..n {
                acc[(w + t, f)] += windows.at(w, t, f);
            }
        }
    }
    for row in 0..big_l {
        let inv = 1.0 / counts[row];
        for v in acc.row_mut(row) {
            *v *= inv;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(l: usize, n: usize) -> Matrix {
        Matrix::from_fn(l, n, |r, c| (r * n + c) as f64)
    }

    #[test]
    fn stride_one_count_matches_paper_formula() {
        let series = ramp(100, 3);
        let t = sliding_windows(&series, 24, 1);
        assert_eq!(t.shape(), (100 - 24 + 1, 24, 3));
        assert_eq!(t.samples(), window_count(100, 24));
    }

    #[test]
    fn window_contents_are_shifted_views() {
        let series = ramp(10, 2);
        let t = sliding_windows(&series, 4, 1);
        for w in 0..t.samples() {
            for ti in 0..4 {
                for f in 0..2 {
                    assert_eq!(t.at(w, ti, f), series[(w + ti, f)]);
                }
            }
        }
    }

    #[test]
    fn larger_stride_skips_windows() {
        let series = ramp(11, 1);
        let t = sliding_windows(&series, 3, 2);
        assert_eq!(t.samples(), 5);
        assert_eq!(t.at(1, 0, 0), 2.0);
        assert_eq!(t.at(4, 0, 0), 8.0);
    }

    #[test]
    fn overlap_average_inverts_stride_one() {
        let series = Matrix::from_fn(30, 2, |r, c| ((r * 3 + c) as f64 * 0.37).sin());
        let t = sliding_windows(&series, 7, 1);
        let rec = overlap_average(&t);
        assert_eq!(rec.shape(), series.shape());
        for (a, b) in rec.as_slice().iter().zip(series.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds series length")]
    fn too_long_window_panics() {
        let series = ramp(5, 1);
        let _ = sliding_windows(&series, 6, 1);
    }
}
