#![warn(missing_docs)]

//! `tsgb-signal`: spectral and temporal signal processing for TSGBench.
//!
//! Four parts of the benchmark live on this crate:
//!
//! * **Fourier Flows (A8)** transform each series with a real DFT and
//!   learn spectral filters — [`fft`] and [`dft`] provide the exact,
//!   invertible transforms.
//! * **TimeVQVAE (A7)** decomposes series with an STFT into
//!   low-frequency and high-frequency bands — [`stft`].
//! * The **preprocessing pipeline** (paper §4.1) selects the window
//!   length `l` via autocorrelation so each window covers at least one
//!   period — [`acf`] — and segments the long series with stride-1
//!   sliding windows — [`window`].
//! * The **ACD measure (M5)** compares autocorrelation functions of
//!   original and generated series — [`acf`].

pub mod acf;
pub mod dft;
pub mod fft;
pub mod signature;
pub mod stft;
pub mod window;

pub use fft::Complex;
