//! Complex FFT: iterative radix-2 Cooley–Tukey for power-of-two sizes
//! and Bluestein's chirp-z algorithm for everything else, so every
//! window length in Table 3 (14, 24, 125, 128, 168, 192) transforms
//! exactly.

use std::f64::consts::PI;
use std::ops::{Add, Mul, Sub};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + i*im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex zero.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place radix-2 FFT; `xs.len()` must be a power of two.
fn fft_pow2(xs: &mut [Complex], inverse: bool) {
    let n = xs.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            xs.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in xs.chunks_exact_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT of arbitrary length, returning a new vector.
///
/// Uses radix-2 when the length is a power of two and Bluestein's
/// algorithm otherwise. The convention is the unnormalized forward
/// transform `X_k = sum_j x_j e^{-2 pi i jk / n}`.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut xs = input.to_vec();
    if n.is_power_of_two() {
        fft_pow2(&mut xs, false);
        return xs;
    }
    bluestein(&xs, false)
}

/// Inverse DFT of arbitrary length (normalized by `1/n`), such that
/// `ifft(fft(x)) == x`.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut xs = input.to_vec();
    let out = if n.is_power_of_two() {
        fft_pow2(&mut xs, true);
        xs
    } else {
        bluestein(&xs, true)
    };
    let inv = 1.0 / n as f64;
    out.into_iter().map(|c| c.scale(inv)).collect()
}

/// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
/// convolution, evaluated with a zero-padded power-of-two FFT.
fn bluestein(xs: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = xs.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Forward chirp is e^{-i pi k^2 / n} (sign = -1); use k^2 mod 2n to
    // keep the angle argument small and exact.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let kk = (k as u128 * k as u128) % (2 * n as u128);
            Complex::cis(sign * PI * kk as f64 / n as f64)
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    for (i, &x) in xs.iter().enumerate() {
        a[i] = x * chirp[i];
    }
    let mut b = vec![Complex::ZERO; m];
    for i in 0..n {
        let c = chirp[i].conj();
        b[i] = c;
        if i > 0 {
            b[m - i] = c;
        }
    }
    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x = *x * *y;
    }
    fft_pow2(&mut a, true);
    let inv_m = 1.0 / m as f64;
    (0..n).map(|k| (a[k] * chirp[k]).scale(inv_m)).collect()
}

/// Forward real FFT: returns the `n/2 + 1` non-redundant bins of the
/// DFT of a real signal.
pub fn rfft(xs: &[f64]) -> Vec<Complex> {
    let full = fft(&xs.iter().map(|&x| Complex::new(x, 0.0)).collect::<Vec<_>>());
    full.into_iter().take(xs.len() / 2 + 1).collect()
}

/// Inverse of [`rfft`]: reconstructs a real signal of length `n` from
/// its `n/2 + 1` spectrum bins by Hermitian symmetry.
pub fn irfft(spec: &[Complex], n: usize) -> Vec<f64> {
    assert_eq!(
        spec.len(),
        n / 2 + 1,
        "irfft spectrum length mismatch for n = {n}"
    );
    let mut full = vec![Complex::ZERO; n];
    full[..spec.len()].copy_from_slice(spec);
    for k in spec.len()..n {
        full[k] = spec[n - k].conj();
    }
    ifft(&full).into_iter().map(|c| c.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    /// O(n^2) reference DFT.
    fn naive_dft(xs: &[Complex]) -> Vec<Complex> {
        let n = xs.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &x) in xs.iter().enumerate() {
                    acc = acc + x * Complex::cis(-2.0 * PI * (j * k) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_on_all_table3_lengths() {
        for &n in &[14usize, 24, 125, 128, 168, 192, 1, 2, 3, 7] {
            let xs: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            assert_close(&fft(&xs), &naive_dft(&xs), 1e-8);
        }
    }

    #[test]
    fn roundtrip_arbitrary_lengths() {
        for &n in &[14usize, 24, 125, 168, 192, 5] {
            let xs: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
                .collect();
            assert_close(&ifft(&fft(&xs)), &xs, 1e-8);
        }
    }

    #[test]
    fn rfft_roundtrip_even_and_odd() {
        for &n in &[24usize, 125, 14, 7, 128] {
            let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin() + 0.2).collect();
            let back = irfft(&rfft(&xs), n);
            for (a, b) in xs.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "n = {n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut xs = vec![Complex::ZERO; 16];
        xs[0] = Complex::new(1.0, 0.0);
        for bin in fft(&xs) {
            assert!((bin.re - 1.0).abs() < 1e-12 && bin.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 125;
        let xs: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let time_energy: f64 = xs.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = fft(&xs).iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }
}
