//! Short-time Fourier transform with Hann windowing and overlap-add
//! inversion.
//!
//! TimeVQVAE (paper A7) decomposes each input series with an STFT and
//! models the low-frequency and high-frequency bands with separate
//! vector-quantized codebooks. The paper's §5 settings use `n_fft = 8`;
//! this module implements the general transform plus the band-split
//! helpers the method needs.

use crate::fft::{irfft, rfft, Complex};
use std::f64::consts::PI;

/// STFT configuration: FFT size and hop length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StftConfig {
    /// Frame / FFT length (`n_fft`).
    pub n_fft: usize,
    /// Hop between consecutive frames; `n_fft / 2` gives the standard
    /// 50% overlap for perfect Hann reconstruction.
    pub hop: usize,
}

impl StftConfig {
    /// The paper's TimeVQVAE setting: `n_fft = 8`, 50% overlap.
    pub fn paper_default() -> Self {
        Self { n_fft: 8, hop: 4 }
    }

    /// Number of frames produced for a signal of length `n` (with the
    /// reflective centering pad of `n_fft / 2` on both sides).
    pub fn frames_for(&self, n: usize) -> usize {
        (n + self.n_fft / 2 * 2 - self.n_fft) / self.hop + 1
    }

    /// Number of frequency bins per frame.
    pub fn bins(&self) -> usize {
        self.n_fft / 2 + 1
    }
}

/// A complex spectrogram: `frames x bins`.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    /// Frame-major storage: `data[frame * bins + bin]`.
    pub data: Vec<Complex>,
    /// Number of time frames.
    pub frames: usize,
    /// Number of frequency bins (`n_fft / 2 + 1`).
    pub bins: usize,
    /// Original signal length, needed for exact inversion.
    pub signal_len: usize,
    /// The transform configuration.
    pub config: StftConfig,
}

impl Spectrogram {
    /// Bin accessor.
    pub fn at(&self, frame: usize, bin: usize) -> Complex {
        self.data[frame * self.bins + bin]
    }

    /// Mutable bin accessor.
    pub fn at_mut(&mut self, frame: usize, bin: usize) -> &mut Complex {
        &mut self.data[frame * self.bins + bin]
    }

    /// Splits into (low, high) bands: bins `< cut` keep their values in
    /// the low spectrogram, the rest in the high one; the complementary
    /// bins are zeroed. `low + high` inverts to the original signal.
    pub fn split_bands(&self, cut: usize) -> (Spectrogram, Spectrogram) {
        assert!(cut <= self.bins, "band cut beyond bin count");
        let mut low = self.clone();
        let mut high = self.clone();
        for f in 0..self.frames {
            for b in 0..self.bins {
                if b < cut {
                    *high.at_mut(f, b) = Complex::ZERO;
                } else {
                    *low.at_mut(f, b) = Complex::ZERO;
                }
            }
        }
        (low, high)
    }

    /// Flattens to interleaved `[re, im, re, im, ...]` reals — the
    /// representation the VQ codebooks quantize.
    pub fn to_reals(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.data.len() * 2);
        for c in &self.data {
            out.push(c.re);
            out.push(c.im);
        }
        out
    }

    /// Rebuilds a spectrogram from [`Spectrogram::to_reals`] output.
    pub fn from_reals(
        reals: &[f64],
        frames: usize,
        bins: usize,
        signal_len: usize,
        config: StftConfig,
    ) -> Self {
        assert_eq!(
            reals.len(),
            frames * bins * 2,
            "real buffer length mismatch"
        );
        let data = reals
            .chunks_exact(2)
            .map(|p| Complex::new(p[0], p[1]))
            .collect();
        Self {
            data,
            frames,
            bins,
            signal_len,
            config,
        }
    }
}

fn hann(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.5 - 0.5 * (2.0 * PI * i as f64 / n as f64).cos())
        .collect()
}

/// Reflect-pads `xs` by `pad` samples on each side (librosa-style
/// centering, so frame `t` is centered at sample `t * hop`).
fn reflect_pad(xs: &[f64], pad: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(n > pad, "signal too short ({n}) for reflective pad {pad}");
    let mut out = Vec::with_capacity(n + 2 * pad);
    for i in (1..=pad).rev() {
        out.push(xs[i]);
    }
    out.extend_from_slice(xs);
    for i in 2..=pad + 1 {
        out.push(xs[n - i]);
    }
    out
}

/// Forward STFT of a real signal.
pub fn stft(xs: &[f64], config: StftConfig) -> Spectrogram {
    let pad = config.n_fft / 2;
    let padded = reflect_pad(xs, pad);
    let win = hann(config.n_fft);
    let frames = config.frames_for(xs.len());
    let bins = config.bins();
    let mut data = Vec::with_capacity(frames * bins);
    for f in 0..frames {
        let start = f * config.hop;
        let frame: Vec<f64> = (0..config.n_fft)
            .map(|i| padded[start + i] * win[i])
            .collect();
        data.extend(rfft(&frame));
    }
    Spectrogram {
        data,
        frames,
        bins,
        signal_len: xs.len(),
        config,
    }
}

/// Inverse STFT via windowed overlap-add with window-square
/// normalization; exact for 50% (or denser) Hann overlap.
pub fn istft(spec: &Spectrogram) -> Vec<f64> {
    let cfg = spec.config;
    let pad = cfg.n_fft / 2;
    let total = spec.signal_len + 2 * pad;
    let win = hann(cfg.n_fft);
    let mut acc = vec![0.0; total];
    let mut norm = vec![0.0; total];
    for f in 0..spec.frames {
        let start = f * cfg.hop;
        let frame_spec: Vec<Complex> = (0..spec.bins).map(|b| spec.at(f, b)).collect();
        let frame = irfft(&frame_spec, cfg.n_fft);
        for i in 0..cfg.n_fft {
            if start + i < total {
                acc[start + i] += frame[i] * win[i];
                norm[start + i] += win[i] * win[i];
            }
        }
    }
    (0..spec.signal_len)
        .map(|i| {
            let j = i + pad;
            if norm[j] > 1e-12 {
                acc[j] / norm[j]
            } else {
                acc[j]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stft_roundtrips_on_table3_lengths() {
        let cfg = StftConfig::paper_default();
        for &n in &[24usize, 125, 128, 168, 192] {
            let xs: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.37).sin() + 0.1 * i as f64)
                .collect();
            let rec = istft(&stft(&xs, cfg));
            assert_eq!(rec.len(), n);
            for (a, b) in xs.iter().zip(&rec) {
                assert!((a - b).abs() < 1e-8, "n = {n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn band_split_sums_to_identity() {
        let cfg = StftConfig::paper_default();
        let xs: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.7).sin() + (i as f64 * 0.05).cos())
            .collect();
        let s = stft(&xs, cfg);
        let (low, high) = s.split_bands(2);
        let rl = istft(&low);
        let rh = istft(&high);
        for ((a, l), h) in xs.iter().zip(&rl).zip(&rh) {
            assert!((a - (l + h)).abs() < 1e-8);
        }
    }

    #[test]
    fn low_band_captures_slow_component() {
        let cfg = StftConfig::paper_default();
        // slow sinusoid + fast sinusoid
        let xs: Vec<f64> = (0..128)
            .map(|i| (2.0 * PI * i as f64 / 64.0).sin() + 0.5 * (2.0 * PI * i as f64 / 3.0).sin())
            .collect();
        let s = stft(&xs, cfg);
        let (low, _) = s.split_bands(2);
        let rl = istft(&low);
        // The low band should be much closer to the slow component than
        // the raw mix is.
        let slow: Vec<f64> = (0..128)
            .map(|i| (2.0 * PI * i as f64 / 64.0).sin())
            .collect();
        let err_low: f64 = rl.iter().zip(&slow).map(|(a, b)| (a - b).powi(2)).sum();
        let err_mix: f64 = xs.iter().zip(&slow).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(
            err_low < err_mix * 0.3,
            "err_low = {err_low}, err_mix = {err_mix}"
        );
    }

    #[test]
    fn reals_roundtrip() {
        let cfg = StftConfig::paper_default();
        let xs: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let s = stft(&xs, cfg);
        let r = s.to_reals();
        let s2 = Spectrogram::from_reals(&r, s.frames, s.bins, s.signal_len, cfg);
        assert_eq!(s, s2);
    }

    #[test]
    fn frame_count_formula() {
        let cfg = StftConfig { n_fft: 8, hop: 4 };
        for &n in &[24usize, 125, 192] {
            let s = stft(&vec![0.0; n], cfg);
            assert_eq!(s.frames, cfg.frames_for(n));
        }
    }
}
