//! Deterministic seeded-loop fallbacks for the proptest properties in
//! `signal_properties.rs` (opt-in via the `proptest` feature). These
//! always run, with no external deps.

use tsgb_linalg::Matrix;
use tsgb_rand::rngs::SmallRng;
use tsgb_rand::{Rng, SeedableRng};
use tsgb_signal::acf::autocorrelation;
use tsgb_signal::signature::{signature, signature_dim};
use tsgb_signal::stft::{istft, stft, StftConfig};

fn vec_in(rng: &mut SmallRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn stft_roundtrips_seeded_signals() {
    let mut rng = SmallRng::seed_from_u64(0xC1);
    for _ in 0..12 {
        let len = rng.gen_range(16usize..96);
        let xs = vec_in(&mut rng, len, -10.0, 10.0);
        let rec = istft(&stft(&xs, StftConfig::paper_default()));
        assert_eq!(rec.len(), xs.len());
        for (a, b) in xs.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-7 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }
}

#[test]
fn acf_bounded_and_unit_at_lag_zero_seeded() {
    let mut rng = SmallRng::seed_from_u64(0xC2);
    for _ in 0..12 {
        let len = rng.gen_range(8usize..128);
        let xs = vec_in(&mut rng, len, -5.0, 5.0);
        let acf = autocorrelation(&xs, xs.len() / 2);
        assert!((acf[0] - 1.0).abs() < 1e-9);
        for (lag, &v) in acf.iter().enumerate() {
            assert!(v.abs() <= 1.0 + 1e-9, "lag {lag}: {v}");
        }
    }
}

#[test]
fn signature_level1_is_displacement_seeded() {
    let mut rng = SmallRng::seed_from_u64(0xC3);
    for _ in 0..12 {
        let len = rng.gen_range(6usize..40);
        let points = vec_in(&mut rng, len, -3.0, 3.0);
        let path = Matrix::from_fn(points.len(), 1, |r, _| points[r]);
        let sig = signature(&path, 2);
        assert_eq!(sig.len(), signature_dim(1, 2));
        let displacement = points.last().unwrap() - points.first().unwrap();
        assert!((sig[0] - displacement).abs() < 1e-9);
        assert!((sig[1] - displacement * displacement / 2.0).abs() < 1e-7);
    }
}

#[test]
fn signature_translation_invariance_and_reversal_seeded() {
    let mut rng = SmallRng::seed_from_u64(0xC4);
    for _ in 0..12 {
        let rows = rng.gen_range(4usize..12);
        let points = vec_in(&mut rng, rows * 2, -2.0, 2.0);
        let shift = rng.gen_range(-10.0..10.0);
        let path = Matrix::from_fn(rows, 2, |r, c| points[r * 2 + c]);
        let shifted = path.map(|v| v + shift);
        let s1 = signature(&path, 2);
        let s2 = signature(&shifted, 2);
        for (a, b) in s1.iter().zip(&s2) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        // reversal negates level 1 (1-D path)
        let line = Matrix::from_fn(rows, 1, |r, _| points[r]);
        let reversed = Matrix::from_fn(rows, 1, |r, _| points[rows - 1 - r]);
        let s = signature(&line, 1);
        let sr = signature(&reversed, 1);
        assert!((s[0] + sr[0]).abs() < 1e-9);
    }
}
