//! Property tests on the spectral substrate: exact invertibility and
//! analytic bounds that the flows and measures rely on.

use proptest::prelude::*;
use tsgb_linalg::Matrix;
use tsgb_signal::acf::autocorrelation;
use tsgb_signal::signature::{signature, signature_dim};
use tsgb_signal::stft::{istft, stft, StftConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stft_roundtrips_any_signal(xs in prop::collection::vec(-10.0f64..10.0, 16..96)) {
        let cfg = StftConfig::paper_default();
        let rec = istft(&stft(&xs, cfg));
        prop_assert_eq!(rec.len(), xs.len());
        for (a, b) in xs.iter().zip(&rec) {
            prop_assert!((a - b).abs() < 1e-7 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn acf_is_bounded_and_unit_at_lag_zero(
        xs in prop::collection::vec(-5.0f64..5.0, 8..128),
    ) {
        let max_lag = xs.len() / 2;
        let acf = autocorrelation(&xs, max_lag);
        // lag 0 is exactly 1 for any non-constant series, else the
        // delta convention
        prop_assert!((acf[0] - 1.0).abs() < 1e-9);
        for (lag, &v) in acf.iter().enumerate() {
            prop_assert!(v.abs() <= 1.0 + 1e-9, "lag {lag}: {v}");
        }
    }

    #[test]
    fn signature_level1_is_displacement(
        points in prop::collection::vec(-3.0f64..3.0, 6..40),
    ) {
        let path = Matrix::from_fn(points.len(), 1, |r, _| points[r]);
        let sig = signature(&path, 2);
        prop_assert_eq!(sig.len(), signature_dim(1, 2));
        let displacement = points.last().unwrap() - points.first().unwrap();
        prop_assert!((sig[0] - displacement).abs() < 1e-9);
        // 1-D level 2 is always displacement^2 / 2 (no area in 1-D)
        prop_assert!((sig[1] - displacement * displacement / 2.0).abs() < 1e-7);
    }

    #[test]
    fn signature_is_translation_invariant(
        points in prop::collection::vec(-2.0f64..2.0, 8..24),
        shift in -10.0f64..10.0,
    ) {
        let d = 2usize;
        let rows = points.len() / d;
        let path = Matrix::from_fn(rows, d, |r, c| points[r * d + c]);
        let shifted = path.map(|v| v + shift);
        let s1 = signature(&path, 2);
        let s2 = signature(&shifted, 2);
        for (a, b) in s1.iter().zip(&s2) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn signature_reversal_negates_level1(
        points in prop::collection::vec(-2.0f64..2.0, 8..24),
    ) {
        let path = Matrix::from_fn(points.len(), 1, |r, _| points[r]);
        let reversed = Matrix::from_fn(points.len(), 1, |r, _| points[points.len() - 1 - r]);
        let s = signature(&path, 1);
        let sr = signature(&reversed, 1);
        prop_assert!((s[0] + sr[0]).abs() < 1e-9);
    }
}
