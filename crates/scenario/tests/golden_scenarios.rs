//! Golden-value regression for the scenario engine: pins the exact
//! reports of all three task families on a fast-profile TimeVAE (the
//! method with both capabilities) plus the capability-less path on
//! FourierFlow, against a committed fixture.
//!
//! Regenerate after an *intentional* numeric change:
//!
//! ```text
//! TSGB_UPDATE_GOLDEN=1 cargo test -p tsgb-scenario --test golden_scenarios
//! ```

use tsgb_linalg::rng::seeded;
use tsgb_linalg::Tensor3;
use tsgb_methods::fourierflow::FourierFlow;
use tsgb_methods::timevae::TimeVae;
use tsgb_methods::{TrainConfig, TsgMethod};
use tsgb_scenario::{Scenario, ScenarioConfig, ScenarioReport};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_scenarios.json"
);
const TOL: f64 = 1e-9;

fn reference() -> Tensor3 {
    Tensor3::from_fn(24, 8, 2, |s, t, f| {
        0.5 + 0.4 * ((t + s) as f64 * 0.7 + f as f64).sin()
    })
}

fn trained(method: &mut dyn TsgMethod, seed: u64) {
    let cfg = TrainConfig {
        epochs: 3,
        ..TrainConfig::fast()
    };
    method.fit(&reference(), &cfg, &mut seeded(seed));
}

/// Every scenario on TimeVAE, plus conditional on FourierFlow (the
/// unsupported branch), flattened to `scenario.metric` rows.
fn run_all() -> Vec<(String, f64)> {
    let data = reference();
    let cfg = ScenarioConfig::default();
    let mut vae = TimeVae::new(8, 2);
    trained(&mut vae, 7);
    let mut rows = Vec::new();
    for s in cfg.all() {
        let report = s.run(&vae, &data, 42);
        flatten(&report, &mut rows);
    }
    let mut flow = FourierFlow::new(8, 2);
    trained(&mut flow, 8);
    let unsupported = cfg.conditional().run(&flow, &data, 42);
    assert_eq!(unsupported.metric("cond.supported"), Some(0.0));
    flatten(&unsupported, &mut rows);
    rows
}

fn flatten(report: &ScenarioReport, rows: &mut Vec<(String, f64)>) {
    for (k, v) in &report.metrics {
        rows.push((format!("{}.{k}", report.scenario), *v));
    }
}

fn render_fixture(vals: &[(String, f64)]) -> String {
    let rows: Vec<String> = vals
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    format!("{{\n{}\n}}\n", rows.join(",\n"))
}

fn parse_fixture(s: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in s.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        let key = k.trim().trim_matches('"');
        if let Ok(num) = v.trim().parse::<f64>() {
            out.push((key.to_string(), num));
        }
    }
    out
}

#[test]
fn golden_reports_match_fixture() {
    let vals = run_all();

    if std::env::var_os("TSGB_UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, render_fixture(&vals)).expect("write fixture");
        return;
    }

    let expected = parse_fixture(
        &std::fs::read_to_string(FIXTURE)
            .expect("fixture missing; regenerate with TSGB_UPDATE_GOLDEN=1"),
    );
    assert_eq!(vals.len(), expected.len(), "metric count changed vs fixture");
    for ((label, got), (exp_label, exp)) in vals.iter().zip(&expected) {
        assert_eq!(label, exp_label, "metric order changed vs fixture");
        assert!(
            (got - exp).abs() <= TOL,
            "{label} drifted: got {got}, fixture {exp}"
        );
    }
}

#[test]
fn reports_are_seed_deterministic() {
    let a = run_all();
    let b = run_all();
    let bits = |v: &[(String, f64)]| -> Vec<(String, u64)> {
        v.iter().map(|(k, x)| (k.clone(), x.to_bits())).collect()
    };
    assert_eq!(bits(&a), bits(&b));
}

#[test]
fn streaming_contract_holds_in_the_golden_workload() {
    let vals = run_all();
    let get = |name: &str| {
        vals.iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .1
    };
    assert_eq!(get("streaming.stream.bit_identical"), 1.0);
    assert_eq!(get("streaming.stream.windows"), 16.0);
    assert_eq!(get("streaming.stream.chunks"), 4.0);
    assert_eq!(get("conditional.cond.supported"), 1.0);
    assert_eq!(get("conditional.cond.deterministic"), 1.0);
    assert!(get("conditional.cond.mean_spread") > 0.0);
    assert!((0.0..=1.0).contains(&get("imputation.imp.masked_fraction")));
    // generator infill must at least be scored; the baseline row exists
    assert!(get("imputation.imp.mae") >= 0.0);
    assert!(get("imputation.imp.baseline_mae") >= 0.0);
}
