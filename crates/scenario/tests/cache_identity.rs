//! The imputation scenario's cache contract: running against a cold
//! explicit eval cache, a warm one, and no cache at all must produce
//! bit-identical reports — pre-drawn seeds mean a cache skip can
//! never shift a later draw.

use tsgb_evalcache::EvalCache;
use tsgb_linalg::rng::seeded;
use tsgb_linalg::Tensor3;
use tsgb_methods::timevae::TimeVae;
use tsgb_methods::{TrainConfig, TsgMethod};
use tsgb_scenario::ScenarioConfig;

fn reference() -> Tensor3 {
    Tensor3::from_fn(24, 8, 2, |s, t, f| {
        0.5 + 0.4 * ((t + s) as f64 * 0.7 + f as f64).sin()
    })
}

#[test]
fn imputation_report_is_bit_identical_cold_warm_and_uncached() {
    let data = reference();
    let mut vae = TimeVae::new(8, 2);
    let cfg = TrainConfig {
        epochs: 3,
        ..TrainConfig::fast()
    };
    vae.fit(&data, &cfg, &mut seeded(7));

    let scenario = ScenarioConfig::default().imputation();
    let plain = scenario.run_with_cache(&vae, &data, 42, None);
    let ec = EvalCache::in_memory();
    let cold = scenario.run_with_cache(&vae, &data, 42, Some(&ec));
    let stats_after_cold = ec.stats();
    let warm = scenario.run_with_cache(&vae, &data, 42, Some(&ec));
    let stats_after_warm = ec.stats();

    let bits = |r: &tsgb_scenario::ScenarioReport| -> Vec<(String, u64)> {
        r.metrics
            .iter()
            .map(|(k, v)| (k.clone(), v.to_bits()))
            .collect()
    };
    assert_eq!(bits(&plain), bits(&cold), "cold cache changed a bit");
    assert_eq!(bits(&cold), bits(&warm), "warm cache changed a bit");

    // the warm pass actually hit: no new misses, at least the three
    // scalar measures (imp.MAE ×2 + imp.MMD) served from the store
    assert_eq!(stats_after_warm.misses, stats_after_cold.misses);
    assert!(
        stats_after_warm.hits >= stats_after_cold.hits + 3,
        "warm stats {stats_after_warm:?} vs cold {stats_after_cold:?}"
    );
}
