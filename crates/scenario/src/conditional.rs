//! The conditional task family: class-conditioned sampling through
//! the [`ConditionalSample`] capability.
//!
//! The scenario asks a method for `per_class` windows of each of
//! `classes` labels and scores three things: per-class fidelity to
//! the reference (mean MDD), whether distinct labels actually
//! *separate* in output space (spread of class means — a conditioner
//! that ignores its label scores 0), and determinism (the same
//! `(label, seed)` must reproduce bit-for-bit). Methods without the
//! capability report `cond.supported = 0` and nothing else, so grid
//! rows stay comparable without pretending an unconditional method
//! conditioned.

use crate::{pre_draw_seeds, Scenario, ScenarioReport};
use tsgb_eval::feature_based;
use tsgb_linalg::rng::seeded;
use tsgb_linalg::Tensor3;
use tsgb_methods::{Condition, TsgMethod};

/// Class-conditioned sampling of `per_class` windows per label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConditionalScenario {
    /// How many class labels to sample (`0..classes`).
    pub classes: u32,
    /// Windows per class.
    pub per_class: usize,
    /// Conditioning strength passed to [`Condition::Class`].
    pub strength: f64,
}

impl Scenario for ConditionalScenario {
    fn name(&self) -> &'static str {
        "conditional"
    }

    fn run(&self, method: &dyn TsgMethod, reference: &Tensor3, seed: u64) -> ScenarioReport {
        let _span = tsgb_obs::span("scenario.conditional");
        let mut report = ScenarioReport::new(self.name());
        let Some(cond) = method.conditional() else {
            report.push("cond.supported", 0.0);
            return report;
        };

        // one pre-drawn seed per class, fixed before any generation
        let class_seeds = pre_draw_seeds(seed, self.classes as usize);

        let mut class_means = Vec::new();
        let mut mdd_sum = 0.0;
        let mut deterministic = true;
        for (label, &class_seed) in class_seeds.iter().enumerate() {
            let c = Condition::Class {
                label: label as u32,
                strength: self.strength,
            };
            let t = cond.generate_conditioned(self.per_class, &c, &mut seeded(class_seed));
            let again = cond.generate_conditioned(self.per_class, &c, &mut seeded(class_seed));
            deterministic &= t == again;
            if tsgb_obs::enabled() {
                tsgb_obs::counter_add("scenario.cond.windows", t.samples() as u64);
            }
            mdd_sum += feature_based::mdd(reference, &t);
            class_means.push(mean(&t));
        }

        // spread: the largest gap between any two class means; a
        // label-blind conditioner collapses this to ~0
        let mut spread = 0.0f64;
        for i in 0..class_means.len() {
            for j in (i + 1)..class_means.len() {
                spread = spread.max((class_means[i] - class_means[j]).abs());
            }
        }

        report.push("cond.supported", 1.0);
        report.push("cond.classes", self.classes as f64);
        report.push("cond.deterministic", if deterministic { 1.0 } else { 0.0 });
        report.push("cond.mdd_mean", mdd_sum / self.classes.max(1) as f64);
        report.push("cond.mean_spread", spread);
        report
    }
}

fn mean(t: &Tensor3) -> f64 {
    if t.as_slice().is_empty() {
        return 0.0;
    }
    t.as_slice().iter().sum::<f64>() / t.as_slice().len() as f64
}
