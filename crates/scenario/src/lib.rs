#![warn(missing_docs)]

//! `tsgb-scenario`: task families beyond one-shot unconditional
//! generation, as a first-class engine.
//!
//! The core benchmark asks one question of a trained generator:
//! *sample `n` windows, how close are they to the reference?* Real
//! deployments ask more. This crate packages three such task families
//! behind one [`Scenario`] interface — seeded task construction →
//! generator invocation → scoring — so the runner, the CLI, and the
//! serving tier can treat them uniformly:
//!
//! * [`StreamingScenario`] — windows are consumed chunk-by-chunk as
//!   they are sampled ([`TsgMethod::open_stream`]); scored online with
//!   [`tsgb_eval::OnlineMeasures`], and pinned against the one-shot
//!   draw (streamed chunks must concatenate to the exact one-shot
//!   bits).
//! * [`ConditionalScenario`] — class-conditioned sampling through the
//!   [`ConditionalSample`] capability; scores per-class fidelity and
//!   whether distinct classes actually separate.
//! * [`ImputationScenario`] — contiguous spans are masked out of the
//!   reference ([`tsgb_data::mask::SpanMask`]); the generator's samples
//!   infill the holes, scored with infill MAE and MMD-on-infill
//!   through the eval-cache with dedicated `imp.*` kinds.
//!
//! **Determinism contract**: a scenario's report is a pure function of
//! `(method, reference, seed, config)`. Every random choice inside a
//! scenario draws from seeds pre-drawn off one stream *before* any
//! generation or scoring happens, so a cache hit (which skips
//! computing a measure) can never shift what a later stage samples —
//! the same discipline `tsgb-eval`'s suite uses. Golden fixtures in
//! `tests/golden_scenarios.rs` pin the exact values.
//!
//! Configuration comes from `TSGB_SCENARIO_*` environment variables
//! via [`ScenarioConfig::from_env`]; see the README table.

pub mod conditional;
pub mod imputation;
pub mod streaming;

pub use conditional::ConditionalScenario;
pub use imputation::ImputationScenario;
pub use streaming::StreamingScenario;

use tsgb_linalg::Tensor3;
use tsgb_methods::TsgMethod;

/// A task family: build a seeded task, invoke the generator, score
/// the outcome. Implementations are pure functions of their inputs.
pub trait Scenario {
    /// Stable lowercase name (`"streaming"`, `"conditional"`,
    /// `"imputation"`) — the CLI selector and the report label.
    fn name(&self) -> &'static str;

    /// Runs the scenario for one `(method, reference, seed)` triple.
    /// `reference` is the preprocessed `(R, l, N)` window set the
    /// method was trained on (or its held-out split).
    fn run(&self, method: &dyn TsgMethod, reference: &Tensor3, seed: u64) -> ScenarioReport;
}

/// The outcome of one scenario run: named metrics in a stable order
/// (fixtures and JSON rendering rely on the order).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Which scenario produced this report.
    pub scenario: &'static str,
    /// `(metric, value)` rows, in the scenario's documented order.
    pub metrics: Vec<(String, f64)>,
}

impl ScenarioReport {
    /// An empty report for `scenario`.
    pub fn new(scenario: &'static str) -> Self {
        Self {
            scenario,
            metrics: Vec::new(),
        }
    }

    /// Appends a metric row.
    pub fn push(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Looks a metric up by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Renders the report as a single JSON object:
    /// `{"scenario":"...","metrics":{"k":v,...}}`. Values use Rust's
    /// shortest-roundtrip float formatting; NaN (never produced by the
    /// built-in scenarios) would render as `null`.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| {
                if v.is_finite() {
                    format!("\"{k}\":{v}")
                } else {
                    format!("\"{k}\":null")
                }
            })
            .collect();
        format!(
            "{{\"scenario\":\"{}\",\"metrics\":{{{}}}}}",
            self.scenario,
            rows.join(",")
        )
    }
}

/// Configuration of the three built-in scenarios, one knob namespace
/// (`TSGB_SCENARIO_*`) shared by the CLI and the runner.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Windows the streaming scenario samples (`TSGB_SCENARIO_N`).
    pub n: usize,
    /// Streaming chunk size (`TSGB_SCENARIO_CHUNK`).
    pub chunk: usize,
    /// Masked fraction per channel (`TSGB_SCENARIO_MASK_RATE`).
    pub mask_rate: f64,
    /// Masked span length (`TSGB_SCENARIO_SPAN`).
    pub span_len: usize,
    /// Candidate pool size for imputation (`TSGB_SCENARIO_CANDIDATES`).
    pub candidates: usize,
    /// Class count for conditional generation (`TSGB_SCENARIO_CLASSES`).
    pub classes: u32,
    /// Conditioning strength (`TSGB_SCENARIO_STRENGTH`).
    pub strength: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            n: 16,
            chunk: 4,
            mask_rate: 0.15,
            span_len: 3,
            candidates: 4,
            classes: 3,
            strength: 1.0,
        }
    }
}

impl ScenarioConfig {
    /// Reads `TSGB_SCENARIO_*` over the defaults; unparsable values
    /// fall back to the default.
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            n: env_parse("TSGB_SCENARIO_N", d.n).max(1),
            chunk: env_parse("TSGB_SCENARIO_CHUNK", d.chunk).max(1),
            mask_rate: env_parse("TSGB_SCENARIO_MASK_RATE", d.mask_rate),
            span_len: env_parse("TSGB_SCENARIO_SPAN", d.span_len),
            candidates: env_parse("TSGB_SCENARIO_CANDIDATES", d.candidates).max(1),
            classes: env_parse("TSGB_SCENARIO_CLASSES", d.classes).max(1),
            strength: env_parse("TSGB_SCENARIO_STRENGTH", d.strength),
        }
    }

    /// The streaming scenario under this config.
    pub fn streaming(&self) -> StreamingScenario {
        StreamingScenario {
            n: self.n,
            chunk: self.chunk,
        }
    }

    /// The conditional scenario under this config.
    pub fn conditional(&self) -> ConditionalScenario {
        ConditionalScenario {
            classes: self.classes,
            per_class: self.n,
            strength: self.strength,
        }
    }

    /// The imputation scenario under this config.
    pub fn imputation(&self) -> ImputationScenario {
        ImputationScenario {
            spec: tsgb_data::MaskSpec {
                rate: self.mask_rate,
                span_len: self.span_len,
            },
            candidates: self.candidates,
        }
    }

    /// All three scenarios, in the engine's canonical order.
    pub fn all(&self) -> Vec<Box<dyn Scenario>> {
        vec![
            Box::new(self.streaming()),
            Box::new(self.conditional()),
            Box::new(self.imputation()),
        ]
    }

    /// The scenario with the given [`Scenario::name`], if any.
    pub fn by_name(&self, name: &str) -> Option<Box<dyn Scenario>> {
        self.all().into_iter().find(|s| s.name() == name)
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Pre-draws `k` independent sub-seeds off the scenario seed. Every
/// scenario draws **all** its seeds through this before invoking the
/// generator or any measure, so skipping a stage (e.g. an eval-cache
/// hit) cannot shift a later stage's stream.
pub(crate) fn pre_draw_seeds(seed: u64, k: usize) -> Vec<u64> {
    use tsgb_rand::Rng;
    let mut rng = tsgb_linalg::rng::seeded(seed);
    (0..k).map(|_| rng.gen::<u64>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_metrics() {
        let mut r = ScenarioReport::new("streaming");
        r.push("a", 1.5);
        r.push("b", -0.25);
        assert_eq!(r.metric("a"), Some(1.5));
        assert_eq!(r.metric("missing"), None);
        assert_eq!(
            r.to_json(),
            "{\"scenario\":\"streaming\",\"metrics\":{\"a\":1.5,\"b\":-0.25}}"
        );
    }

    #[test]
    fn config_defaults_are_documented_values() {
        let c = ScenarioConfig::default();
        assert_eq!((c.n, c.chunk), (16, 4));
        assert_eq!((c.mask_rate, c.span_len), (0.15, 3));
        assert_eq!((c.candidates, c.classes), (4, 3));
        assert_eq!(c.strength, 1.0);
    }

    #[test]
    fn all_names_are_unique_and_resolvable() {
        let c = ScenarioConfig::default();
        let names: Vec<&str> = c.all().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["streaming", "conditional", "imputation"]);
        for n in names {
            assert!(c.by_name(n).is_some());
        }
        assert!(c.by_name("nope").is_none());
    }

    #[test]
    fn pre_drawn_seeds_are_stable_and_distinct() {
        let a = pre_draw_seeds(7, 4);
        assert_eq!(a, pre_draw_seeds(7, 4));
        assert_ne!(a, pre_draw_seeds(8, 4));
        let unique: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 4);
    }
}
