//! The imputation task family: mask contiguous spans out of the
//! reference, infill them from the generator, score the infill.
//!
//! Task construction is a seeded [`SpanMask`] over the reference
//! tensor. The generator then earns its keep *without* an imputation
//! head: it samples a pool of `candidates` unconditional draws, and
//! for every reference window the candidate that best matches the
//! **observed** entries donates its values to the **masked** entries
//! (nearest-neighbor infill in the generator's own output space — the
//! standard trick for scoring unconditional generators on conditional
//! tasks). Scoring runs through `tsgb-eval`'s infill MAE and
//! MMD-on-infill, which cache under dedicated `imp.*` kinds; a linear
//! interpolation baseline is reported alongside so the generator's
//! number has a floor to beat.
//!
//! All seeds (mask, candidate draws) are pre-drawn before any
//! generation, so an eval-cache hit cannot shift what gets sampled —
//! `run` with a warm cache is bit-identical to a cold one.

use crate::{pre_draw_seeds, Scenario, ScenarioReport};
use tsgb_data::impute::{fill_missing, FillPolicy};
use tsgb_data::{MaskSpec, SpanMask};
use tsgb_eval::imputation::{infill_mae_cached, infill_mmd_cached};
use tsgb_evalcache::EvalCache;
use tsgb_linalg::rng::seeded;
use tsgb_linalg::{Matrix, Tensor3};
use tsgb_methods::TsgMethod;

/// Masked-span imputation with a generator candidate pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImputationScenario {
    /// Span-mask shape (rate + span length).
    pub spec: MaskSpec,
    /// Unconditional draws in the candidate pool (at least 1).
    pub candidates: usize,
}

impl Scenario for ImputationScenario {
    fn name(&self) -> &'static str {
        "imputation"
    }

    fn run(&self, method: &dyn TsgMethod, reference: &Tensor3, seed: u64) -> ScenarioReport {
        let ec = if tsgb_evalcache::enabled() {
            Some(tsgb_evalcache::global())
        } else {
            None
        };
        self.run_with_cache(method, reference, seed, ec)
    }
}

impl ImputationScenario {
    /// [`Scenario::run`] with an explicit eval cache (`None` = compute
    /// directly). Cold and warm caches produce bit-identical reports.
    pub fn run_with_cache(
        &self,
        method: &dyn TsgMethod,
        reference: &Tensor3,
        seed: u64,
        ec: Option<&EvalCache>,
    ) -> ScenarioReport {
        let _span = tsgb_obs::span("scenario.imputation");
        let (r, l, n) = reference.shape();
        let pool = self.candidates.max(1);

        // every seed this scenario will ever use, drawn up front
        let seeds = pre_draw_seeds(seed, 1 + pool);
        let mask = SpanMask::generate(r, l, n, self.spec, seeds[0]);

        let candidates: Vec<Tensor3> = seeds[1..]
            .iter()
            .map(|&s| method.generate(r, &mut seeded(s)))
            .collect();

        // per window: the candidate closest on OBSERVED entries donates
        // its masked entries (ties break toward the earliest draw)
        let mut chosen = candidates[0].clone();
        for s in 0..r {
            let mut best = 0usize;
            let mut best_err = f64::INFINITY;
            for (c, cand) in candidates.iter().enumerate() {
                let mut err = 0.0;
                for t in 0..l {
                    for f in 0..n {
                        if !mask.is_masked(s, t, f) {
                            let d = reference.at(s, t, f) - cand.at(s, t, f);
                            err += d * d;
                        }
                    }
                }
                if err < best_err {
                    best_err = err;
                    best = c;
                }
            }
            for t in 0..l {
                for f in 0..n {
                    *chosen.at_mut(s, t, f) = candidates[best].at(s, t, f);
                }
            }
        }
        let infilled = mask.overlay(reference, &chosen);
        if tsgb_obs::enabled() {
            tsgb_obs::counter_add("scenario.impute.windows", r as u64);
            tsgb_obs::counter_add("scenario.impute.masked", mask.masked_count() as u64);
        }

        let baseline = linear_baseline(reference, &mask);

        let mut report = ScenarioReport::new(self.name());
        report.push("imp.masked_fraction", mask.masked_fraction());
        report.push("imp.candidates", pool as f64);
        report.push(
            "imp.mae",
            infill_mae_cached(reference, &infilled, mask.bits(), ec),
        );
        report.push(
            "imp.mmd",
            infill_mmd_cached(reference, &infilled, mask.bits(), ec),
        );
        report.push(
            "imp.baseline_mae",
            infill_mae_cached(reference, &baseline, mask.bits(), ec),
        );
        report
    }
}

/// The interpolation floor: masked entries filled per window by linear
/// interpolation over the observed neighbors. A channel masked
/// end-to-end has nothing to interpolate from; its entries take the
/// midpoint of the normalized range (`0.5`) instead of panicking.
fn linear_baseline(reference: &Tensor3, mask: &SpanMask) -> Tensor3 {
    let (r, l, n) = reference.shape();
    let mut out = reference.clone();
    for s in 0..r {
        let holes = Matrix::from_fn(l, n, |t, f| {
            if mask.is_masked(s, t, f) {
                f64::NAN
            } else {
                reference.at(s, t, f)
            }
        });
        // fill_missing panics on fully-masked channels; patch those
        // with the range midpoint first
        let fully_masked: Vec<bool> = (0..n)
            .map(|f| (0..l).all(|t| mask.is_masked(s, t, f)))
            .collect();
        let patched = Matrix::from_fn(l, n, |t, f| {
            if fully_masked[f] {
                0.5
            } else {
                holes[(t, f)]
            }
        });
        let filled = fill_missing(&patched, FillPolicy::Linear);
        for t in 0..l {
            for f in 0..n {
                *out.at_mut(s, t, f) = filled[(t, f)];
            }
        }
    }
    out
}
