//! The streaming task family: consume windows chunk-by-chunk as they
//! are sampled.
//!
//! A monitor tailing a live generation stream never sees the full
//! tensor; it scores each chunk as it lands. This scenario reproduces
//! that consumption pattern against a trained method's
//! [`TsgMethod::open_stream`] and checks two things at once:
//!
//! * **fidelity** — the cheap online measures (MDD/ACD/SD/KD)
//!   accumulated over the chunks, exactly as the serving tier's
//!   monitor would compute them;
//! * **the streaming contract** — the concatenated chunks must be
//!   bit-identical to the one-shot `generate(n, seed)` draw, the
//!   invariant the serving tier's `/generate/stream` endpoint relies
//!   on to make streamed and one-shot responses interchangeable.

use crate::{Scenario, ScenarioReport};
use tsgb_eval::OnlineMeasures;
use tsgb_linalg::Tensor3;
use tsgb_methods::{GenSpec, TsgMethod};

/// Streaming consumption of `n` windows in chunks of `chunk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingScenario {
    /// Total windows to sample.
    pub n: usize,
    /// Windows per chunk (clamped to at least 1).
    pub chunk: usize,
}

impl Scenario for StreamingScenario {
    fn name(&self) -> &'static str {
        "streaming"
    }

    fn run(&self, method: &dyn TsgMethod, reference: &Tensor3, seed: u64) -> ScenarioReport {
        let _span = tsgb_obs::span("scenario.streaming");
        let spec = GenSpec { n: self.n, seed };
        let chunk = self.chunk.max(1);

        let mut stream = method.open_stream(spec);
        let mut online = OnlineMeasures::new(reference);
        let mut parts: Vec<Tensor3> = Vec::new();
        while stream.remaining() > 0 {
            let part = stream
                .next_chunk(chunk)
                .expect("remaining > 0 guarantees a chunk");
            online.push_tensor(&part);
            if tsgb_obs::enabled() {
                tsgb_obs::counter_add("scenario.stream.chunks", 1);
                tsgb_obs::counter_add("scenario.stream.windows", part.samples() as u64);
            }
            parts.push(part);
        }
        let chunks = parts.len();
        let streamed = concat(parts);

        // the contract check: streamed == one-shot, bit for bit
        let one_shot = method.generate(spec.n, &mut spec.rng());
        let identical = streamed.shape() == one_shot.shape()
            && streamed
                .as_slice()
                .iter()
                .zip(one_shot.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());

        let mut report = ScenarioReport::new(self.name());
        report.push("stream.windows", online.windows() as f64);
        report.push("stream.chunks", chunks as f64);
        report.push("stream.bit_identical", if identical { 1.0 } else { 0.0 });
        report.push("stream.mdd", online.mdd());
        report.push("stream.acd", online.acd());
        report.push("stream.sd", online.sd());
        report.push("stream.kd", online.kd());
        report
    }
}

fn concat(mut parts: Vec<Tensor3>) -> Tensor3 {
    let mut out = parts.remove(0);
    for p in &parts {
        out = out.concat_samples(p);
    }
    out
}
