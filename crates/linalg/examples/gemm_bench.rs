//! Ad-hoc packed-vs-band GEMM timing: `cargo run --release -p
//! tsgb-linalg --example gemm_bench [sizes...]`.

use std::time::Instant;
use tsgb_linalg::gemm::{with_gemm_mode, GemmMode};
use tsgb_linalg::rng::{randn_matrix, seeded};
use tsgb_linalg::Matrix;

fn best_ms(reps: usize, mut f: impl FnMut() -> Matrix) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut sink = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        sink += out.as_slice()[0];
    }
    (best, sink)
}

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("size"))
        .collect();
    let sizes = if sizes.is_empty() {
        vec![128, 256, 512]
    } else {
        sizes
    };
    for n in sizes {
        let mut rng = seeded(42);
        let a = randn_matrix(n, n, &mut rng);
        let b = randn_matrix(n, n, &mut rng);
        let reps = (400_000_000 / (n * n * n)).clamp(3, 50);
        let gflop = 2.0 * (n as f64).powi(3) / 1e6; // per ms
        for (label, mode) in [("band", GemmMode::Band), ("packed", GemmMode::Packed)] {
            let (ms, _) = with_gemm_mode(mode, || {
                tsgb_par::with_threads(1, || best_ms(reps, || a.matmul(&b)))
            });
            println!("matmul_{n} {label:>6}: {ms:9.3} ms  {:6.2} GFLOP/s", gflop / ms);
        }
        for (label, mode) in [("band", GemmMode::Band), ("packed", GemmMode::Packed)] {
            let (ms, _) = with_gemm_mode(mode, || {
                tsgb_par::with_threads(1, || {
                    best_ms(reps, || {
                        let c = a.matmul(&b);
                        let t = a.t_matmul(&b);
                        let m = a.matmul_t(&b);
                        std::hint::black_box((t, m));
                        c
                    })
                })
            });
            println!("triple_{n} {label:>6}: {ms:9.3} ms");
        }
        // sanity: bit-identity on all three entry points
        for (op, f) in [
            ("matmul", (&|x: &Matrix, y: &Matrix| x.matmul(y)) as &dyn Fn(&Matrix, &Matrix) -> Matrix),
            ("t_matmul", &|x, y| x.t_matmul(y)),
            ("matmul_t", &|x, y| x.matmul_t(y)),
        ] {
            let band = with_gemm_mode(GemmMode::Band, || f(&a, &b));
            let packed = with_gemm_mode(GemmMode::Packed, || f(&a, &b));
            assert_eq!(band, packed, "packed != band for {op} at {n}");
        }
    }
}
