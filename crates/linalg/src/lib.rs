#![warn(missing_docs)]

//! `tsgb-linalg`: the dense linear-algebra and statistics substrate for
//! TSGBench.
//!
//! Everything in the benchmark — the neural-network tape in `tsgb-nn`,
//! the spectral transforms in `tsgb-signal`, the evaluation measures in
//! `tsgb-eval` — is built on two containers defined here:
//!
//! * [`Matrix`]: a row-major dense `f64` matrix,
//! * [`Tensor3`]: a contiguous `(samples, seq_len, features)` tensor,
//!   the canonical shape `(R, l, N)` of a preprocessed TSG dataset
//!   (paper §4.1).
//!
//! The crate also provides descriptive statistics ([`stats`]) used by
//! the feature-based measures (MDD/ACD/SD/KD, paper §4.2) and seeded
//! RNG helpers ([`rng`]) so that every stochastic component of the
//! benchmark is reproducible.

pub mod detmath;
pub mod eigen;
pub mod gemm;
pub mod matrix;
pub mod matrix_f32;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod tensor;

pub use matrix::Matrix;
pub use matrix_f32::MatrixF32;
pub use pool::MatrixPool;
pub use tensor::Tensor3;
