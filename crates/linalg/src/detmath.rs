//! Vendored deterministic transcendentals: `exp`, `sigmoid`, `tanh`.
//!
//! The nn stack (and the compiled execution plan replaying it) needs
//! activation kernels that are (a) bit-reproducible everywhere and
//! (b) fast enough to not dominate a training step. libm gives
//! neither: its `exp`/`tanh` bits vary across libc versions and CPU
//! dispatch, and the scalar calls cost as much as a 32×32 GEMM per
//! 1024-element activation. These kernels use only IEEE-754 `f64`
//! multiplies, adds, compares and bit casts in a fixed order — no
//! libm, no FMA, no lookup tables, and crucially no float→int
//! conversions (the `2^n` scale is pulled straight out of the
//! magic-rounding constant's bit pattern) — so results are identical
//! on every IEEE platform with round-to-nearest, and the
//! straight-line lane-independent body autovectorizes inside
//! `Matrix::map_into` loops even at the baseline SSE2 target. This
//! continues the repo's vendored-`rand` determinism policy (see
//! README "Offline build").
//!
//! Accuracy: `exp` ≤ ~2 ulp over the clamped range, `sigmoid`/`tanh`
//! ≤ ~5 ulp absolute-relative hybrid — far below any tolerance that
//! matters for training or evaluation, but *not* bit-equal to libm:
//! switching an activation site onto these kernels is an intentional
//! numeric change (regenerate golden fixtures per their docs).

// The published Cephes coefficients are kept digit for digit even
// where the decimal expansion exceeds f64 precision, and `INV_LN2` is
// the reduction constant, not a use of `LOG2_E`. The clamp in `exp`
// is deliberately `max().min()` rather than `f64::clamp`: that order
// squashes NaN lanes to a finite value inside the branch-free body,
// leaving the final bit-select as the single NaN authority.
#![allow(
    clippy::excessive_precision,
    clippy::approx_constant,
    clippy::manual_clamp
)]

/// Round-to-nearest-integer magic constant `1.5 · 2^52`: adding it to
/// any |x| < 2^51 leaves the nearest integer (ties-to-even) in the
/// low mantissa bits — the sum's ulp is exactly 1, so its bit pattern
/// is `SHIFT.to_bits() + n`. That makes the reduction exponent `n`
/// available as *bits* without ever converting a float to an integer.
const SHIFT: f64 = 6755399441055744.0;

/// `ln 2` split Cody-Waite style: `LN2_HI` carries ~20 trailing zero
/// bits so `n * LN2_HI` is exact for the |n| ≤ 1100 this range
/// reduction produces.
const LN2_HI: f64 = 6.93147180369123816490e-01;
const LN2_LO: f64 = 1.90821492927058770002e-10;
const INV_LN2: f64 = 1.44269504088896338700e+00;

/// Argument clamp chosen so the single `2^n` scale factor stays a
/// *normal* f64: `n = round(x/ln2)` lands in [−1021, 1023], i.e. the
/// biased exponent `1023 + n` stays in (0, 2047). Below −708 the true
/// `exp` is ≤ 3.4e−308 — indistinguishable from the saturated value
/// for every sigmoid/tanh consumer — and above 709 it would overflow.
const EXP_LO: f64 = -708.0;
const EXP_HI: f64 = 709.0;

/// Numerator/denominator coefficients of the classical Padé-style
/// rational `e^r − 1 = 2·rP(r²) / (Q(r²) − rP(r²))` for |r| ≤
/// (ln 2)/2 — the Cephes `exp` pair, good to ~1 ulp on the interval
/// with half the multiply-add chain of the equivalent Taylor
/// polynomial, at the price of one (vectorizable) division. `P(0) =
/// 1` and `Q(0) = 2` make the leading term exactly `r` for tiny `r`.
/// The denominator `Q − rP ≥ 1.67` on the interval: no cancellation.
const P0: f64 = 1.26177193074810590878e-4;
const P1: f64 = 3.02994407707441961300e-2;
const P2: f64 = 9.99999999999999999910e-1;
const Q0: f64 = 3.00198505138664455042e-6;
const Q1: f64 = 2.52448340349684104192e-3;
const Q2: f64 = 2.27265548208155028766e-1;
const Q3: f64 = 2.00000000000000000005e0;

/// Range reduction `x = n·ln2 + r` for a pre-clamped `x`: returns
/// `(n_f, px, q, scale)` with `n_f` the nearest integer to `x/ln2`
/// (as a float — it is only ever compared against 0.0), `px = rP(r²)`
/// and `q = Q(r²)` the rational's halves (so `e^r − 1 = 2px/(q −
/// px)`), and `scale = 2^n`, giving `e^x = (1 + 2px/(q − px)) ·
/// scale`. Callers keep the halves separate so [`tanh`]'s small
/// branch can divide exactly once.
///
/// `scale` is built by bit surgery on the magic sum `m = x/ln2 +
/// SHIFT`: `m.to_bits()` is `SHIFT.to_bits() + n`, and
/// `SHIFT.to_bits()` has twelve zero low bits, so `(m.to_bits() +
/// 1023) << 52` is exactly the biased-exponent pattern of `2^n`. One
/// integer add and one constant shift — both plain SIMD ops — replace
/// the float→int conversion that would otherwise block
/// autovectorization on targets without `vcvttpd2qq`.
#[inline(always)]
fn reduce(x: f64) -> (f64, f64, f64, f64) {
    let m = x * INV_LN2 + SHIFT;
    let n_f = m - SHIFT;
    let r = (x - n_f * LN2_HI) - n_f * LN2_LO;
    let z = r * r;
    let px = r * (P2 + z * (P1 + z * P0));
    let q = Q3 + z * (Q2 + z * (Q1 + z * Q0));
    let scale = f64::from_bits(m.to_bits().wrapping_add(1023) << 52);
    (n_f, px, q, scale)
}

/// Deterministic `e^x`, saturating outside [−708, 709] (well past
/// where `sigmoid`/`tanh` are flat to the last bit; the low saturated
/// value is ~3.3e−308, not 0.0). NaN passes through.
#[inline(always)]
pub fn exp(x: f64) -> f64 {
    let xc = x.max(EXP_LO).min(EXP_HI);
    let (_n, px, q, scale) = reduce(xc);
    let p = (2.0 * px) / (q - px);
    let v = (1.0 + p) * scale;
    if x.is_nan() {
        x
    } else {
        v
    }
}

/// Deterministic logistic sigmoid `1 / (1 + e^{−x})`. The sum
/// `1 + e^{−x}` never cancels, so accuracy tracks [`exp`]. NaN passes
/// through (via [`exp`]'s passthrough).
#[inline(always)]
pub fn sigmoid(x: f64) -> f64 {
    let z = exp(-x);
    1.0 / (1.0 + z)
}

/// Deterministic `tanh x` via `s = e^{−2|x|}`:
///
/// * reduction exponent `n == 0` (|x| ≤ (ln2)/4): with `p = s − 1 =
///   2px/(q − px)`, the target `−p/(p + 2)` collapses algebraically
///   to `−px/q` — a *single* division with no `1 − s` cancellation,
///   exact down to `tanh x → x` for tiny x (two chained divisions
///   would double-round 1 ulp low there);
/// * otherwise `tanh |x| = (1 − s)/(1 + s)` with `1 − s ≥ 0.29`, so
///   cancellation is bounded to ~2 ulp.
///
/// The sign is restored by bit copy, preserving ±0. Saturates to
/// exactly 1.0 once `s` drops below the rounding threshold, same as
/// libm. NaN passes through.
#[inline(always)]
pub fn tanh(x: f64) -> f64 {
    let ax = f64::from_bits(x.to_bits() & !(1u64 << 63));
    let y = (-2.0 * ax).max(EXP_LO);
    let (n_f, px, q, scale) = reduce(y);
    let p = (2.0 * px) / (q - px);
    let s = (1.0 + p) * scale;
    // `0.0 - px` rather than `-px`: keeps `tanh(±0) == ±0` (negating
    // the `px == +0.0` of a zero argument would leak a −0.0
    // magnitude).
    let small = (0.0 - px) / q;
    let big = (1.0 - s) / (1.0 + s);
    let t = if n_f == 0.0 { small } else { big };
    let signed = f64::from_bits(t.to_bits() | (x.to_bits() & (1u64 << 63)));
    if x.is_nan() {
        x
    } else {
        signed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulps(a: f64, b: f64) -> i64 {
        (a.to_bits() as i64 - b.to_bits() as i64).abs()
    }

    #[test]
    fn exp_tracks_libm_within_ulps() {
        let mut worst = 0i64;
        let mut x = -700.0f64;
        while x < 700.0 {
            let got = exp(x);
            let want = x.exp();
            assert!(
                (got - want).abs() <= want.abs() * 1e-14,
                "exp({x}): got {got}, libm {want}"
            );
            worst = worst.max(ulps(got, want));
            x += 0.137;
        }
        assert!(worst <= 16, "exp drifted {worst} ulps from libm");
    }

    #[test]
    fn exp_special_values() {
        assert_eq!(exp(0.0), 1.0);
        assert!(exp(f64::NAN).is_nan());
        assert!(exp(-1000.0) > 0.0, "saturates positive, not zero");
        assert!(exp(-1000.0) < 1e-300);
        assert!(exp(1000.0).is_finite(), "high clamp avoids overflow");
        assert!(exp(1000.0) > 1e300);
    }

    #[test]
    fn sigmoid_matches_formula_and_saturates() {
        let mut x = -40.0f64;
        while x < 40.0 {
            let got = sigmoid(x);
            let want = 1.0 / (1.0 + (-x).exp());
            assert!(
                (got - want).abs() <= 4e-16,
                "sigmoid({x}): got {got}, libm {want}"
            );
            x += 0.0613;
        }
        assert_eq!(sigmoid(40.0), 1.0);
        assert_eq!(sigmoid(1e12), 1.0);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(-800.0) < 1e-300);
        assert!(sigmoid(f64::NAN).is_nan());
    }

    #[test]
    fn tanh_tracks_libm_and_is_odd() {
        let mut worst = 0i64;
        let mut x = 1e-12f64;
        while x < 25.0 {
            for s in [x, -x] {
                let got = tanh(s);
                let want = s.tanh();
                assert!(
                    (got - want).abs() <= 1e-15,
                    "tanh({s}): got {got}, libm {want}"
                );
                worst = worst.max(ulps(got, want));
                assert_eq!(tanh(-s).to_bits(), (-tanh(s)).to_bits(), "odd symmetry");
            }
            x *= 1.17;
        }
        assert!(worst <= 32, "tanh drifted {worst} ulps from libm");
    }

    #[test]
    fn tanh_special_values() {
        assert_eq!(tanh(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(tanh(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(tanh(25.0), 1.0);
        assert_eq!(tanh(-25.0), -1.0);
        assert_eq!(tanh(1e300), 1.0);
        assert!(tanh(f64::NAN).is_nan());
        // tiny arguments come back unchanged (tanh x = x − x³/3 …)
        for t in [1e-9f64, 1e-12, -3e-10] {
            assert_eq!(tanh(t).to_bits(), t.to_bits(), "tanh({t}) != {t}");
        }
    }

    #[test]
    fn results_are_reproducible_bit_for_bit() {
        let mut x = -30.0f64;
        while x < 30.0 {
            assert_eq!(exp(x).to_bits(), exp(x).to_bits());
            assert_eq!(tanh(x).to_bits(), tanh(x).to_bits());
            assert_eq!(sigmoid(x).to_bits(), sigmoid(x).to_bits());
            x += 0.1709;
        }
    }
}
