//! Descriptive statistics used throughout the benchmark.
//!
//! The feature-based measures of paper §4.2 (MDD, ACD, SD, KD) are all
//! functionals of the statistics defined here: empirical histograms
//! with shared bin edges, autocorrelation-ready moments, skewness and
//! kurtosis. The implementations use the *population* (biased) moment
//! estimators, matching the NumPy defaults the original TSGBench code
//! relies on.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (divide by `n`); 0 for slices shorter than 1.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population skewness `E[(x - mu)^3] / sigma^3`; 0 when the variance
/// vanishes (a constant series is symmetric by convention).
pub fn skewness(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 || xs.is_empty() {
        return 0.0;
    }
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / xs.len() as f64;
    m3 / s.powi(3)
}

/// Population kurtosis `E[(x - mu)^4] / sigma^4` (non-excess, so a
/// Gaussian scores 3); 0 when the variance vanishes.
pub fn kurtosis(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let s = std_dev(xs);
    if s < 1e-12 || xs.is_empty() {
        return 0.0;
    }
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / xs.len() as f64;
    m4 / s.powi(4)
}

/// Sample covariance between two equal-length slices (divide by `n`).
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance length mismatch");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Pearson correlation; 0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx < 1e-12 || sy < 1e-12 {
        return 0.0;
    }
    covariance(xs, ys) / (sx * sy)
}

/// An empirical histogram over fixed bin edges.
///
/// The Marginal Distribution Difference (M4) compares the *generated*
/// series against histograms whose bin centers and widths come from
/// the *original* series, so the edges must be shareable across the
/// two histograms — hence this explicit-edges representation.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// `bins + 1` monotonically increasing edges.
    pub edges: Vec<f64>,
    /// Normalized bin masses (sums to 1 when any sample fell in range).
    pub density: Vec<f64>,
}

impl Histogram {
    /// Equal-width edges spanning `[lo, hi]` with `bins` bins. Degenerate
    /// ranges are widened by a small epsilon so every value lands in a bin.
    pub fn edges_for_range(lo: f64, hi: f64, bins: usize) -> Vec<f64> {
        assert!(bins > 0, "histogram needs at least one bin");
        let (lo, hi) = if hi - lo < 1e-12 {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        let w = (hi - lo) / bins as f64;
        (0..=bins).map(|i| lo + w * i as f64).collect()
    }

    /// Histogram of `xs` over the given edges. Values outside the range
    /// are clamped into the terminal bins (matching `numpy.histogram`'s
    /// treatment of the inclusive upper edge, extended to both tails so
    /// generated data that escapes `[0, 1]` is still counted).
    pub fn with_edges(xs: &[f64], edges: &[f64]) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        let bins = edges.len() - 1;
        let mut counts = vec![0.0f64; bins];
        let lo = edges[0];
        let hi = edges[bins];
        let w = (hi - lo) / bins as f64;
        for &x in xs {
            let idx = if w <= 0.0 {
                0
            } else {
                (((x - lo) / w).floor() as isize).clamp(0, bins as isize - 1) as usize
            };
            counts[idx] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        Self {
            edges: edges.to_vec(),
            density: counts,
        }
    }

    /// Convenience: histogram of `xs` over `bins` equal bins spanning
    /// the data's own range.
    pub fn of(xs: &[f64], bins: usize) -> Self {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if xs.is_empty() { (0.0, 1.0) } else { (lo, hi) };
        Self::with_edges(xs, &Self::edges_for_range(lo, hi, bins))
    }

    /// Mean absolute difference between two histograms over the same
    /// edges — the inner kernel of the MDD measure.
    pub fn mean_abs_diff(&self, other: &Histogram) -> f64 {
        assert_eq!(self.edges, other.edges, "histograms must share edges");
        let n = self.density.len();
        self.density
            .iter()
            .zip(&other.density)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / n as f64
    }
}

/// Linearly interpolated quantile `q` in `[0, 1]` of the data.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Gaussian kernel density estimate evaluated at `points`, with
/// Silverman's rule-of-thumb bandwidth. Used by the Distribution Plot
/// (M10) to compare density, spread and central tendency.
pub fn kde(xs: &[f64], points: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return vec![0.0; points.len()];
    }
    let n = xs.len() as f64;
    let s = std_dev(xs).max(1e-9);
    let h = 1.06 * s * n.powf(-0.2);
    let norm = 1.0 / (n * h * (2.0 * std::f64::consts::PI).sqrt());
    points
        .iter()
        .map(|&p| {
            xs.iter()
                .map(|&x| {
                    let z = (p - x) / h;
                    (-0.5 * z * z).exp()
                })
                .sum::<f64>()
                * norm
        })
        .collect()
}

/// Ranks with ties averaged (1-based), as required by the Friedman
/// test. `values` are ranked ascending: the smallest value gets rank 1.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaNs in ranks"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skewness_sign() {
        let right = [1.0, 1.0, 1.0, 1.0, 10.0];
        let left = [10.0, 10.0, 10.0, 10.0, 1.0];
        assert!(skewness(&right) > 0.5);
        assert!(skewness(&left) < -0.5);
        let sym = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&sym).abs() < 1e-12);
    }

    #[test]
    fn kurtosis_of_constant_and_uniformish() {
        assert_eq!(kurtosis(&[3.0; 10]), 0.0);
        // Two-point symmetric distribution has kurtosis exactly 1.
        let two = [-1.0, 1.0, -1.0, 1.0];
        assert!((kurtosis(&two) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yneg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &yneg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn histogram_normalizes_and_clamps() {
        let edges = Histogram::edges_for_range(0.0, 1.0, 4);
        let h = Histogram::with_edges(&[0.1, 0.3, 0.6, 0.9, 1.5, -0.5], &edges);
        assert!((h.density.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // out-of-range values clamp to the terminal bins
        assert!(h.density[0] > 0.0 && h.density[3] > 0.0);
    }

    #[test]
    fn identical_histograms_have_zero_mdd() {
        let xs = [0.1, 0.4, 0.4, 0.8];
        let edges = Histogram::edges_for_range(0.0, 1.0, 10);
        let a = Histogram::with_edges(&xs, &edges);
        let b = Histogram::with_edges(&xs, &edges);
        assert_eq!(a.mean_abs_diff(&b), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn kde_integrates_roughly_to_one() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) / 100.0).collect();
        let grid: Vec<f64> = (-100..200).map(|i| i as f64 / 100.0).collect();
        let dens = kde(&xs, &grid);
        let integral: f64 = dens.iter().sum::<f64>() * 0.01;
        assert!((integral - 1.0).abs() < 0.05, "integral = {integral}");
    }

    #[test]
    fn ranks_handle_ties() {
        let r = average_ranks(&[3.0, 1.0, 3.0, 2.0]);
        assert_eq!(r, vec![3.5, 1.0, 3.5, 2.0]);
    }
}
