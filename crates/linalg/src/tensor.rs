//! The `(samples, seq_len, features)` tensor used for every TSG
//! dataset in the benchmark.
//!
//! After the preprocessing pipeline of paper §4.1, a dataset is a
//! tensor of shape `(R, l, N)`: `R` overlapping windows, each a
//! multivariate series of length `l` with `N` channels. [`Tensor3`]
//! stores this contiguously (sample-major, then time, then feature),
//! so a single sample is a contiguous `l x N` block that can be viewed
//! as a [`Matrix`] without copying the underlying layout semantics.

use crate::matrix::Matrix;
use std::fmt;

/// A contiguous rank-3 tensor with shape `(samples, seq_len, features)`.
#[derive(Clone, PartialEq)]
pub struct Tensor3 {
    samples: usize,
    seq_len: usize,
    features: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Tensor3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor3({} x {} x {})",
            self.samples, self.seq_len, self.features
        )
    }
}

impl Tensor3 {
    /// An all-zero tensor of the given shape.
    pub fn zeros(samples: usize, seq_len: usize, features: usize) -> Self {
        Self {
            samples,
            seq_len,
            features,
            data: vec![0.0; samples * seq_len * features],
        }
    }

    /// Builds a tensor from a flat buffer in `(sample, time, feature)`
    /// order; errors if the length disagrees with the shape.
    pub fn from_vec(
        samples: usize,
        seq_len: usize,
        features: usize,
        data: Vec<f64>,
    ) -> Result<Self, crate::matrix::ShapeError> {
        if data.len() != samples * seq_len * features {
            return Err(crate::matrix::ShapeError {
                expected: (samples, seq_len * features),
                got_len: data.len(),
            });
        }
        Ok(Self {
            samples,
            seq_len,
            features,
            data,
        })
    }

    /// Builds a tensor by evaluating `f(sample, t, feature)` everywhere.
    pub fn from_fn(
        samples: usize,
        seq_len: usize,
        features: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(samples * seq_len * features);
        for s in 0..samples {
            for t in 0..seq_len {
                for n in 0..features {
                    data.push(f(s, t, n));
                }
            }
        }
        Self {
            samples,
            seq_len,
            features,
            data,
        }
    }

    /// Stacks per-sample `seq_len x features` matrices into a tensor.
    ///
    /// # Panics
    /// Panics when the matrices disagree in shape.
    pub fn from_samples(samples: &[Matrix]) -> Self {
        assert!(!samples.is_empty(), "cannot stack zero samples");
        let (l, n) = samples[0].shape();
        let mut data = Vec::with_capacity(samples.len() * l * n);
        for m in samples {
            assert_eq!(m.shape(), (l, n), "inconsistent sample shapes");
            data.extend_from_slice(m.as_slice());
        }
        Self {
            samples: samples.len(),
            seq_len: l,
            features: n,
            data,
        }
    }

    /// Number of samples (windows), `R` in the paper.
    #[inline]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Sequence length, `l` in the paper.
    #[inline]
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Number of features (channels), `N` in the paper.
    #[inline]
    pub fn features(&self) -> usize {
        self.features
    }

    /// `(samples, seq_len, features)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.samples, self.seq_len, self.features)
    }

    /// The flat buffer in `(sample, time, feature)` order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, sample: usize, t: usize, feature: usize) -> f64 {
        debug_assert!(sample < self.samples && t < self.seq_len && feature < self.features);
        self.data[(sample * self.seq_len + t) * self.features + feature]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, sample: usize, t: usize, feature: usize) -> &mut f64 {
        debug_assert!(sample < self.samples && t < self.seq_len && feature < self.features);
        &mut self.data[(sample * self.seq_len + t) * self.features + feature]
    }

    /// The contiguous `seq_len * features` slice backing sample `i`.
    #[inline]
    pub fn sample_slice(&self, i: usize) -> &[f64] {
        let stride = self.seq_len * self.features;
        &self.data[i * stride..(i + 1) * stride]
    }

    /// Copies sample `i` into an `seq_len x features` matrix.
    pub fn sample(&self, i: usize) -> Matrix {
        Matrix::from_vec(self.seq_len, self.features, self.sample_slice(i).to_vec())
            .expect("sample slice has exact size")
    }

    /// Overwrites sample `i` from an `seq_len x features` matrix.
    pub fn set_sample(&mut self, i: usize, m: &Matrix) {
        assert_eq!(
            m.shape(),
            (self.seq_len, self.features),
            "set_sample shape mismatch"
        );
        let stride = self.seq_len * self.features;
        self.data[i * stride..(i + 1) * stride].copy_from_slice(m.as_slice());
    }

    /// Iterates over samples as matrices (copies).
    pub fn samples_iter(&self) -> impl Iterator<Item = Matrix> + '_ {
        (0..self.samples).map(move |i| self.sample(i))
    }

    /// Extracts the univariate series of feature `n` in sample `i`.
    pub fn series(&self, i: usize, n: usize) -> Vec<f64> {
        (0..self.seq_len).map(|t| self.at(i, t, n)).collect()
    }

    /// Gathers a subset of samples into a new tensor.
    pub fn select_samples(&self, indices: &[usize]) -> Tensor3 {
        let stride = self.seq_len * self.features;
        let mut data = Vec::with_capacity(indices.len() * stride);
        for &i in indices {
            assert!(i < self.samples, "select_samples index {i} out of bounds");
            data.extend_from_slice(self.sample_slice(i));
        }
        Tensor3 {
            samples: indices.len(),
            seq_len: self.seq_len,
            features: self.features,
            data,
        }
    }

    /// Takes samples `[start, end)`.
    pub fn slice_samples(&self, start: usize, end: usize) -> Tensor3 {
        assert!(
            start <= end && end <= self.samples,
            "sample slice out of bounds"
        );
        let stride = self.seq_len * self.features;
        Tensor3 {
            samples: end - start,
            seq_len: self.seq_len,
            features: self.features,
            data: self.data[start * stride..end * stride].to_vec(),
        }
    }

    /// Concatenates two tensors along the sample axis.
    pub fn concat_samples(&self, other: &Tensor3) -> Tensor3 {
        assert_eq!(
            (self.seq_len, self.features),
            (other.seq_len, other.features),
            "concat_samples shape mismatch"
        );
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor3 {
            samples: self.samples + other.samples,
            seq_len: self.seq_len,
            features: self.features,
            data,
        }
    }

    /// Flattens to `(samples, seq_len * features)` — the layout used by
    /// dense encoders and by t-SNE.
    pub fn flatten_samples(&self) -> Matrix {
        Matrix::from_vec(
            self.samples,
            self.seq_len * self.features,
            self.data.clone(),
        )
        .expect("flat layout matches")
    }

    /// Collects all time-steps of all samples into a
    /// `(samples * seq_len, features)` matrix — the layout used by
    /// per-step models.
    pub fn stack_steps(&self) -> Matrix {
        Matrix::from_vec(
            self.samples * self.seq_len,
            self.features,
            self.data.clone(),
        )
        .expect("flat layout matches")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Per-feature minima and maxima across all samples and steps.
    pub fn feature_min_max(&self) -> (Vec<f64>, Vec<f64>) {
        let mut mins = vec![f64::INFINITY; self.features];
        let mut maxs = vec![f64::NEG_INFINITY; self.features];
        for chunk in self.data.chunks_exact(self.features.max(1)) {
            for (n, &v) in chunk.iter().enumerate() {
                if v < mins[n] {
                    mins[n] = v;
                }
                if v > maxs[n] {
                    maxs[n] = v;
                }
            }
        }
        (mins, maxs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange(s: usize, l: usize, n: usize) -> Tensor3 {
        Tensor3::from_fn(s, l, n, |i, t, f| (i * l * n + t * n + f) as f64)
    }

    #[test]
    fn indexing_matches_layout() {
        let t = arange(2, 3, 4);
        assert_eq!(t.at(0, 0, 0), 0.0);
        assert_eq!(t.at(0, 1, 2), 6.0);
        assert_eq!(t.at(1, 2, 3), 23.0);
    }

    #[test]
    fn sample_roundtrip() {
        let t = arange(3, 4, 2);
        let m = t.sample(1);
        assert_eq!(m.shape(), (4, 2));
        let mut t2 = Tensor3::zeros(3, 4, 2);
        for i in 0..3 {
            t2.set_sample(i, &t.sample(i));
        }
        assert_eq!(t, t2);
    }

    #[test]
    fn from_samples_stacks() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(3, 2, |r, c| (r * c) as f64);
        let t = Tensor3::from_samples(&[a.clone(), b.clone()]);
        assert_eq!(t.shape(), (2, 3, 2));
        assert_eq!(t.sample(0), a);
        assert_eq!(t.sample(1), b);
    }

    #[test]
    fn select_and_slice_agree() {
        let t = arange(5, 2, 2);
        let sel = t.select_samples(&[2, 3]);
        let sl = t.slice_samples(2, 4);
        assert_eq!(sel, sl);
    }

    #[test]
    fn concat_inverts_slice() {
        let t = arange(6, 3, 2);
        let a = t.slice_samples(0, 2);
        let b = t.slice_samples(2, 6);
        assert_eq!(a.concat_samples(&b), t);
    }

    #[test]
    fn flatten_shapes() {
        let t = arange(4, 3, 2);
        assert_eq!(t.flatten_samples().shape(), (4, 6));
        assert_eq!(t.stack_steps().shape(), (12, 2));
        assert_eq!(t.flatten_samples().as_slice(), t.as_slice());
    }

    #[test]
    fn series_extracts_channel() {
        let t = arange(2, 3, 2);
        assert_eq!(t.series(0, 1), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn feature_min_max_bounds() {
        let t = arange(2, 2, 3);
        let (mins, maxs) = t.feature_min_max();
        assert_eq!(mins, vec![0.0, 1.0, 2.0]);
        assert_eq!(maxs, vec![9.0, 10.0, 11.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor3::from_vec(2, 2, 2, vec![0.0; 8]).is_ok());
        assert!(Tensor3::from_vec(2, 2, 2, vec![0.0; 7]).is_err());
    }
}
