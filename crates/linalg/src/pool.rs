//! A recycling pool of matrix buffers keyed by element count.
//!
//! Training a TSG method re-runs the same computation graph every
//! minibatch, so the set of buffer sizes it needs is fixed after the
//! first step. [`MatrixPool`] keeps the `Vec<f64>` storage of retired
//! matrices and hands it back to later requests of the same length:
//! after a warm-up pass, `take_*` never touches the system allocator.
//!
//! The pool stores raw buffers, not shapes — a retired `(4, 8)` matrix
//! can serve a later `(8, 4)` or `(32, 1)` request, which is what makes
//! one pool cover forward values, gradients, and backward temporaries
//! alike.

use crate::Matrix;
use std::collections::HashMap;

/// A size-keyed free list of matrix buffers.
#[derive(Default)]
pub struct MatrixPool {
    free: HashMap<usize, Vec<Vec<f64>>>,
    /// Buffers handed out since construction (diagnostics).
    takes: u64,
    /// Takes that found no pooled buffer and had to allocate.
    misses: u64,
}

impl MatrixPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A `rows x cols` matrix whose contents are unspecified (recycled
    /// values or zeros). Callers must overwrite every element.
    pub fn take_uninit(&mut self, rows: usize, cols: usize) -> Matrix {
        let n = rows * cols;
        self.takes += 1;
        let data = match self.free.get_mut(&n).and_then(Vec::pop) {
            Some(buf) => buf,
            None => {
                self.misses += 1;
                vec![0.0; n]
            }
        };
        Matrix::from_vec(rows, cols, data).expect("pool buffers are length-keyed")
    }

    /// A `rows x cols` matrix of zeros, recycled when possible.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.take_uninit(rows, cols);
        m.as_mut_slice().fill(0.0);
        m
    }

    /// A recycled copy of `src` (same shape, same contents).
    pub fn take_copy(&mut self, src: &Matrix) -> Matrix {
        let mut m = self.take_uninit(src.rows(), src.cols());
        m.as_mut_slice().copy_from_slice(src.as_slice());
        m
    }

    /// Ensures at least `count` free buffers of `elems` elements are
    /// parked, allocating the shortfall up front. Deliberate
    /// pre-sizing (e.g. from a compiled plan's buffer manifest) is not
    /// a pool *miss*: misses count demand the pool failed to predict,
    /// while `reserve` is the pool being told the future.
    pub fn reserve(&mut self, elems: usize, count: usize) {
        if elems == 0 {
            return;
        }
        let free = self.free.entry(elems).or_default();
        while free.len() < count {
            free.push(vec![0.0; elems]);
        }
    }

    /// Number of free buffers of exactly `elems` elements currently
    /// parked (diagnostics for the reserve tests).
    pub fn parked_of(&self, elems: usize) -> usize {
        self.free.get(&elems).map_or(0, Vec::len)
    }

    /// Retires a matrix, keeping its buffer for a later `take_*`.
    pub fn put(&mut self, m: Matrix) {
        let data = m.into_vec();
        if !data.is_empty() {
            self.free.entry(data.len()).or_default().push(data);
        }
    }

    /// Number of `take_*` calls that had to allocate fresh storage.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of `take_*` calls served so far.
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// Number of buffers currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_by_length_across_shapes() {
        let mut pool = MatrixPool::new();
        let a = pool.take_zeroed(4, 8);
        pool.put(a);
        assert_eq!(pool.parked(), 1);
        // Same element count, different shape: reuses the buffer.
        let b = pool.take_uninit(8, 4);
        assert_eq!(b.shape(), (8, 4));
        assert_eq!(pool.misses(), 1, "second take must hit the pool");
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut pool = MatrixPool::new();
        let mut a = pool.take_zeroed(2, 2);
        a.as_mut_slice().fill(7.0);
        pool.put(a);
        let b = pool.take_zeroed(2, 2);
        assert_eq!(b.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn take_copy_matches_source() {
        let mut pool = MatrixPool::new();
        let src = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let c = pool.take_copy(&src);
        assert_eq!(c, src);
    }

    #[test]
    fn reserve_prefills_without_counting_misses() {
        let mut pool = MatrixPool::new();
        pool.reserve(6, 3);
        assert_eq!(pool.parked_of(6), 3);
        assert_eq!(pool.misses(), 0, "reserve is not demand the pool missed");
        // Reserving less than what is parked is a no-op.
        pool.reserve(6, 1);
        assert_eq!(pool.parked_of(6), 3);
        // All three takes are hits.
        let a = pool.take_uninit(2, 3);
        let b = pool.take_uninit(3, 2);
        let c = pool.take_zeroed(1, 6);
        assert_eq!(pool.misses(), 0);
        drop((a, b, c));
    }

    #[test]
    fn empty_matrices_are_not_pooled() {
        let mut pool = MatrixPool::new();
        pool.put(Matrix::zeros(0, 3));
        assert_eq!(pool.parked(), 0);
    }
}
