//! Packed cache-blocked GEMM microkernels.
//!
//! The band kernels in [`crate::matrix`] walk the operands in their
//! natural row-major layout, which caps throughput on two fronts: the
//! `B` rows are re-streamed from L2 for every output row, and the
//! per-element accumulator chains are too short for the CPU's
//! floating-point pipes to overlap. This module is the classic
//! Goto-style answer — *pack* panels of `A` and `B` into contiguous
//! tile-major buffers once, then drive a register-tile microkernel
//! over the packed panels — implemented under one hard constraint:
//! the result must be **bit-identical** to the band kernels.
//!
//! # Packing layout
//!
//! * `A` is packed in row panels of [`MR`]: panel `p` holds rows
//!   `p*MR .. p*MR+MR`, stored `k`-major — `apack[p*k*MR + kk*MR + i]`
//!   is `A[p*MR+i][kk]`. Rows past `m` are padded with `0.0`.
//! * `B` is packed in column panels of [`NR`]: panel `q` holds columns
//!   `q*NR .. q*NR+NR`, stored `k`-major — `bpack[q*k*NR + kk*NR + j]`
//!   is `B[kk][q*NR+j]`. Columns past `n` are padded with `0.0`.
//!
//! The microkernel then reads both panels *sequentially*: one `MR`-row
//! sliver of `A` and one `NR`-column sliver of `B` advance together
//! through `k`, so every cache line fetched is fully consumed. The
//! `k` loop is additionally blocked by [`KC`] so the active `A` sliver
//! (`MR x KC` doubles) and `B` sliver (`KC x NR`) stay L1-resident.
//!
//! # Why the packed path is bit-identical
//!
//! Every output element is produced by exactly one accumulator chain:
//! it starts from the existing `C` value, then adds `a(i,kk)*b(kk,j)`
//! terms in strictly ascending `kk`, one multiply-then-add at a time —
//! precisely the chain the band kernels build (their 4-way unroll adds
//! terms one at a time into the same fold). The `KC` blocking stores
//! the partial sum to `C` between blocks and reloads it, which is
//! exact for `f64`. Rust never contracts `a*b + c` into a fused
//! multiply-add on its own, so both paths round every term
//! identically. Tile shape, panel order and thread banding only change
//! *which* chain runs when — never the order within a chain — so the
//! packed path equals the band path bit for bit, at every thread
//! count.
//!
//! Padding never skips work: padded lanes *compute* (against `0.0`
//! operands) but are never written back, and real zero terms are still
//! added, so IEEE propagation (`0.0 * NaN = NaN`) is preserved.

use crate::matrix::{dispatch_row_bands, PAR_WORK_THRESHOLD};
use crate::{Matrix, MatrixPool};
use std::cell::{Cell, RefCell};

/// Microkernel row-tile height: each microkernel invocation produces
/// an `MR x NR` block of `C` held in registers.
pub const MR: usize = 8;

/// Microkernel column-tile width — one AVX-512 `f64` vector, so a row
/// of the register tile is exactly one vector register on the wide
/// path and a pair of 256-bit (or quad of 128-bit) lanes for the
/// autovectorized fallback.
pub const NR: usize = 8;

/// `k`-direction cache block: the active `A` sliver (`MR * KC`
/// doubles = 16 KB) plus the `B` sliver (`KC * NR` = 16 KB) stay
/// within L1. Partial sums are parked in `C` between blocks, which is
/// exact (see the module docs).
pub const KC: usize = 256;

/// Which GEMM implementation the dispatch layer selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmMode {
    /// Packed tile-major microkernel path (the default).
    Packed,
    /// The original row-band kernels.
    Band,
}

thread_local! {
    /// 0 = no override; 1 = packed; 2 = band.
    static MODE_OVERRIDE: Cell<u8> = const { Cell::new(0) };

    /// Cached `TSGB_GEMM` value; 0 = not read yet. Same rationale as
    /// the `tsgb-par` thread cache: an env lookup takes a process-wide
    /// lock, far too slow for a per-matmul check.
    static MODE_ENV: Cell<u8> = const { Cell::new(0) };

    /// Per-thread recycling pool for pack buffers. On the caller's
    /// thread (the serial path, and the B-pack of the parallel path)
    /// buffers are reused across matmuls; short-lived band workers
    /// simply allocate and drop.
    static PACK_POOL: RefCell<MatrixPool> = RefCell::new(MatrixPool::new());
}

fn mode_code(mode: GemmMode) -> u8 {
    match mode {
        GemmMode::Packed => 1,
        GemmMode::Band => 2,
    }
}

/// The GEMM path the next matmul on this thread will take: the
/// [`with_gemm_mode`] override if active, else `TSGB_GEMM`
/// (`packed` | `band`), else packed. Unrecognized values mean packed.
pub fn gemm_mode() -> GemmMode {
    let o = MODE_OVERRIDE.with(Cell::get);
    if o != 0 {
        return if o == 2 { GemmMode::Band } else { GemmMode::Packed };
    }
    let cached = MODE_ENV.with(Cell::get);
    let code = if cached != 0 {
        cached
    } else {
        let code = match std::env::var("TSGB_GEMM").as_deref() {
            Ok("band") => 2,
            _ => 1,
        };
        MODE_ENV.with(|c| c.set(code));
        code
    };
    if code == 2 {
        GemmMode::Band
    } else {
        GemmMode::Packed
    }
}

/// Runs `f` with the GEMM mode forced on the current thread (restored
/// afterwards, also on panic). Tests and benches use this to compare
/// paths without touching the process environment.
pub fn with_gemm_mode<R>(mode: GemmMode, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(MODE_OVERRIDE.with(|c| c.replace(mode_code(mode))));
    f()
}

/// Whether an `m x n x k` product should take the packed path: mode
/// says packed and the multiply work clears the same threshold that
/// gates parallel dispatch — below it the pack traffic costs more than
/// the kernel saves, and sub-threshold products are latency-bound
/// anyway.
pub(crate) fn packed_enabled(m: usize, n: usize, k: usize) -> bool {
    m * n * k >= PAR_WORK_THRESHOLD && gemm_mode() == GemmMode::Packed
}

/// Borrows a zero-initialized-by-caller pack buffer of `len` doubles
/// from the thread's pool.
fn with_pack_buf<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = PACK_POOL.with(|p| p.borrow_mut().take_uninit(1, len));
    let out = f(buf.as_mut_slice());
    PACK_POOL.with(|p| p.borrow_mut().put(buf));
    out
}

/// `out += a * b` through the packed path.
pub(crate) fn matmul_packed(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (ad, bd) = (a.as_slice(), b.as_slice());
    gemm_packed(
        m,
        n,
        k,
        |i, kk| ad[i * k + kk],
        |kk, j| bd[kk * n + j],
        out.as_mut_slice(),
    );
}

/// `out += a^T * b` through the packed path.
pub(crate) fn t_matmul_packed(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let (ad, bd) = (a.as_slice(), b.as_slice());
    gemm_packed(
        m,
        n,
        k,
        |i, kk| ad[kk * m + i],
        |kk, j| bd[kk * n + j],
        out.as_mut_slice(),
    );
}

/// `out += a * b^T` through the packed path.
pub(crate) fn matmul_t_packed(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let (ad, bd) = (a.as_slice(), b.as_slice());
    gemm_packed(
        m,
        n,
        k,
        |i, kk| ad[i * k + kk],
        |kk, j| bd[j * k + kk],
        out.as_mut_slice(),
    );
}

/// The shared packed driver: `out[i*n+j] += sum_kk a_at(i,kk) *
/// b_at(kk,j)` with `kk` ascending per element.
///
/// `B` is packed once on the calling thread; the output rows are then
/// dispatched in bands (parallel above [`PAR_WORK_THRESHOLD`]), each
/// band packing its own `A` rows. Band boundaries never alter a chain,
/// so parallel == serial bit for bit.
fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    a_at: impl Fn(usize, usize) -> f64 + Sync,
    b_at: impl Fn(usize, usize) -> f64 + Sync,
    out: &mut [f64],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let n_panels = n.div_ceil(NR);
    with_pack_buf(n_panels * k * NR, |bpack| {
        pack_b(n, k, &b_at, bpack);
        dispatch_row_bands(m, n, k, out, |r0, band| {
            packed_band(r0, band, n, k, bpack, &a_at)
        });
    });
}

/// Packs `B` into `NR`-column `k`-major panels, zero-padding columns
/// past `n`. Every slot is overwritten, so recycled buffers are fine.
fn pack_b(n: usize, k: usize, b_at: &impl Fn(usize, usize) -> f64, bpack: &mut [f64]) {
    for (q, panel) in bpack.chunks_exact_mut(k * NR).enumerate() {
        let j0 = q * NR;
        let width = NR.min(n - j0);
        for (kk, slot) in panel.chunks_exact_mut(NR).enumerate() {
            for (jj, s) in slot.iter_mut().enumerate() {
                *s = if jj < width { b_at(kk, j0 + jj) } else { 0.0 };
            }
        }
    }
}

/// Computes one row band of the output from packed panels: packs the
/// band's `A` rows, then sweeps `KC` blocks x `B` panels x `A` panels
/// with the register-tile microkernel.
fn packed_band(
    r0: usize,
    band: &mut [f64],
    n: usize,
    k: usize,
    bpack: &[f64],
    a_at: &impl Fn(usize, usize) -> f64,
) {
    let rc = band.len() / n;
    let m_panels = rc.div_ceil(MR);
    with_pack_buf(m_panels * k * MR, |apack| {
        for (p, panel) in apack.chunks_exact_mut(k * MR).enumerate() {
            let i0 = p * MR;
            let height = MR.min(rc - i0);
            for (kk, slot) in panel.chunks_exact_mut(MR).enumerate() {
                for (ii, s) in slot.iter_mut().enumerate() {
                    *s = if ii < height {
                        a_at(r0 + i0 + ii, kk)
                    } else {
                        0.0
                    };
                }
            }
        }
        let mut kb = 0;
        while kb < k {
            let ke = (kb + KC).min(k);
            for q in 0..n.div_ceil(NR) {
                let bp = &bpack[q * k * NR + kb * NR..q * k * NR + ke * NR];
                let j0 = q * NR;
                let nr = NR.min(n - j0);
                for p in 0..m_panels {
                    let ap = &apack[p * k * MR + kb * MR..p * k * MR + ke * MR];
                    let i0 = p * MR;
                    let mr = MR.min(rc - i0);
                    // Park the running sums in C between k-blocks:
                    // store + reload of an f64 is exact, so the chain
                    // is unbroken. Padded lanes start at 0.0 and are
                    // never written back.
                    let mut acc = [[0.0f64; NR]; MR];
                    for (i, row) in acc.iter_mut().enumerate().take(mr) {
                        row[..nr].copy_from_slice(&band[(i0 + i) * n + j0..(i0 + i) * n + j0 + nr]);
                    }
                    microkernel(ap, bp, &mut acc);
                    for (i, row) in acc.iter().enumerate().take(mr) {
                        band[(i0 + i) * n + j0..(i0 + i) * n + j0 + nr]
                            .copy_from_slice(&row[..nr]);
                    }
                }
            }
            kb = ke;
        }
    });
}

/// The register tile: `acc[i][j] += ap[kk*MR+i] * bp[kk*NR+j]` for
/// every `kk` in the block, ascending. `MR * NR` independent
/// accumulator chains give the FP pipes enough parallelism to
/// saturate, while each individual chain keeps the strict
/// multiply-then-add left-fold order the band kernels use.
///
/// Dispatches to the AVX-512 kernel when the CPU has it; the portable
/// kernel computes the identical chains through autovectorized scalar
/// code. Both round every `a*b` product before the add (no FMA
/// contraction anywhere), so the choice never changes a single bit.
#[inline]
fn microkernel(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if cpu_has_avx512() {
        // SAFETY: the feature check above guarantees the instructions
        // exist; the kernel itself only requires `ap` / `bp` to be
        // whole panels (`len` multiples of MR / NR with equal k), which
        // the packers produce by construction.
        unsafe { microkernel_avx512(ap, bp, acc) };
        return;
    }
    microkernel_portable(ap, bp, acc);
}

#[inline]
fn microkernel_portable(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (i, row) in acc.iter_mut().enumerate() {
            let a = av[i];
            for (j, c) in row.iter_mut().enumerate() {
                *c += a * bv[j];
            }
        }
    }
}

/// Whether this CPU runs AVX-512F, detected once per process.
#[cfg(target_arch = "x86_64")]
fn cpu_has_avx512() -> bool {
    use std::sync::OnceLock;
    static HAS: OnceLock<bool> = OnceLock::new();
    *HAS.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f"))
}

/// AVX-512 register tile: each accumulator row is one `f64x8` vector,
/// and each `kk` step issues one packed multiply then one packed add
/// per row — `vmulpd` + `vaddpd`, deliberately **not** `vfmadd` — so
/// every lane's chain rounds exactly like the scalar left fold.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512(ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(ap.len() / MR, bp.len() / NR);
    let mut c: [__m512d; MR] = [_mm512_setzero_pd(); MR];
    for (i, row) in acc.iter().enumerate() {
        c[i] = _mm512_loadu_pd(row.as_ptr());
    }
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let b = _mm512_loadu_pd(bv.as_ptr());
        for (i, ci) in c.iter_mut().enumerate() {
            let a = _mm512_set1_pd(av[i]);
            *ci = _mm512_add_pd(*ci, _mm512_mul_pd(a, b));
        }
    }
    for (i, row) in acc.iter_mut().enumerate() {
        _mm512_storeu_pd(row.as_mut_ptr(), c[i]);
    }
}

// ---------------------------------------------------------------------------
// Prepacked-B API
// ---------------------------------------------------------------------------
//
// The compiled training plan (`tsgb-nn::plan`) multiplies against the
// same weight matrices hundreds of times per step — every timestep's
// `h @ U` shares one `U`. The general entry points above re-pack `B`
// per call because they cannot know the operand will recur; these
// entry points let a caller that *does* know pack once and replay the
// microkernel against the frozen panels. Same panels, same kernel,
// same chains: bit-identical to the band path at any size, so they
// are safe below [`packed_enabled`]'s threshold where the general
// path would decline.

/// Length in doubles of the packed-panel buffer for a `k x n` right
/// operand (`NR`-column panels, `k`-major, zero-padded).
pub fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * k * NR
}

/// Packs a `k x n` matrix into `B` panels for
/// [`matmul_prepacked_acc_into`]. Every slot of `out` is overwritten.
pub fn pack_b_panels(b: &Matrix, out: &mut [f64]) {
    let (k, n) = b.shape();
    assert_eq!(out.len(), packed_b_len(k, n), "pack buffer length");
    let bd = b.as_slice();
    pack_b(n, k, &|kk, j| bd[kk * n + j], out);
}

/// Packs the *transpose* of an `n x k` matrix into `B` panels — the
/// panels of `bᵀ` (`k x n`) — without materializing the transpose.
pub fn pack_bt_panels(b: &Matrix, out: &mut [f64]) {
    let (n, k) = b.shape();
    assert_eq!(out.len(), packed_b_len(k, n), "pack buffer length");
    let bd = b.as_slice();
    pack_b(n, k, &|kk, j| bd[j * k + kk], out);
}

/// `out += a * B` where `bpack` holds `B`'s packed panels (`B` being
/// `a.cols() x n`). Runs the microkernel serially over one band: the
/// plan's per-timestep products sit far below the parallel threshold,
/// and band boundaries never alter an accumulator chain anyway.
pub fn matmul_prepacked_acc_into(a: &Matrix, bpack: &[f64], n: usize, out: &mut Matrix) {
    let (m, k) = a.shape();
    assert_eq!(out.shape(), (m, n), "output shape");
    assert_eq!(bpack.len(), packed_b_len(k, n), "pack buffer length");
    let ad = a.as_slice();
    packed_band(0, out.as_mut_slice(), n, k, bpack, &|i, kk| ad[i * k + kk]);
}

// ---------------------------------------------------------------------------
// f32 tier
// ---------------------------------------------------------------------------

/// f32 microkernel row-tile height (same as the f64 tile).
pub const MR32: usize = 8;

/// f32 microkernel column-tile width — one AVX-512 `f32` vector.
pub const NR32: usize = 16;

/// Work threshold below which the f32 path uses the plain `ikj` loop
/// instead of packing. Both compute identical bits (see
/// [`gemm_f32`]), so the threshold is purely a performance knob.
const F32_PACK_THRESHOLD: usize = 1 << 15;

/// `out += a * b` in `f32`, serial. `a` is `m x k`, `b` is `k x n`,
/// both row-major.
///
/// The f32 tier has no bit contract against the f64 kernels — it is
/// the opt-in reduced-precision serve path — but it keeps the same
/// *internal* discipline: every output element is one strict
/// `k`-ascending multiply-then-add fold (never FMA-contracted), and
/// rows are computed independently. Both the naive and the packed
/// variant build exactly that chain, so results are bit-stable across
/// the size threshold and across batch sizes (a row's value never
/// depends on which other rows share the call).
pub(crate) fn gemm_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * n * k < F32_PACK_THRESHOLD {
        for i in 0..m {
            let row = &mut out[i * n..(i + 1) * n];
            for kk in 0..k {
                let av = a[i * k + kk];
                let bv = &b[kk * n..(kk + 1) * n];
                for (o, &bx) in row.iter_mut().zip(bv) {
                    *o += av * bx;
                }
            }
        }
        return;
    }
    let n_panels = n.div_ceil(NR32);
    let m_panels = m.div_ceil(MR32);
    let mut bpack = vec![0.0f32; n_panels * k * NR32];
    for (q, panel) in bpack.chunks_exact_mut(k * NR32).enumerate() {
        let j0 = q * NR32;
        let width = NR32.min(n - j0);
        for (kk, slot) in panel.chunks_exact_mut(NR32).enumerate() {
            for (jj, s) in slot.iter_mut().enumerate() {
                *s = if jj < width { b[kk * n + j0 + jj] } else { 0.0 };
            }
        }
    }
    let mut apack = vec![0.0f32; m_panels * k * MR32];
    for (p, panel) in apack.chunks_exact_mut(k * MR32).enumerate() {
        let i0 = p * MR32;
        let height = MR32.min(m - i0);
        for (kk, slot) in panel.chunks_exact_mut(MR32).enumerate() {
            for (ii, s) in slot.iter_mut().enumerate() {
                *s = if ii < height { a[(i0 + ii) * k + kk] } else { 0.0 };
            }
        }
    }
    let mut kb = 0;
    while kb < k {
        let ke = (kb + KC).min(k);
        for q in 0..n_panels {
            let bp = &bpack[q * k * NR32 + kb * NR32..q * k * NR32 + ke * NR32];
            let j0 = q * NR32;
            let nr = NR32.min(n - j0);
            for p in 0..m_panels {
                let ap = &apack[p * k * MR32 + kb * MR32..p * k * MR32 + ke * MR32];
                let i0 = p * MR32;
                let mr = MR32.min(m - i0);
                let mut acc = [[0.0f32; NR32]; MR32];
                for (i, row) in acc.iter_mut().enumerate().take(mr) {
                    row[..nr].copy_from_slice(&out[(i0 + i) * n + j0..(i0 + i) * n + j0 + nr]);
                }
                microkernel_f32(ap, bp, &mut acc);
                for (i, row) in acc.iter().enumerate().take(mr) {
                    out[(i0 + i) * n + j0..(i0 + i) * n + j0 + nr].copy_from_slice(&row[..nr]);
                }
            }
        }
        kb = ke;
    }
}

/// f32 register tile, same discipline as [`microkernel`]: strict
/// multiply-then-add per lane, no FMA, so the AVX-512 and portable
/// variants (and the naive small-size loop) all produce identical
/// bits.
#[inline]
fn microkernel_f32(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR32]; MR32]) {
    #[cfg(target_arch = "x86_64")]
    if cpu_has_avx512() {
        // SAFETY: feature-checked; panels are whole multiples of the
        // tile by construction.
        unsafe { microkernel_f32_avx512(ap, bp, acc) };
        return;
    }
    for (av, bv) in ap.chunks_exact(MR32).zip(bp.chunks_exact(NR32)) {
        for (i, row) in acc.iter_mut().enumerate() {
            let a = av[i];
            for (j, c) in row.iter_mut().enumerate() {
                *c += a * bv[j];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_f32_avx512(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR32]; MR32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(ap.len() / MR32, bp.len() / NR32);
    let mut c: [__m512; MR32] = [_mm512_setzero_ps(); MR32];
    for (i, row) in acc.iter().enumerate() {
        c[i] = _mm512_loadu_ps(row.as_ptr());
    }
    for (av, bv) in ap.chunks_exact(MR32).zip(bp.chunks_exact(NR32)) {
        let b = _mm512_loadu_ps(bv.as_ptr());
        for (i, ci) in c.iter_mut().enumerate() {
            let a = _mm512_set1_ps(av[i]);
            *ci = _mm512_add_ps(*ci, _mm512_mul_ps(a, b));
        }
    }
    for (i, row) in acc.iter_mut().enumerate() {
        _mm512_storeu_ps(row.as_mut_ptr(), c[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = crate::rng::seeded(seed);
        Matrix::from_fn(rows, cols, |_, _| crate::rng::randn(&mut rng))
    }

    #[test]
    fn mode_override_restores() {
        let before = gemm_mode();
        with_gemm_mode(GemmMode::Band, || assert_eq!(gemm_mode(), GemmMode::Band));
        with_gemm_mode(GemmMode::Packed, || {
            assert_eq!(gemm_mode(), GemmMode::Packed)
        });
        assert_eq!(gemm_mode(), before);
    }

    #[test]
    fn packed_matches_band_on_square() {
        let a = mat(96, 96, 1);
        let b = mat(96, 96, 2);
        let band = with_gemm_mode(GemmMode::Band, || a.matmul(&b));
        let mut out = Matrix::zeros(96, 96);
        matmul_packed(&a, &b, &mut out);
        assert_eq!(out, band);
    }

    #[test]
    fn f32_paths_match_the_scalar_fold_bitwise() {
        // One shape under the pack threshold (naive ikj loop), one
        // over it (packed microkernel), both ragged against the tile;
        // both must equal the strict k-ascending scalar fold exactly.
        for (m, n, k, seed) in [(3, 17, 9, 1u64), (40, 70, 33, 2)] {
            let mut rng = crate::rng::seeded(seed);
            let a: Vec<f32> = (0..m * k).map(|_| crate::rng::randn(&mut rng) as f32).collect();
            let b: Vec<f32> = (0..k * n).map(|_| crate::rng::randn(&mut rng) as f32).collect();
            let warm: Vec<f32> = (0..m * n).map(|_| crate::rng::randn(&mut rng) as f32).collect();
            let mut out = warm.clone();
            gemm_f32(m, n, k, &a, &b, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = warm[i * n + j];
                    for kk in 0..k {
                        acc += a[i * k + kk] * b[kk * n + j];
                    }
                    assert_eq!(out[i * n + j].to_bits(), acc.to_bits(), "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn prepacked_matches_band_at_plan_shapes() {
        // The plan's GEMM shapes are tiny (batch x hidden against
        // hidden x hidden) — far below the general packed threshold —
        // and ragged against the 8x8 tile. Prepacked must equal the
        // band kernels bit for bit from a warm accumulator.
        for (m, k, n, seed) in [(16, 32, 32, 10u64), (5, 7, 11, 11), (8, 32, 16, 12)] {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed + 100);
            let warm = mat(m, n, seed + 200);
            let mut pre = warm.clone();
            let mut panels = vec![0.0f64; packed_b_len(k, n)];
            pack_b_panels(&b, &mut panels);
            matmul_prepacked_acc_into(&a, &panels, n, &mut pre);
            let mut band = warm.clone();
            with_gemm_mode(GemmMode::Band, || a.matmul_acc_into(&b, &mut band));
            assert_eq!(pre, band, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn prepacked_transpose_matches_band_matmul_t() {
        // pack_bt_panels(b) followed by a prepacked multiply must equal
        // `a * bᵀ` on the band path — the backward plan's `dz @ Uᵀ`.
        for (m, k, n, seed) in [(16, 32, 32, 20u64), (9, 13, 6, 21)] {
            let a = mat(m, k, seed);
            let b = mat(n, k, seed + 100); // n x k, logically transposed
            let warm = mat(m, n, seed + 200);
            let mut pre = warm.clone();
            let mut panels = vec![0.0f64; packed_b_len(k, n)];
            pack_bt_panels(&b, &mut panels);
            matmul_prepacked_acc_into(&a, &panels, n, &mut pre);
            let mut band = warm.clone();
            with_gemm_mode(GemmMode::Band, || a.matmul_t_acc_into(&b, &mut band));
            assert_eq!(pre, band, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_accumulates_from_warm_output() {
        let a = mat(24, 40, 3);
        let b = mat(40, 16, 4);
        let warm = mat(24, 16, 5);
        let mut packed = warm.clone();
        matmul_packed(&a, &b, &mut packed);
        let mut band = warm.clone();
        with_gemm_mode(GemmMode::Band, || a.matmul_acc_into(&b, &mut band));
        assert_eq!(packed, band);
    }
}
