//! Seeded randomness helpers.
//!
//! Every stochastic component of the benchmark (weight initialization,
//! noise sampling, dataset synthesis, shuffling) draws from an
//! explicitly seeded [`SmallRng`], which keeps the whole reproduction
//! deterministic: the same seed regenerates the same tables.

use crate::matrix::Matrix;
use tsgb_rand::rngs::SmallRng;
use tsgb_rand::{Rng, SeedableRng};

/// Builds a deterministic [`SmallRng`] from a 64-bit seed.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// One standard-normal draw via the Box–Muller transform.
///
/// `rand` without `rand_distr` has no Gaussian sampler; Box–Muller is
/// exact and branch-light, which is all the benchmark needs.
pub fn randn(rng: &mut SmallRng) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A matrix of i.i.d. standard-normal entries.
pub fn randn_matrix(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| randn(rng))
}

/// A matrix of i.i.d. `U[lo, hi)` entries.
pub fn uniform_matrix(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut SmallRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Fisher–Yates shuffle of an index range `0..n`.
pub fn shuffled_indices(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Samples `k` distinct indices from `0..n` (k <= n), in random order.
pub fn sample_without_replacement(n: usize, k: usize, rng: &mut SmallRng) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from {n}");
    let mut idx = shuffled_indices(n, rng);
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn randn_moments_are_standard_normal() {
        let mut rng = seeded(42);
        let xs: Vec<f64> = (0..50_000).map(|_| randn(&mut rng)).collect();
        assert!(stats::mean(&xs).abs() < 0.02, "mean = {}", stats::mean(&xs));
        assert!((stats::std_dev(&xs) - 1.0).abs() < 0.02);
        assert!(stats::skewness(&xs).abs() < 0.05);
        assert!((stats::kurtosis(&xs) - 3.0).abs() < 0.15);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = seeded(1);
        let mut idx = shuffled_indices(100, &mut rng);
        idx.sort_unstable();
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_without_replacement_is_distinct() {
        let mut rng = seeded(3);
        let mut s = sample_without_replacement(50, 20, &mut rng);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn uniform_matrix_in_range() {
        let mut rng = seeded(9);
        let m = uniform_matrix(10, 10, -2.0, 3.0, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }
}
