//! Row-major dense `f64` matrices.
//!
//! Shape mismatches are programming errors in this codebase, so the
//! arithmetic kernels assert on them (with descriptive messages) rather
//! than returning `Result`s; the construction boundary
//! ([`Matrix::from_vec`]) is checked and returns an error.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// Error returned by checked matrix constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// What the caller asked for, e.g. `(rows, cols)`.
    pub expected: (usize, usize),
    /// The length of the buffer actually supplied.
    pub got_len: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer of length {} cannot form a {}x{} matrix",
            self.got_len, self.expected.0, self.expected.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix of `f64`.
///
/// The element at row `r`, column `c` lives at `data[r * cols + c]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major buffer; errors if the buffer
    /// length does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                expected: (rows, cols),
                got_len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A `1 x n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// An `n x 1` column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column {c} out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs` using an ikj loop order for cache
    /// friendliness on row-major data.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// `self^T * rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = rhs.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * rhs^T` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..rhs.rows {
                let brow = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two equal-shape matrices.
    pub fn zip_map(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.assert_same_shape(rhs, "zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += alpha * rhs` (BLAS axpy).
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        self.assert_same_shape(rhs, "axpy");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Dot product treating both matrices as flat vectors.
    pub fn flat_dot(&self, rhs: &Matrix) -> f64 {
        self.assert_same_shape(rhs, "flat_dot");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Column-wise means, returned as a `1 x cols` row vector.
    pub fn col_means(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for row in self.rows_iter() {
            for (o, &v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f64;
        out.map_inplace(|x| x * inv);
        out
    }

    /// Row-wise sums, returned as an `rows x 1` column vector.
    pub fn row_sums(&self) -> Matrix {
        let data = self.rows_iter().map(|r| r.iter().sum()).collect();
        Matrix {
            rows: self.rows,
            cols: 1,
            data,
        }
    }

    /// Adds `row` (a `1 x cols` matrix) to every row of `self`.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Vertical concatenation: stacks `other` below `self`.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontal concatenation: places `other` to the right of `self`.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Copies rows `[start, end)` into a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Copies columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "column slice out of bounds"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Gathers the given rows into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "select_rows index {src} out of bounds");
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Maximum element (NaN-ignoring); `-inf` for an empty matrix.
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element (NaN-ignoring); `+inf` for an empty matrix.
    pub fn min(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f64::INFINITY, f64::min)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn assert_same_shape(&self, rhs: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "{op} shape mismatch: {}x{} vs {}x{}",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.map(|x| -x)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(err.expected, (2, 2));
        assert_eq!(err.got_len, 3);
        assert!(err.to_string().contains("2x2"));
    }

    #[test]
    fn identity_matmul_is_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::eye(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(4, 5, |r, c| (2 * r + c) as f64);
        let direct = a.transpose().matmul(&b);
        assert_eq!(a.t_matmul(&b), direct);

        let c = Matrix::from_fn(5, 3, |r, c| (r * c) as f64 + 1.0);
        let direct2 = a.matmul(&c.transpose());
        assert_eq!(a.matmul_t(&c), direct2);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r as f64).sin() + c as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let row = Matrix::row_vector(&[10., 20.]);
        let b = a.add_row_broadcast(&row);
        assert_eq!(b.as_slice(), &[11., 22., 13., 24.]);
        assert_eq!(a.col_means().as_slice(), &[2., 3.]);
        assert_eq!(a.row_sums().as_slice(), &[3., 7.]);
        assert!((a.mean() - 2.5).abs() < 1e-12);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(1, 3, |_, c| 100.0 + c as f64);
        let v = a.vcat(&b);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.slice_rows(0, 2), a);
        assert_eq!(v.slice_rows(2, 3), b);

        let h = a.hcat(&a);
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.slice_cols(0, 3), a);
        assert_eq!(h.slice_cols(3, 6), a);
    }

    #[test]
    fn select_rows_gathers() {
        let a = Matrix::from_fn(4, 2, |r, _| r as f64);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[3., 3.]);
        assert_eq!(s.row(1), &[1., 1.]);
    }

    #[test]
    fn axpy_matches_operator() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(3, 3, |r, c| (r * c) as f64);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        let expected = &a + &b.scale(2.0);
        assert_eq!(c, expected);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn finite_checks() {
        let mut a = Matrix::zeros(2, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.all_finite());
    }
}
