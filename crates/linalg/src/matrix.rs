//! Row-major dense `f64` matrices.
//!
//! Shape mismatches are programming errors in this codebase, so the
//! arithmetic kernels assert on them (with descriptive messages) rather
//! than returning `Result`s; the construction boundary
//! ([`Matrix::from_vec`]) is checked and returns an error.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// Error returned by checked matrix constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// What the caller asked for, e.g. `(rows, cols)`.
    pub expected: (usize, usize),
    /// The length of the buffer actually supplied.
    pub got_len: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer of length {} cannot form a {}x{} matrix",
            self.got_len, self.expected.0, self.expected.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix of `f64`.
///
/// The element at row `r`, column `c` lives at `data[r * cols + c]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major buffer; errors if the buffer
    /// length does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                expected: (rows, cols),
                got_len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A `1 x n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// An `n x 1` column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column {c} out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a preallocated (e.g. pool-recycled) buffer,
    /// overwriting every element.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into shape mismatch"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// Large products take the packed microkernel path
    /// ([`crate::gemm`], selectable via `TSGB_GEMM`); the rest run the
    /// cache-blocked band kernel. Both use row-band parallel dispatch
    /// above [`PAR_WORK_THRESHOLD`] and accumulate every output
    /// element as the same strict `k`-ascending left fold, so the
    /// result is bit-identical across kernels and thread counts and
    /// agrees exactly with [`Matrix::t_matmul`] / [`Matrix::matmul_t`]
    /// on transposed operands.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_acc_into(rhs, &mut out);
        out
    }

    /// `out += self * rhs`, reusing the blocked kernel with no
    /// temporaries. [`Matrix::matmul`] is exactly this on a zeroed
    /// output, so accumulating into zeros reproduces its bits.
    pub fn matmul_acc_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, n) = (self.rows, rhs.cols);
        assert_eq!(out.shape(), (m, n), "matmul_acc_into output shape");
        if crate::gemm::packed_enabled(m, n, self.cols) {
            return crate::gemm::matmul_packed(self, rhs, out);
        }
        dispatch_row_bands(m, n, self.cols, out.as_mut_slice(), |r0, band| {
            matmul_band(self, rhs, r0, band, n)
        });
    }

    /// `self^T * rhs` without materializing the transpose.
    ///
    /// Bit-identical to `self.transpose().matmul(rhs)` (same
    /// per-element accumulation order), with the same blocked kernel
    /// and row-band parallel dispatch.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.t_matmul_acc_into(rhs, &mut out);
        out
    }

    /// `out += self^T * rhs` with no temporaries.
    pub fn t_matmul_acc_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, n) = (self.cols, rhs.cols);
        assert_eq!(out.shape(), (m, n), "t_matmul_acc_into output shape");
        if crate::gemm::packed_enabled(m, n, self.rows) {
            return crate::gemm::t_matmul_packed(self, rhs, out);
        }
        dispatch_row_bands(m, n, self.rows, out.as_mut_slice(), |r0, band| {
            t_matmul_band(self, rhs, r0, band, n)
        });
    }

    /// `self * rhs^T` without materializing the transpose.
    ///
    /// Bit-identical to `self.matmul(&rhs.transpose())` (same
    /// per-element accumulation order), with multi-column unrolled dot
    /// kernels and row-band parallel dispatch.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_t_acc_into(rhs, &mut out);
        out
    }

    /// `out += self * rhs^T` with no temporaries.
    pub fn matmul_t_acc_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, n) = (self.rows, rhs.rows);
        assert_eq!(out.shape(), (m, n), "matmul_t_acc_into output shape");
        if crate::gemm::packed_enabled(m, n, self.cols) {
            return crate::gemm::matmul_t_packed(self, rhs, out);
        }
        dispatch_row_bands(m, n, self.cols, out.as_mut_slice(), |r0, band| {
            matmul_t_band(self, rhs, r0, band, n)
        });
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise map into an existing equal-shape output buffer,
    /// overwriting its contents (no allocation).
    pub fn map_into(&self, f: impl Fn(f64) -> f64, out: &mut Matrix) {
        self.assert_same_shape(out, "map_into");
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
    }

    /// Elementwise combination into an existing equal-shape output
    /// buffer, overwriting its contents (no allocation).
    pub fn zip_map_into(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64, out: &mut Matrix) {
        self.assert_same_shape(rhs, "zip_map_into");
        self.assert_same_shape(out, "zip_map_into (output)");
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = f(a, b);
        }
    }

    /// `self += rhs` elementwise (no allocation).
    pub fn add_assign(&mut self, rhs: &Matrix) {
        self.assert_same_shape(rhs, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// `self -= rhs` elementwise (no allocation).
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        self.assert_same_shape(rhs, "sub_assign");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }

    /// `self *= rhs` elementwise — the in-place Hadamard product.
    pub fn mul_assign_elem(&mut self, rhs: &Matrix) {
        self.assert_same_shape(rhs, "mul_assign_elem");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
    }

    /// Overwrites `self` with the contents of an equal-shape `src`.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.assert_same_shape(src, "copy_from");
        self.data.copy_from_slice(&src.data);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Elementwise combination of two equal-shape matrices.
    pub fn zip_map(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.assert_same_shape(rhs, "zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += alpha * rhs` (BLAS axpy).
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        self.assert_same_shape(rhs, "axpy");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Dot product treating both matrices as flat vectors.
    pub fn flat_dot(&self, rhs: &Matrix) -> f64 {
        self.assert_same_shape(rhs, "flat_dot");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Column-wise means, returned as a `1 x cols` row vector.
    pub fn col_means(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for row in self.rows_iter() {
            for (o, &v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f64;
        out.map_inplace(|x| x * inv);
        out
    }

    /// Row-wise sums, returned as an `rows x 1` column vector.
    pub fn row_sums(&self) -> Matrix {
        let data = self.rows_iter().map(|r| r.iter().sum()).collect();
        Matrix {
            rows: self.rows,
            cols: 1,
            data,
        }
    }

    /// Adds `row` (a `1 x cols` matrix) to every row of `self`.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_assign(row);
        out
    }

    /// Adds `row` (a `1 x cols` matrix) to every row of `self` in
    /// place (no allocation).
    pub fn add_row_broadcast_assign(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
    }

    /// Accumulates the column sums of `self` into `out` (a `1 x cols`
    /// row vector): `out[c] += sum_r self[r][c]`. This is the bias
    /// gradient of a row-broadcast add.
    pub fn col_sums_acc_into(&self, out: &mut Matrix) {
        assert_eq!(out.rows, 1, "col_sums_acc_into output must be a row");
        assert_eq!(out.cols, self.cols, "col_sums_acc_into width mismatch");
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Vertical concatenation: stacks `other` below `self`.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontal concatenation: places `other` to the right of `self`.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Copies rows `[start, end)` into a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Copies columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "column slice out of bounds"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Gathers the given rows into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "select_rows index {src} out of bounds");
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Maximum element (NaN-ignoring); `-inf` for an empty matrix.
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element (NaN-ignoring); `+inf` for an empty matrix.
    pub fn min(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f64::INFINITY, f64::min)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn assert_same_shape(&self, rhs: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "{op} shape mismatch: {}x{} vs {}x{}",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
    }
}

/// Column-block width of the matmul kernels: the output segment plus
/// four operand-row segments stay within L1 (5 x 128 doubles = 5 KB).
const MM_COL_BLOCK: usize = 128;

/// `k`-direction unroll factor. Unrolled terms are still added one at
/// a time into the same accumulator, so unrolling never changes the
/// floating-point result — it only amortizes output loads/stores.
const MM_K_UNROLL: usize = 4;

/// Multiply work (`m * n * k` fused multiply-adds) above which the
/// output rows are dispatched to the `tsgb-par` pool in contiguous
/// bands. Below it, thread spawn overhead dominates: a 64x64x64
/// product (2^18 madds, ~0.2 ms) ran at 0.77x serial when dispatched,
/// so the threshold sits above it — sub-threshold matmuls never pay
/// pool overhead. 128x128x128 (2^21) and larger still dispatch.
pub const PAR_WORK_THRESHOLD: usize = 1 << 19;

/// Runs `kernel(first_row, band)` over contiguous row bands of `out`
/// (an `m x n` row-major buffer), in parallel when the work is large
/// enough. Each output row is produced by exactly one invocation with
/// code independent of the banding, so the result is bit-identical for
/// every thread count (including the serial single-band path).
pub(crate) fn dispatch_row_bands(
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f64],
    kernel: impl Fn(usize, &mut [f64]) + Sync,
) {
    if m == 0 || n == 0 {
        return;
    }
    let threads = tsgb_par::max_threads();
    let work = m * n * k.max(1);
    if threads > 1 && m > 1 && work >= PAR_WORK_THRESHOLD {
        let band_rows = m.div_ceil(threads);
        tsgb_par::parallel_chunks_mut(out, band_rows * n, |band_idx, band| {
            kernel(band_idx * band_rows, band)
        });
    } else {
        kernel(0, out);
    }
}

/// `band[i][j] += sum_k a[r0+i][k] * b[k][j]`, `k` ascending per
/// element. `jb`-blocking keeps the output segment hot; the k-unroll
/// adds four terms per pass through the same left-fold chain.
fn matmul_band(a: &Matrix, b: &Matrix, r0: usize, band: &mut [f64], n: usize) {
    let kk = a.cols();
    for (bi, orow) in band.chunks_exact_mut(n).enumerate() {
        let arow = a.row(r0 + bi);
        let mut jb = 0;
        while jb < n {
            let je = (jb + MM_COL_BLOCK).min(n);
            let mut k = 0;
            while k + MM_K_UNROLL <= kk {
                let (a0, a1, a2, a3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
                let b0 = &b.row(k)[jb..je];
                let b1 = &b.row(k + 1)[jb..je];
                let b2 = &b.row(k + 2)[jb..je];
                let b3 = &b.row(k + 3)[jb..je];
                for ((((o, &v0), &v1), &v2), &v3) in orow[jb..je]
                    .iter_mut()
                    .zip(b0)
                    .zip(b1)
                    .zip(b2)
                    .zip(b3)
                {
                    *o = (((*o + a0 * v0) + a1 * v1) + a2 * v2) + a3 * v3;
                }
                k += MM_K_UNROLL;
            }
            while k < kk {
                let ak = arow[k];
                for (o, &v) in orow[jb..je].iter_mut().zip(&b.row(k)[jb..je]) {
                    *o += ak * v;
                }
                k += 1;
            }
            jb = je;
        }
    }
}

/// `band[i][j] += sum_k a[k][r0+i] * b[k][j]` — the transpose-free
/// kernel behind [`Matrix::t_matmul`]. Same chain order as
/// [`matmul_band`] on the materialized transpose.
fn t_matmul_band(a: &Matrix, b: &Matrix, r0: usize, band: &mut [f64], n: usize) {
    let kr = a.rows();
    let rc = band.len() / n;
    let mut jb = 0;
    while jb < n {
        let je = (jb + MM_COL_BLOCK).min(n);
        let mut k = 0;
        while k + MM_K_UNROLL <= kr {
            let (ar0, ar1, ar2, ar3) = (a.row(k), a.row(k + 1), a.row(k + 2), a.row(k + 3));
            let b0 = &b.row(k)[jb..je];
            let b1 = &b.row(k + 1)[jb..je];
            let b2 = &b.row(k + 2)[jb..je];
            let b3 = &b.row(k + 3)[jb..je];
            for bi in 0..rc {
                let i = r0 + bi;
                let (a0, a1, a2, a3) = (ar0[i], ar1[i], ar2[i], ar3[i]);
                for ((((o, &v0), &v1), &v2), &v3) in band[bi * n + jb..bi * n + je]
                    .iter_mut()
                    .zip(b0)
                    .zip(b1)
                    .zip(b2)
                    .zip(b3)
                {
                    *o = (((*o + a0 * v0) + a1 * v1) + a2 * v2) + a3 * v3;
                }
            }
            k += MM_K_UNROLL;
        }
        while k < kr {
            let arow = a.row(k);
            let bseg = &b.row(k)[jb..je];
            for bi in 0..rc {
                let ak = arow[r0 + bi];
                for (o, &v) in band[bi * n + jb..bi * n + je].iter_mut().zip(bseg) {
                    *o += ak * v;
                }
            }
            k += 1;
        }
        jb = je;
    }
}

/// `band[i][j] += dot(a.row(r0+i), b.row(j))` — the transpose-free
/// kernel behind [`Matrix::matmul_t`]. Four output columns are
/// produced per pass, each seeded from the existing output value and
/// extended by a single `k`-ascending chain, so on a zeroed output the
/// result matches [`matmul_band`] on the materialized transpose, and
/// on a warm output the kernel accumulates in place.
fn matmul_t_band(a: &Matrix, b: &Matrix, r0: usize, band: &mut [f64], n: usize) {
    for (bi, orow) in band.chunks_exact_mut(n).enumerate() {
        let arow = a.row(r0 + bi);
        let mut j = 0;
        while j + MM_K_UNROLL <= n {
            let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            let (mut s0, mut s1, mut s2, mut s3) =
                (orow[j], orow[j + 1], orow[j + 2], orow[j + 3]);
            for ((((&av, &v0), &v1), &v2), &v3) in
                arow.iter().zip(b0).zip(b1).zip(b2).zip(b3)
            {
                s0 += av * v0;
                s1 += av * v1;
                s2 += av * v2;
                s3 += av * v3;
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += MM_K_UNROLL;
        }
        while j < n {
            let mut acc = orow[j];
            for (&av, &bv) in arow.iter().zip(b.row(j)) {
                acc += av * bv;
            }
            orow[j] = acc;
            j += 1;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.map(|x| -x)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        Matrix::add_assign(self, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(err.expected, (2, 2));
        assert_eq!(err.got_len, 3);
        assert!(err.to_string().contains("2x2"));
    }

    #[test]
    fn identity_matmul_is_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::eye(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(4, 5, |r, c| (2 * r + c) as f64);
        let direct = a.transpose().matmul(&b);
        assert_eq!(a.t_matmul(&b), direct);

        let c = Matrix::from_fn(5, 3, |r, c| (r * c) as f64 + 1.0);
        let direct2 = a.matmul(&c.transpose());
        assert_eq!(a.matmul_t(&c), direct2);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r as f64).sin() + c as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let row = Matrix::row_vector(&[10., 20.]);
        let b = a.add_row_broadcast(&row);
        assert_eq!(b.as_slice(), &[11., 22., 13., 24.]);
        assert_eq!(a.col_means().as_slice(), &[2., 3.]);
        assert_eq!(a.row_sums().as_slice(), &[3., 7.]);
        assert!((a.mean() - 2.5).abs() < 1e-12);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(1, 3, |_, c| 100.0 + c as f64);
        let v = a.vcat(&b);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.slice_rows(0, 2), a);
        assert_eq!(v.slice_rows(2, 3), b);

        let h = a.hcat(&a);
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.slice_cols(0, 3), a);
        assert_eq!(h.slice_cols(3, 6), a);
    }

    #[test]
    fn select_rows_gathers() {
        let a = Matrix::from_fn(4, 2, |r, _| r as f64);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[3., 3.]);
        assert_eq!(s.row(1), &[1., 1.]);
    }

    #[test]
    fn axpy_matches_operator() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(3, 3, |r, c| (r * c) as f64);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        let expected = &a + &b.scale(2.0);
        assert_eq!(c, expected);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn acc_into_kernels_accumulate_and_match_fresh() {
        let a = Matrix::from_fn(5, 4, |r, c| (r as f64 + 1.3) * (c as f64 - 0.7));
        let b = Matrix::from_fn(4, 6, |r, c| (r * c) as f64 * 0.25 - 1.0);
        // On a zeroed output the accumulate kernels ARE the fresh
        // products, bit for bit.
        let mut out = Matrix::zeros(5, 6);
        a.matmul_acc_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let mut t_out = Matrix::zeros(4, 6);
        let c = Matrix::from_fn(5, 6, |r, c| (r + c) as f64 * 0.5);
        a.t_matmul_acc_into(&c, &mut t_out);
        assert_eq!(t_out, a.t_matmul(&c));
        let d = Matrix::from_fn(7, 4, |r, c| (r as f64) - (c as f64) * 0.3);
        let mut mt_out = Matrix::zeros(5, 7);
        a.matmul_t_acc_into(&d, &mut mt_out);
        assert_eq!(mt_out, a.matmul_t(&d));

        // On a warm output they accumulate (up to the rounding of the
        // term-by-term chain vs. summing two finished products).
        a.matmul_acc_into(&b, &mut out);
        let twice = &a.matmul(&b) + &a.matmul(&b);
        let err = (&out - &twice).frobenius_norm();
        assert!(err < 1e-9, "accumulation drifted: {err}");
        a.t_matmul_acc_into(&c, &mut t_out);
        let t_twice = &a.t_matmul(&c) + &a.t_matmul(&c);
        assert!((&t_out - &t_twice).frobenius_norm() < 1e-9);
        a.matmul_t_acc_into(&d, &mut mt_out);
        let mt_twice = &a.matmul_t(&d) + &a.matmul_t(&d);
        assert!((&mt_out - &mt_twice).frobenius_norm() < 1e-9);
    }

    #[test]
    fn inplace_elementwise_kernels_match_allocating() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| 0.5 * (r as f64) - c as f64);
        let mut x = a.clone();
        x.add_assign(&b);
        assert_eq!(x, &a + &b);
        let mut y = a.clone();
        y.sub_assign(&b);
        assert_eq!(y, &a - &b);
        let mut z = a.clone();
        z.mul_assign_elem(&b);
        assert_eq!(z, a.hadamard(&b));

        let mut m = Matrix::zeros(3, 4);
        a.map_into(|v| v * 2.0 + 1.0, &mut m);
        assert_eq!(m, a.map(|v| v * 2.0 + 1.0));
        a.zip_map_into(&b, |u, v| u.max(v), &mut m);
        assert_eq!(m, a.zip_map(&b, |u, v| u.max(v)));

        let mut cp = Matrix::zeros(3, 4);
        cp.copy_from(&a);
        assert_eq!(cp, a);
        cp.fill(2.5);
        assert_eq!(cp, Matrix::full(3, 4, 2.5));
    }

    #[test]
    fn broadcast_assign_and_col_sums_acc() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let row = Matrix::row_vector(&[10., 20.]);
        let mut x = a.clone();
        x.add_row_broadcast_assign(&row);
        assert_eq!(x, a.add_row_broadcast(&row));

        let mut sums = Matrix::zeros(1, 2);
        a.col_sums_acc_into(&mut sums);
        assert_eq!(sums.as_slice(), &[4., 6.]);
        a.col_sums_acc_into(&mut sums);
        assert_eq!(sums.as_slice(), &[8., 12.]);
    }

    #[test]
    fn small_matmuls_stay_below_parallel_threshold() {
        // The satellite contract: a 64^3 product must never pay pool
        // dispatch overhead.
        const { assert!(64 * 64 * 64 < PAR_WORK_THRESHOLD) };
        const { assert!(128 * 128 * 128 >= PAR_WORK_THRESHOLD) };
    }

    #[test]
    fn finite_checks() {
        let mut a = Matrix::zeros(2, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.all_finite());
    }
}
