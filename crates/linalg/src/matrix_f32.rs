//! A row-major dense `f32` matrix — the storage for the opt-in
//! reduced-precision serve tier.
//!
//! [`MatrixF32`] is deliberately a small fraction of the [`Matrix`]
//! surface: just what a tape-free inference pass needs (matmul, bias
//! broadcast, elementwise maps and Hadamard combines) plus `f64`
//! conversions at the boundary. Training, gradients and the
//! bit-identity machinery stay `f64`-only; the f32 tier exists to
//! double serve throughput where clients opted out of the bit-exact
//! contract (`TSGB_SERVE_DTYPE=f32`).
//!
//! Determinism still holds *within* the tier: the matmul rides
//! [`crate::gemm`]'s f32 kernel, whose strict per-element fold makes
//! every row's value independent of batch size and kernel path.

use crate::Matrix;

/// Row-major dense `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major buffer; `data.len()` must be
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "MatrixF32 shape mismatch");
        Self { rows, cols, data }
    }

    /// Demotes an `f64` matrix (round-to-nearest per element).
    pub fn from_f64(m: &Matrix) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Promotes back to `f64` (exact: every `f32` is representable).
    pub fn to_f64(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            self.data[i * self.cols + j] as f64
        })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The row-major backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self * rhs` through the packed f32 kernel.
    pub fn matmul(&self, rhs: &MatrixF32) -> MatrixF32 {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = MatrixF32::zeros(self.rows, rhs.cols);
        crate::gemm::gemm_f32(
            self.rows,
            rhs.cols,
            self.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        out
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    pub fn add_row_broadcast_assign(&mut self, row: &MatrixF32) {
        assert_eq!(row.rows, 1, "broadcast row must be 1 x cols");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in self.data.chunks_exact_mut(self.cols) {
            for (o, &b) in r.iter_mut().zip(&row.data) {
                *o += b;
            }
        }
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &MatrixF32) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (o, &v) in self.data.iter_mut().zip(&other.data) {
            *o += v;
        }
    }

    /// Elementwise Hadamard `self *= other`.
    pub fn mul_elem_assign(&mut self, other: &MatrixF32) {
        assert_eq!(self.shape(), other.shape(), "mul_elem shape mismatch");
        for (o, &v) in self.data.iter_mut().zip(&other.data) {
            *o *= v;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip_and_matmul_works() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.25);
        let f = MatrixF32::from_f64(&m);
        assert_eq!(f.to_f64(), m); // quarter steps are f32-exact
        let id = MatrixF32::from_f64(&Matrix::from_fn(4, 4, |i, j| f64::from(i == j)));
        let p = f.matmul(&id);
        assert_eq!(p, f);
    }

    #[test]
    fn broadcast_and_elementwise_ops() {
        let mut m = MatrixF32::zeros(2, 3);
        m.add_row_broadcast_assign(&MatrixF32::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        let mut h = m.clone();
        h.mul_elem_assign(&m);
        assert_eq!(h.row(0), &[1.0, 4.0, 9.0]);
        h.add_assign(&m);
        assert_eq!(h.row(0), &[2.0, 6.0, 12.0]);
        h.map_inplace(|v| v * 0.5);
        assert_eq!(h.row(1), &[1.0, 3.0, 6.0]);
    }
}
