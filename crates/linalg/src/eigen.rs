//! Symmetric eigendecomposition via cyclic Jacobi rotations.
//!
//! The Contextual-FID measure (M3) needs the matrix square root of
//! embedding covariance products; covariances are symmetric positive
//! semi-definite and small (the embedding dimension), so the classic
//! Jacobi method is exact enough and dependency-free.

use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix: returns `(eigenvalues,
/// eigenvectors)` with eigenvectors as *columns*, such that
/// `A = V diag(w) V^T`. Eigenvalues are in no particular order.
///
/// # Panics
/// Panics when the matrix is not square.
pub fn sym_eigen(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "sym_eigen needs a square matrix");
    let mut m = a.clone();
    let mut v = Matrix::eye(n);
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        // largest off-diagonal magnitude
        let mut off = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                off = off.max(m[(i, j)].abs());
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // rotate rows/cols p and q
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let w = (0..n).map(|i| m[(i, i)]).collect();
    (w, v)
}

/// The symmetric PSD square root `A^{1/2} = V diag(sqrt(max(w, 0))) V^T`.
pub fn sqrtm_psd(a: &Matrix) -> Matrix {
    let (w, v) = sym_eigen(a);
    let n = a.rows();
    let mut d = Matrix::zeros(n, n);
    for (i, &wi) in w.iter().enumerate() {
        d[(i, i)] = wi.max(0.0).sqrt();
    }
    v.matmul(&d).matmul_t(&v)
}

/// Covariance matrix of rows: `X` is `(samples, dims)`; returns the
/// `(dims, dims)` covariance with the 1/(n-1) normalization (falling
/// back to 1/n for a single sample).
pub fn row_covariance(x: &Matrix) -> Matrix {
    let (n, d) = x.shape();
    let means = x.col_means();
    let mut c = Matrix::zeros(d, d);
    for r in 0..n {
        let row = x.row(r);
        for i in 0..d {
            let di = row[i] - means[(0, i)];
            for j in i..d {
                let dj = row[j] - means[(0, j)];
                c[(i, j)] += di * dj;
            }
        }
    }
    let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
    for i in 0..d {
        for j in i..d {
            c[(i, j)] /= denom;
            c[(j, i)] = c[(i, j)];
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal_is_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 5.0;
        a[(2, 2)] = -1.0;
        let (mut w, _) = sym_eigen(&a);
        w.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((w[0] + 1.0).abs() < 1e-10);
        assert!((w[1] - 2.0).abs() < 1e-10);
        assert!((w[2] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_from_decomposition() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]).unwrap();
        let (w, v) = sym_eigen(&a);
        let mut d = Matrix::zeros(3, 3);
        for (i, &wi) in w.iter().enumerate() {
            d[(i, i)] = wi;
        }
        let rec = v.matmul(&d).matmul_t(&v);
        for (x, y) in a.as_slice().iter().zip(rec.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn sqrtm_squares_back() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 0.5, 0.5, 1.0]).unwrap();
        let s = sqrtm_psd(&a);
        let sq = s.matmul(&s);
        for (x, y) in a.as_slice().iter().zip(sq.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_of_known_data() {
        // two dims, perfectly correlated
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 2.0, 2.0, 4.0, 3.0, 6.0]).unwrap();
        let c = row_covariance(&x);
        assert!((c[(0, 1)] * c[(0, 1)] - c[(0, 0)] * c[(1, 1)]).abs() < 1e-9);
        assert!(c[(0, 0)] > 0.0);
    }
}
