//! Property tests on the symmetric eigensolver — the numerical
//! foundation of C-FID's Fréchet distance and the PCA visualization.

use proptest::prelude::*;
use tsgb_linalg::eigen::{row_covariance, sqrtm_psd, sym_eigen};
use tsgb_linalg::Matrix;

/// A random symmetric matrix built as `A + A^T`.
fn symmetric(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f64..3.0, n * n).prop_map(move |v| {
        let a = Matrix::from_vec(n, n, v).expect("sized");
        let at = a.transpose();
        &a + &at
    })
}

/// A random PSD matrix built as `B B^T`.
fn psd(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, n * n).prop_map(move |v| {
        let b = Matrix::from_vec(n, n, v).expect("sized");
        b.matmul_t(&b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trace_equals_eigenvalue_sum(a in symmetric(4)) {
        let (w, _) = sym_eigen(&a);
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = w.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * (1.0 + trace.abs()));
    }

    #[test]
    fn decomposition_reconstructs(a in symmetric(3)) {
        let (w, v) = sym_eigen(&a);
        let mut d = Matrix::zeros(3, 3);
        for (i, &wi) in w.iter().enumerate() {
            d[(i, i)] = wi;
        }
        let rec = v.matmul(&d).matmul_t(&v);
        for (x, y) in a.as_slice().iter().zip(rec.as_slice()) {
            prop_assert!((x - y).abs() < 1e-7 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal(a in symmetric(4)) {
        let (_, v) = sym_eigen(&a);
        let vtv = v.t_matmul(&v);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((vtv[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn psd_matrices_have_nonnegative_spectra(a in psd(4)) {
        let (w, _) = sym_eigen(&a);
        prop_assert!(w.iter().all(|&x| x > -1e-8), "spectrum: {w:?}");
    }

    #[test]
    fn sqrtm_squares_back_for_psd(a in psd(3)) {
        let s = sqrtm_psd(&a);
        let sq = s.matmul(&s);
        for (x, y) in a.as_slice().iter().zip(sq.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn covariance_is_psd(values in prop::collection::vec(-5.0f64..5.0, 30)) {
        let x = Matrix::from_vec(10, 3, values).expect("sized");
        let c = row_covariance(&x);
        let (w, _) = sym_eigen(&c);
        prop_assert!(w.iter().all(|&e| e > -1e-9), "covariance spectrum: {w:?}");
    }
}
