//! Deterministic seeded-loop fallbacks for the proptest properties in
//! `matrix_properties.rs` / `eigen_properties.rs` (opt-in via the
//! `proptest` feature), plus the parallel-determinism contract of the
//! blocked matmul kernels. These always run, with no external deps.

use tsgb_linalg::eigen::{row_covariance, sqrtm_psd, sym_eigen};
use tsgb_linalg::rng::{seeded, uniform_matrix};
use tsgb_linalg::{stats, Matrix};
use tsgb_rand::rngs::SmallRng;
use tsgb_rand::Rng;

fn approx(x: f64, y: f64, tol: f64) {
    assert!(
        (x - y).abs() < tol * (1.0 + x.abs()),
        "{x} vs {y} (tol {tol})"
    );
}

#[test]
fn matmul_algebraic_laws_seeded() {
    let mut rng = seeded(0xA1);
    for _ in 0..12 {
        let a = uniform_matrix(3, 4, -100.0, 100.0, &mut rng);
        let b = uniform_matrix(4, 2, -100.0, 100.0, &mut rng);
        let c = uniform_matrix(2, 5, -100.0, 100.0, &mut rng);
        // associativity
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            approx(*x, *y, 1e-6);
        }
        // transpose reverses products
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            approx(*x, *y, 1e-9);
        }
        // distributivity
        let d = uniform_matrix(3, 3, -100.0, 100.0, &mut rng);
        let e = uniform_matrix(3, 3, -100.0, 100.0, &mut rng);
        let f = uniform_matrix(3, 3, -100.0, 100.0, &mut rng);
        let left = d.matmul(&(&e + &f));
        let right = &d.matmul(&e) + &d.matmul(&f);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            approx(*x, *y, 1e-7);
        }
    }
}

#[test]
fn fused_transpose_kernels_agree_seeded() {
    let mut rng = seeded(0xA2);
    for _ in 0..12 {
        let a = uniform_matrix(4, 3, -100.0, 100.0, &mut rng);
        let b = uniform_matrix(4, 5, -100.0, 100.0, &mut rng);
        // the kernels share one per-element summation order, so the
        // fused variants match the explicit transposes exactly
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
        let c = uniform_matrix(5, 3, -100.0, 100.0, &mut rng);
        assert_eq!(a.matmul_t(&c), a.matmul(&c.transpose()));
    }
}

#[test]
fn eigen_laws_seeded() {
    let mut rng = seeded(0xA3);
    for _ in 0..8 {
        let raw = uniform_matrix(4, 4, -3.0, 3.0, &mut rng);
        let a = &raw + &raw.transpose();
        let (w, v) = sym_eigen(&a);
        // trace equals eigenvalue sum
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        approx(trace, w.iter().sum(), 1e-8);
        // eigenvectors orthonormal
        let vtv = v.t_matmul(&v);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-8);
            }
        }
        // reconstruction
        let mut d = Matrix::zeros(4, 4);
        for (i, &wi) in w.iter().enumerate() {
            d[(i, i)] = wi;
        }
        let rec = v.matmul(&d).matmul_t(&v);
        for (x, y) in a.as_slice().iter().zip(rec.as_slice()) {
            approx(*x, *y, 1e-7);
        }
        // PSD spectra and matrix square root
        let b = uniform_matrix(3, 3, -2.0, 2.0, &mut rng);
        let p = b.matmul_t(&b);
        let (wp, _) = sym_eigen(&p);
        assert!(wp.iter().all(|&x| x > -1e-8), "spectrum: {wp:?}");
        let s = sqrtm_psd(&p);
        let sq = s.matmul(&s);
        for (x, y) in p.as_slice().iter().zip(sq.as_slice()) {
            approx(*x, *y, 1e-6);
        }
    }
}

#[test]
fn covariance_is_psd_seeded() {
    let mut rng = seeded(0xA4);
    for _ in 0..8 {
        let x = uniform_matrix(10, 3, -5.0, 5.0, &mut rng);
        let c = row_covariance(&x);
        let (w, _) = sym_eigen(&c);
        assert!(w.iter().all(|&e| e > -1e-9), "covariance spectrum: {w:?}");
    }
}

#[test]
fn stats_invariants_seeded() {
    let mut rng = seeded(0xA5);
    for _ in 0..8 {
        let n = rng.gen_range(8usize..64);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let shift = rng.gen_range(-100.0..100.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let negated: Vec<f64> = xs.iter().map(|x| -x).collect();
        let s = stats::skewness(&xs);
        assert!((stats::skewness(&shifted) - s).abs() < 1e-6 + 1e-6 * s.abs());
        assert!((stats::skewness(&negated) + s).abs() < 1e-6 + 1e-6 * s.abs());
        let k = stats::kurtosis(&xs);
        assert!((stats::kurtosis(&negated) - k).abs() < 1e-6 + 1e-6 * k.abs());
        let h = stats::Histogram::of(&xs, 16);
        let total: f64 = h.density.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let (q25, q50, q75) = (
            stats::quantile(&xs, 0.25),
            stats::quantile(&xs, 0.5),
            stats::quantile(&xs, 0.75),
        );
        assert!(q25 <= q50 && q50 <= q75);
    }
}

/// Matrices sized to push every product past the parallel dispatch
/// threshold (`m * n * k >= 2^17`).
fn big_pair(rng: &mut SmallRng) -> (Matrix, Matrix) {
    let a = uniform_matrix(96, 96, -2.0, 2.0, rng);
    let b = uniform_matrix(96, 96, -2.0, 2.0, rng);
    (a, b)
}

#[test]
fn parallel_matmul_bit_identical_to_serial() {
    let mut rng = seeded(0xB0);
    let (a, b) = big_pair(&mut rng);
    let serial = tsgb_par::with_threads(1, || {
        (a.matmul(&b), a.t_matmul(&b), a.matmul_t(&b))
    });
    for threads in [2, tsgb_par::max_threads().max(2)] {
        let par = tsgb_par::with_threads(threads, || {
            (a.matmul(&b), a.t_matmul(&b), a.matmul_t(&b))
        });
        // assert_eq! on Matrix compares every f64 exactly: the banded
        // parallel kernels must reproduce the serial results bit for bit
        assert_eq!(par.0, serial.0, "matmul, {threads} threads");
        assert_eq!(par.1, serial.1, "t_matmul, {threads} threads");
        assert_eq!(par.2, serial.2, "matmul_t, {threads} threads");
    }
}

#[test]
fn ragged_band_shapes_bit_identical() {
    // odd sizes exercise remainder handling in the k-unroll, the
    // column blocking, and the final short row band
    let mut rng = seeded(0xB1);
    let a = uniform_matrix(97, 53, -2.0, 2.0, &mut rng);
    let b = uniform_matrix(53, 71, -2.0, 2.0, &mut rng);
    let serial = tsgb_par::with_threads(1, || a.matmul(&b));
    for threads in [2, 3, 5, 8] {
        let par = tsgb_par::with_threads(threads, || a.matmul(&b));
        assert_eq!(par, serial, "{threads} threads");
    }
}

#[test]
fn matmul_propagates_non_finite_values() {
    // the kernels must not skip zero coefficients: 0 * NaN and 0 * inf
    // are NaN and must poison the affected outputs
    let mut a = Matrix::zeros(2, 2);
    a[(0, 0)] = 0.0;
    a[(0, 1)] = 1.0;
    let mut b = Matrix::zeros(2, 2);
    b[(0, 0)] = f64::NAN;
    b[(1, 0)] = 2.0;
    b[(1, 1)] = f64::INFINITY;
    let c = a.matmul(&b);
    assert!(c[(0, 0)].is_nan(), "0 * NaN must propagate");
    assert!(c[(0, 1)].is_infinite());
    assert!(c[(1, 0)].is_nan(), "row of zeros times NaN column");
}

#[test]
fn matmul_propagates_non_finite_values_in_parallel_blocked_kernels() {
    // Same 0 * NaN contract as above, but at a size whose work
    // (128^3 = 2^21) is above the parallel-dispatch threshold, so the
    // blocked multi-thread kernels are exercised. A kernel that skips
    // zero coefficients (or a block containing them) would turn NaN
    // into 0 here. NaN != NaN, so equality is checked on the bits.
    let n = 128;
    let mut rng = seeded(0xBAD0);
    let mut a = uniform_matrix(n, n, -1.0, 1.0, &mut rng);
    let mut b = uniform_matrix(n, n, -1.0, 1.0, &mut rng);
    // a zero row in `a`, and NaN / inf spread over several blocks of `b`
    for j in 0..n {
        a[(17, j)] = 0.0;
    }
    a[(40, 3)] = 0.0;
    b[(3, 40)] = f64::NAN;
    b[(5, 0)] = f64::NAN;
    b[(90, 127)] = f64::INFINITY;
    b[(127, 64)] = -f64::INFINITY;

    let bits = |m: &Matrix| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
    let run = || {
        (
            bits(&a.matmul(&b)),
            bits(&a.t_matmul(&b)),
            bits(&a.matmul_t(&b)),
        )
    };
    let serial = tsgb_par::with_threads(1, run);

    // NaN rows of `b` poison every output column they touch, including
    // through the zero row of `a`.
    let c = tsgb_par::with_threads(1, || a.matmul(&b));
    assert!(c[(17, 40)].is_nan(), "zero row times NaN must stay NaN");
    assert!(c[(17, 0)].is_nan());
    assert!(c[(40, 40)].is_nan(), "0 * NaN coefficient must stay NaN");

    for threads in [2, 4, 8] {
        let par = tsgb_par::with_threads(threads, run);
        assert_eq!(par.0, serial.0, "matmul bits differ at {threads} threads");
        assert_eq!(par.1, serial.1, "t_matmul bits differ at {threads} threads");
        assert_eq!(par.2, serial.2, "matmul_t bits differ at {threads} threads");
    }
}
