//! Packed-vs-band bit-identity properties.
//!
//! The packed microkernel GEMM promises *bit-identical* results to
//! the band kernels: every output element is the same strict
//! k-ascending mul-then-add fold, only the traversal order of
//! independent elements changes. These tests drive both paths through
//! [`with_gemm_mode`] over ragged shapes (nothing aligned to the
//! MR/NR/KC tile sizes), all three op variants, warm accumulation,
//! and the 0·NaN edge, comparing raw bits.

use tsgb_linalg::gemm::{with_gemm_mode, GemmMode, KC, MR, NR};
use tsgb_linalg::rng::{seeded, uniform_matrix};
use tsgb_linalg::Matrix;

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: element {i} differs: {x:e} vs {y:e}"
        );
    }
}

/// Ragged shapes: deliberately *not* multiples of the register tile
/// (MR×NR) or the k-block (KC), plus exact-tile shapes and
/// single-row/column degenerates. Sizes are chosen so `m*n*k` clears
/// the packed-path threshold (2^19) for most cases — the small ones
/// exercise the dispatch fallthrough instead, which must also agree.
fn ragged_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        // above threshold, nothing tile-aligned
        (97, 103, 61),
        (129, 65, 127),
        (100, 100, 100),
        (MR * 9 + 3, NR * 7 + 5, KC + 17),
        // k crosses multiple KC blocks
        (70, 70, 2 * KC + 9),
        // tall-skinny / short-wide
        (300, 9, 200),
        (9, 300, 200),
        // exact tile multiples
        (MR * 12, NR * 12, 128),
        // below the packed threshold (dispatch falls through to band)
        (13, 7, 5),
        (1, 50, 50),
        (50, 1, 50),
    ]
}

/// Shapes the three ops need: `matmul` is (m,k)x(k,n); `t_matmul`
/// computes aᵀ·b so a is (k,m); `matmul_t` computes a·bᵀ so b is
/// (n,k).
fn operands(m: usize, n: usize, k: usize, seed: u64) -> (Matrix, Matrix, Matrix, Matrix) {
    let mut rng = seeded(seed);
    let a = uniform_matrix(m, k, -2.0, 2.0, &mut rng);
    let b = uniform_matrix(k, n, -2.0, 2.0, &mut rng);
    let at = uniform_matrix(k, m, -2.0, 2.0, &mut rng);
    let bt = uniform_matrix(n, k, -2.0, 2.0, &mut rng);
    (a, b, at, bt)
}

#[test]
fn packed_matches_band_bitwise_over_ragged_shapes() {
    for (m, n, k) in ragged_shapes() {
        let (a, b, at, bt) = operands(m, n, k, (m * 31 + n * 7 + k) as u64);
        let packed = with_gemm_mode(GemmMode::Packed, || {
            (a.matmul(&b), at.t_matmul(&b), a.matmul_t(&bt))
        });
        let band = with_gemm_mode(GemmMode::Band, || {
            (a.matmul(&b), at.t_matmul(&b), a.matmul_t(&bt))
        });
        assert_bits_eq(&packed.0, &band.0, &format!("matmul {m}x{n}x{k}"));
        assert_bits_eq(&packed.1, &band.1, &format!("t_matmul {m}x{n}x{k}"));
        assert_bits_eq(&packed.2, &band.2, &format!("matmul_t {m}x{n}x{k}"));
    }
}

#[test]
fn packed_acc_into_matches_band_on_warm_output() {
    for (m, n, k) in [(97usize, 103, 61), (70, 70, 2 * KC + 9), (13, 7, 5)] {
        let (a, b, at, bt) = operands(m, n, k, 9000 + k as u64);
        let mut warm_rng = seeded(4242);
        let warm = uniform_matrix(m, n, -1.0, 1.0, &mut warm_rng);

        let run = |mode: GemmMode| {
            with_gemm_mode(mode, || {
                let mut c0 = warm.clone();
                a.matmul_acc_into(&b, &mut c0);
                let mut c1 = warm.clone();
                at.t_matmul_acc_into(&b, &mut c1);
                let mut c2 = warm.clone();
                a.matmul_t_acc_into(&bt, &mut c2);
                (c0, c1, c2)
            })
        };
        let packed = run(GemmMode::Packed);
        let band = run(GemmMode::Band);
        assert_bits_eq(&packed.0, &band.0, &format!("matmul_acc {m}x{n}x{k}"));
        assert_bits_eq(&packed.1, &band.1, &format!("t_matmul_acc {m}x{n}x{k}"));
        assert_bits_eq(&packed.2, &band.2, &format!("matmul_t_acc {m}x{n}x{k}"));
    }
}

#[test]
fn packed_parallel_matches_serial_bitwise() {
    let (m, n, k) = (150usize, 140, 130);
    let (a, b, _, _) = operands(m, n, k, 77);
    let serial = with_gemm_mode(GemmMode::Packed, || {
        tsgb_par::with_threads(1, || a.matmul(&b))
    });
    let parallel = with_gemm_mode(GemmMode::Packed, || {
        tsgb_par::with_threads(4, || a.matmul(&b))
    });
    assert_bits_eq(&serial, &parallel, "packed serial vs 4 threads");
}

/// The packed path must not skip zero terms: `0 * NaN` is NaN and the
/// whole k-fold containing it must come out NaN, exactly as the band
/// kernels produce. A kernel that branches on zero (or multiplies
/// padding into the answer) breaks this.
#[test]
fn packed_propagates_nan_through_zero_products() {
    let (m, n, k) = (96usize, 96, 64);
    // a has a zero column; b has NaN in the matching row, so every
    // C[i][j] fold contains exactly one 0*NaN term.
    let a = Matrix::from_fn(m, k, |_, c| if c == 37 { 0.0 } else { 1.0 });
    let b = Matrix::from_fn(k, n, |r, _| if r == 37 { f64::NAN } else { 1.0 });
    let packed = with_gemm_mode(GemmMode::Packed, || a.matmul(&b));
    let band = with_gemm_mode(GemmMode::Band, || a.matmul(&b));
    assert!(
        packed.as_slice().iter().all(|v| v.is_nan()),
        "packed path skipped a 0*NaN term"
    );
    assert!(band.as_slice().iter().all(|v| v.is_nan()));
    // NaN payload bits must match too
    for (p, q) in packed.as_slice().iter().zip(band.as_slice()) {
        assert_eq!(p.to_bits(), q.to_bits());
    }
}
