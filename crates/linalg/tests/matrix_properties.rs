//! Property tests on the matrix/tensor substrate: the algebraic laws
//! every other crate silently relies on.

use proptest::prelude::*;
use tsgb_linalg::stats;
use tsgb_linalg::{Matrix, Tensor3};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-100.0f64..100.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-7 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn transpose_reverses_products(a in matrix(3, 4), b in matrix(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn fused_transpose_kernels_agree(a in matrix(4, 3), b in matrix(4, 5)) {
        let fused = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
        }
        let c = Matrix::from_fn(5, 3, |r, q| (r + q) as f64);
        let fused2 = a.matmul_t(&c);
        let explicit2 = a.matmul(&c.transpose());
        for (x, y) in fused2.as_slice().iter().zip(explicit2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn frobenius_is_a_norm(a in matrix(3, 3), b in matrix(3, 3)) {
        let na = a.frobenius_norm();
        let nb = b.frobenius_norm();
        let nsum = (&a + &b).frobenius_norm();
        prop_assert!(na >= 0.0);
        // triangle inequality
        prop_assert!(nsum <= na + nb + 1e-9);
        // scaling
        let scaled = a.scale(-2.0).frobenius_norm();
        prop_assert!((scaled - 2.0 * na).abs() < 1e-9 * (1.0 + na));
    }

    #[test]
    fn hcat_vcat_slices_are_inverses(a in matrix(3, 2), b in matrix(3, 4)) {
        let h = a.hcat(&b);
        prop_assert_eq!(h.slice_cols(0, 2), a.clone());
        prop_assert_eq!(h.slice_cols(2, 6), b);
        let c = Matrix::from_fn(2, 2, |r, q| (r * q) as f64);
        let v = a.slice_cols(0, 2).vcat(&c);
        prop_assert_eq!(v.slice_rows(0, 3), a);
        prop_assert_eq!(v.slice_rows(3, 5), c);
    }

    #[test]
    fn tensor_flatten_preserves_order(vals in prop::collection::vec(-10.0f64..10.0, 24)) {
        let t = Tensor3::from_vec(2, 3, 4, vals.clone()).expect("sized");
        let flat = t.flatten_samples();
        let stacked = t.stack_steps();
        prop_assert_eq!(flat.as_slice(), &vals[..]);
        prop_assert_eq!(stacked.as_slice(), &vals[..]);
    }

    #[test]
    fn histogram_mass_conserved(xs in prop::collection::vec(-5.0f64..5.0, 1..200)) {
        let h = stats::Histogram::of(&xs, 16);
        let total: f64 = h.density.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(h.density.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn skewness_is_shift_invariant_and_flips_under_negation(
        xs in prop::collection::vec(-50.0f64..50.0, 8..64),
        shift in -100.0f64..100.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let negated: Vec<f64> = xs.iter().map(|x| -x).collect();
        let s = stats::skewness(&xs);
        prop_assert!((stats::skewness(&shifted) - s).abs() < 1e-6 + 1e-6 * s.abs());
        prop_assert!((stats::skewness(&negated) + s).abs() < 1e-6 + 1e-6 * s.abs());
        // kurtosis is invariant under both
        let k = stats::kurtosis(&xs);
        prop_assert!((stats::kurtosis(&negated) - k).abs() < 1e-6 + 1e-6 * k.abs());
    }

    #[test]
    fn quantiles_are_monotone(xs in prop::collection::vec(-10.0f64..10.0, 2..64)) {
        let q25 = stats::quantile(&xs, 0.25);
        let q50 = stats::quantile(&xs, 0.5);
        let q75 = stats::quantile(&xs, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
    }
}
