//! A2: TimeGAN (Yoon, Jarrett & van der Schaar, NeurIPS'19) — the de
//! facto benchmark model for TSG.
//!
//! Five networks share a learned latent space: an embedder `E` and
//! recovery `R` (an autoencoder over sequences), a generator `G`
//! producing latent trajectories from noise, a supervisor `S`
//! predicting the next latent step, and a discriminator `D` over
//! latent trajectories. Training follows the original three phases,
//! splitting the epoch budget evenly:
//!
//! 1. **autoencoding** — `E`/`R` minimize reconstruction MSE;
//! 2. **supervised** — `S` learns next-step latent dynamics on real
//!    embeddings;
//! 3. **joint** — alternating `D` (BCE real-vs-fake latents), `G`
//!    (adversarial + supervised + moment-matching on recovered data),
//!    and `E`/`R` (reconstruction, keeping the latent space useful).
//!
//! Reduced-scale deviations: one GRU layer per network instead of
//! three (paper §5), sequence-level discriminator logits, and the
//! moment loss uses first and second moments exactly as the original.

use crate::common::{
    gather_step_matrices, minibatch, noise, serial_generate_batch, split_samples, steps_to_tensor,
    vstack, EpochLog, FitDims, GenSpec, MethodId, PhasePlan, TrainConfig, TrainReport, TsgMethod,
};
use crate::persist::{PersistError, SnapshotReader, SnapshotWriter};
use tsgb_rand::rngs::SmallRng;
use std::time::Instant;
use tsgb_linalg::rng::seeded;
use tsgb_linalg::{Matrix, Tensor3};
use tsgb_nn::layers::{GruCell, Linear};
use tsgb_nn::loss;
use tsgb_nn::optim::Adam;
use tsgb_nn::params::{Binding, Params};
use tsgb_nn::tape::{Tape, VarId};

/// A GRU with a per-step dense head.
struct RnnHead {
    cell: GruCell,
    head: Linear,
    sigmoid_out: bool,
}

impl RnnHead {
    fn new(
        p: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        sigmoid_out: bool,
        rng: &mut SmallRng,
    ) -> Self {
        Self {
            cell: GruCell::new(p, &format!("{name}.gru"), in_dim, hidden, rng),
            head: Linear::new(p, &format!("{name}.head"), hidden, out_dim, rng),
            sigmoid_out,
        }
    }

    /// Per-step outputs for per-step inputs.
    fn run(&self, t: &mut Tape, b: &Binding, xs: &[VarId], batch: usize) -> Vec<VarId> {
        let hs = self.cell.run(t, b, xs, batch);
        hs.iter()
            .map(|&h| {
                let o = self.head.forward(t, b, h);
                if self.sigmoid_out {
                    t.sigmoid(o)
                } else {
                    o
                }
            })
            .collect()
    }

    /// Final-state output only (discriminator logit).
    fn run_last(&self, t: &mut Tape, b: &Binding, xs: &[VarId], batch: usize) -> VarId {
        let hs = self.cell.run(t, b, xs, batch);
        self.head
            .forward(t, b, *hs.last().expect("non-empty sequence"))
    }
}

struct Nets {
    er_params: Params, // embedder + recovery
    s_params: Params,  // supervisor
    g_params: Params,  // generator
    d_params: Params,  // discriminator
    embedder: RnnHead,
    recovery: RnnHead,
    supervisor: RnnHead,
    generator: RnnHead,
    discriminator: RnnHead,
    noise_dim: usize,
}

/// The TimeGAN method.
pub struct TimeGan {
    seq_len: usize,
    features: usize,
    dims: Option<FitDims>,
    nets: Option<Nets>,
}

impl TimeGan {
    /// A new untrained TimeGAN for `(seq_len, features)` windows.
    pub fn new(seq_len: usize, features: usize) -> Self {
        Self {
            seq_len,
            features,
            dims: None,
            nets: None,
        }
    }

    fn build(&self, cfg: &TrainConfig, rng: &mut SmallRng) -> Nets {
        let h = cfg.hidden;
        let noise_dim = cfg.latent.max(2);
        let mut er_params = Params::new();
        let embedder = RnnHead::new(&mut er_params, "e", self.features, h, h, true, rng);
        let recovery = RnnHead::new(&mut er_params, "r", h, h, self.features, true, rng);
        let mut s_params = Params::new();
        let supervisor = RnnHead::new(&mut s_params, "s", h, h, h, true, rng);
        let mut g_params = Params::new();
        let generator = RnnHead::new(&mut g_params, "g", noise_dim, h, h, true, rng);
        let mut d_params = Params::new();
        let discriminator = RnnHead::new(&mut d_params, "d", h, h, 1, false, rng);
        Nets {
            er_params,
            s_params,
            g_params,
            d_params,
            embedder,
            recovery,
            supervisor,
            generator,
            discriminator,
            noise_dim,
        }
    }
}

/// Differentiable per-feature moment loss between two step lists:
/// squared difference of column means plus column second moments.
fn moment_loss(t: &mut Tape, fake: &[VarId], real: &[VarId]) -> VarId {
    let fcat = t.concat_rows(fake);
    let rcat = t.concat_rows(real);
    let frows = t.shape(fcat).0;
    let avg = Matrix::full(1, frows, 1.0 / frows as f64);
    let rrows = t.shape(rcat).0;
    let ravg = Matrix::full(1, rrows, 1.0 / rrows as f64);
    let avg_c = t.constant(avg);
    let ravg_c = t.constant(ravg);
    let mf = t.matmul(avg_c, fcat); // (1, n) means
    let mr = t.matmul(ravg_c, rcat);
    let dmean = t.sub(mf, mr);
    let dmean2 = t.square(dmean);
    let l_mean = t.mean(dmean2);

    let f2 = t.square(fcat);
    let r2 = t.square(rcat);
    let sf = t.matmul(avg_c, f2);
    let sr = t.matmul(ravg_c, r2);
    let dvar = t.sub(sf, sr);
    let dvar2 = t.square(dvar);
    let l_var = t.mean(dvar2);
    t.add(l_mean, l_var)
}

impl TsgMethod for TimeGan {
    fn id(&self) -> MethodId {
        MethodId::TimeGan
    }

    fn fit(&mut self, train: &Tensor3, cfg: &TrainConfig, rng: &mut SmallRng) -> TrainReport {
        let start = Instant::now();
        let mut nets = self.build(cfg, rng);
        let (r, l, _) = train.shape();
        let mut er_opt = Adam::new(cfg.lr);
        let mut s_opt = Adam::new(cfg.lr);
        let mut g_opt = Adam::with_betas(cfg.lr, 0.5, 0.999);
        let mut d_opt = Adam::with_betas(cfg.lr, 0.5, 0.999);
        let phase = (cfg.epochs / 3).max(1);
        let mut log = EpochLog::new(self.id(), cfg.epochs);

        let mut ae_tape = PhasePlan::new(cfg);
        let mut s_tape = PhasePlan::new(cfg);
        let mut d_tape = PhasePlan::new(cfg);
        let mut g_tape = PhasePlan::new(cfg);
        let mut er_tape = PhasePlan::new(cfg);

        // ---- phase 1: autoencoding ----
        for _ in 0..phase {
            let idx = minibatch(r, cfg.batch, rng);
            let steps = gather_step_matrices(train, &idx);
            let t = ae_tape.begin();
            let erb = nets.er_params.bind(t);
            let xs: Vec<VarId> = steps.iter().map(|m| t.constant(m.clone())).collect();
            let hs = nets.embedder.run(t, &erb, &xs, idx.len());
            let xh = nets.recovery.run(t, &erb, &hs, idx.len());
            let xh_cat = t.concat_rows(&xh);
            let target: Matrix = steps
                .iter()
                .fold(None::<Matrix>, |acc, m| {
                    Some(match acc {
                        None => m.clone(),
                        Some(a) => a.vcat(m),
                    })
                })
                .expect("non-empty");
            let rec = loss::mse_mean(t, xh_cat, &target);
            t.backward(rec);
            nets.er_params.absorb_grads(t, &erb);
            nets.er_params.clip_grad_norm(5.0);
            er_opt.step(&mut nets.er_params);
            log.epoch(t.value(rec)[(0, 0)]);
        }

        // ---- phase 2: supervised next-step dynamics ----
        for _ in 0..phase {
            let idx = minibatch(r, cfg.batch, rng);
            let steps = gather_step_matrices(train, &idx);
            let t = s_tape.begin();
            let erb = nets.er_params.bind(t);
            let sb = nets.s_params.bind(t);
            let xs: Vec<VarId> = steps.iter().map(|m| t.constant(m.clone())).collect();
            let hs = nets.embedder.run(t, &erb, &xs, idx.len());
            // stop-gradient into E: detach the embeddings on-tape so S
            // trains alone (same bits as copying them into constants,
            // but replayable by a compiled plan)
            let h_const: Vec<VarId> = hs.iter().map(|&h| t.detach(h)).collect();
            let preds = nets
                .supervisor
                .run(t, &sb, &h_const[..l - 1], idx.len());
            let pred_cat = t.concat_rows(&preds);
            // on-tape MSE against the detached next-step embeddings --
            // the op sequence of `loss::mse_mean` with the target
            // concatenated on the tape instead of copied off it
            let target_cat = t.concat_rows(&h_const[1..]);
            let d = t.sub(pred_cat, target_cat);
            let sq = t.square(d);
            let sup = t.mean(sq);
            t.backward(sup);
            nets.s_params.absorb_grads(t, &sb);
            nets.s_params.clip_grad_norm(5.0);
            s_opt.step(&mut nets.s_params);
            log.epoch(t.value(sup)[(0, 0)]);
        }

        // ---- phase 3: joint adversarial ----
        let joint = cfg.epochs.saturating_sub(2 * phase).max(1);
        for _ in 0..joint {
            let idx = minibatch(r, cfg.batch, rng);
            let batch = idx.len();
            let steps = gather_step_matrices(train, &idx);
            let zs: Vec<Matrix> = (0..l).map(|_| noise(batch, nets.noise_dim, rng)).collect();

            // D step
            {
                let t = d_tape.begin();
                let erb = nets.er_params.bind(t);
                let gb = nets.g_params.bind(t);
                let db = nets.d_params.bind(t);
                let xs: Vec<VarId> = steps.iter().map(|m| t.constant(m.clone())).collect();
                let h_real = nets.embedder.run(t, &erb, &xs, batch);
                let z_vars: Vec<VarId> = zs.iter().map(|z| t.constant(z.clone())).collect();
                let h_fake = nets.generator.run(t, &gb, &z_vars, batch);
                let real_logit = nets.discriminator.run_last(t, &db, &h_real, batch);
                let fake_logit = nets.discriminator.run_last(t, &db, &h_fake, batch);
                let d_loss = loss::gan_discriminator_loss(t, real_logit, fake_logit);
                t.backward(d_loss);
                nets.d_params.absorb_grads(t, &db);
                nets.d_params.clip_grad_norm(5.0);
                d_opt.step(&mut nets.d_params);
            }

            // G step: adversarial + supervised + moments on recovered data
            let g_loss_val = {
                let t = g_tape.begin();
                let erb = nets.er_params.bind(t);
                let sb = nets.s_params.bind(t);
                let gb = nets.g_params.bind(t);
                let db = nets.d_params.bind(t);
                let z_vars: Vec<VarId> = zs.iter().map(|z| t.constant(z.clone())).collect();
                let h_fake = nets.generator.run(t, &gb, &z_vars, batch);
                let fake_logit = nets.discriminator.run_last(t, &db, &h_fake, batch);
                let adv = loss::gan_generator_loss(t, fake_logit);
                // supervised consistency of generated latents
                let preds = nets.supervisor.run(t, &sb, &h_fake[..l - 1], batch);
                let pred_cat = t.concat_rows(&preds);
                let next_cat = t.concat_rows(&h_fake[1..]);
                let d = t.sub(pred_cat, next_cat);
                let d2 = t.square(d);
                let sup = t.mean(d2);
                // moment matching on recovered series
                let x_fake = nets.recovery.run(t, &erb, &h_fake, batch);
                let xs_real: Vec<VarId> = steps.iter().map(|m| t.constant(m.clone())).collect();
                let mom = moment_loss(t, &x_fake, &xs_real);
                let sup_s = t.scale(sup, 10.0);
                let mom_s = t.scale(mom, 10.0);
                let partial = t.add(adv, sup_s);
                let g_loss = t.add(partial, mom_s);
                t.backward(g_loss);
                nets.g_params.absorb_grads(t, &gb);
                nets.g_params.clip_grad_norm(5.0);
                g_opt.step(&mut nets.g_params);
                t.value(g_loss)[(0, 0)]
            };

            // E/R refresh: keep the latent space reconstructive
            {
                let t = er_tape.begin();
                let erb = nets.er_params.bind(t);
                let xs: Vec<VarId> = steps.iter().map(|m| t.constant(m.clone())).collect();
                let hs = nets.embedder.run(t, &erb, &xs, batch);
                let xh = nets.recovery.run(t, &erb, &hs, batch);
                let xh_cat = t.concat_rows(&xh);
                let target = steps
                    .iter()
                    .skip(1)
                    .fold(steps[0].clone(), |a, m| a.vcat(m));
                let rec = loss::mse_mean(t, xh_cat, &target);
                t.backward(rec);
                nets.er_params.absorb_grads(t, &erb);
                nets.er_params.clip_grad_norm(5.0);
                er_opt.step(&mut nets.er_params);
            }
            log.epoch(g_loss_val);
        }

        self.dims = Some(FitDims::of(cfg));
        self.nets = Some(nets);
        log.finish(start)
    }

    fn generate(&self, n: usize, rng: &mut SmallRng) -> Tensor3 {
        let nets = self
            .nets
            .as_ref()
            .expect("TimeGAN::generate called before fit");
        let zs: Vec<Matrix> = (0..self.seq_len)
            .map(|_| noise(n, nets.noise_dim, rng))
            .collect();
        let mut t = Tape::new();
        let erb = nets.er_params.bind(&mut t);
        let gb = nets.g_params.bind(&mut t);
        let z_vars: Vec<VarId> = zs.iter().map(|z| t.constant(z.clone())).collect();
        let h_fake = nets.generator.run(&mut t, &gb, &z_vars, n);
        let x_fake = nets.recovery.run(&mut t, &erb, &h_fake, n);
        let mats: Vec<Matrix> = x_fake.iter().map(|&s| t.value(s).clone()).collect();
        steps_to_tensor(&mats)
    }

    fn generate_batch(&self, specs: &[GenSpec]) -> Vec<Tensor3> {
        if specs.len() < 2 || specs.iter().any(|s| s.n == 0) {
            return serial_generate_batch(self, specs);
        }
        let nets = self
            .nets
            .as_ref()
            .expect("TimeGAN::generate_batch called before fit");
        let per_req: Vec<Vec<Matrix>> = specs
            .iter()
            .map(|s| {
                let mut rng = s.rng();
                (0..self.seq_len)
                    .map(|_| noise(s.n, nets.noise_dim, &mut rng))
                    .collect()
            })
            .collect();
        let zs: Vec<Matrix> = (0..self.seq_len)
            .map(|t| vstack(per_req.iter().map(|r| &r[t])))
            .collect();
        let total: usize = specs.iter().map(|s| s.n).sum();
        let mut t = Tape::new();
        let erb = nets.er_params.bind(&mut t);
        let gb = nets.g_params.bind(&mut t);
        let z_vars: Vec<VarId> = zs.iter().map(|z| t.constant(z.clone())).collect();
        let h_fake = nets.generator.run(&mut t, &gb, &z_vars, total);
        let x_fake = nets.recovery.run(&mut t, &erb, &h_fake, total);
        let mats: Vec<Matrix> = x_fake.iter().map(|&s| t.value(s).clone()).collect();
        let counts: Vec<usize> = specs.iter().map(|s| s.n).collect();
        split_samples(&steps_to_tensor(&mats), &counts)
    }

    fn save(&self) -> Option<Vec<u8>> {
        let nets = self.nets.as_ref()?;
        let dims = self.dims?;
        let mut w = SnapshotWriter::new(self.id(), self.seq_len, self.features);
        w.dim("hidden", dims.hidden);
        w.dim("latent", dims.latent);
        w.params("er", &nets.er_params);
        w.params("s", &nets.s_params);
        w.params("g", &nets.g_params);
        w.params("d", &nets.d_params);
        Some(w.finish())
    }

    fn load(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        let mut r = SnapshotReader::open(self.id(), self.seq_len, self.features, bytes)?;
        let dims = FitDims {
            hidden: r.dim("hidden")?,
            latent: r.dim("latent")?,
        };
        let mut nets = self.build(&dims.config(), &mut seeded(0));
        r.params("er", &mut nets.er_params)?;
        r.params("s", &mut nets.s_params)?;
        r.params("g", &mut nets.g_params)?;
        r.params("d", &mut nets.d_params)?;
        r.finish()?;
        self.dims = Some(dims);
        self.nets = Some(nets);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsgb_linalg::rng::seeded;

    fn toy_data(r: usize, l: usize, n: usize) -> Tensor3 {
        Tensor3::from_fn(r, l, n, |s, t, f| {
            0.5 + 0.4 * ((t as f64) * 0.8 + (s % 5) as f64 + f as f64).sin()
        })
    }

    #[test]
    fn three_phase_training_runs() {
        let mut rng = seeded(21);
        let data = toy_data(20, 6, 2);
        let mut m = TimeGan::new(6, 2);
        let cfg = TrainConfig {
            epochs: 9,
            hidden: 8,
            ..TrainConfig::fast()
        };
        let report = m.fit(&data, &cfg, &mut rng);
        assert_eq!(report.loss_history.len(), 9);
        let gen = m.generate(5, &mut rng);
        assert_eq!(gen.shape(), (5, 6, 2));
        assert!(gen.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn autoencoder_phase_reduces_reconstruction_loss() {
        let mut rng = seeded(22);
        let data = toy_data(32, 6, 2);
        let mut m = TimeGan::new(6, 2);
        // all-phase-1 budget is epochs/3; use a larger budget to watch
        // the first-phase trajectory
        let cfg = TrainConfig {
            epochs: 60,
            hidden: 8,
            lr: 5e-3,
            ..TrainConfig::fast()
        };
        let report = m.fit(&data, &cfg, &mut rng);
        let phase1 = &report.loss_history[..20];
        let head: f64 = phase1[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = phase1[15..].iter().sum::<f64>() / 5.0;
        assert!(
            tail < head,
            "reconstruction loss must fall: {head} -> {tail}"
        );
    }
}
