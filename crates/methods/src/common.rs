//! The shared method interface: [`TsgMethod`], training configuration,
//! training reports, and minibatch helpers used by all ten methods.

use tsgb_rand::rngs::SmallRng;
use tsgb_rand::Rng;
use std::time::Instant;
use tsgb_linalg::rng::sample_without_replacement;
use tsgb_linalg::{Matrix, Tensor3};
use tsgb_nn::tape::Tape;

/// Identifier of one of the ten benchmarked methods (paper A1–A10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodId {
    /// A1 (Esteban et al., 2017).
    Rgan,
    /// A2 (Yoon et al., NeurIPS'19).
    TimeGan,
    /// A3 (Pei et al., ICDM'21).
    RtsGan,
    /// A4 (Seyfi et al., NeurIPS'22).
    CosciGan,
    /// A5 (Wang et al., AAAI'23).
    AecGan,
    /// A6 (Desai et al., 2021).
    TimeVae,
    /// A7 (Lee et al., AISTATS'23).
    TimeVqVae,
    /// A8 (Alaa et al., ICLR'21).
    FourierFlow,
    /// A9 (Jeon et al., NeurIPS'22).
    GtGan,
    /// A10 (Zhou et al., ICML'23).
    Ls4,
    /// Extension (paper Table 2, Mogren 2016): the earliest recurrent
    /// GAN for sequences.
    CRnnGan,
    /// Extension (Table 2, Ni et al. 2020/21): Wasserstein matching of
    /// expected path signatures — no discriminator training.
    SigWgan,
    /// Extension (Table 2, Xu et al. NeurIPS'20): causal optimal
    /// transport; here a Sinkhorn-divergence generator.
    CotGan,
    /// Extension (Table 2, Lim et al. 2023): score-based generation;
    /// here a DDPM discretization.
    Tsgm,
}

impl MethodId {
    /// All ten benchmarked methods, in the paper's A1–A10 order.
    pub const ALL: [MethodId; 10] = [
        MethodId::Rgan,
        MethodId::TimeGan,
        MethodId::RtsGan,
        MethodId::CosciGan,
        MethodId::AecGan,
        MethodId::TimeVae,
        MethodId::TimeVqVae,
        MethodId::FourierFlow,
        MethodId::GtGan,
        MethodId::Ls4,
    ];

    /// The four extension methods from Table 2 that this reproduction
    /// additionally implements (the paper's conclusion plans to
    /// "continually integrate emerging TSG methods").
    pub const EXTENDED: [MethodId; 4] = [
        MethodId::CRnnGan,
        MethodId::SigWgan,
        MethodId::CotGan,
        MethodId::Tsgm,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MethodId::Rgan => "RGAN",
            MethodId::TimeGan => "TimeGAN",
            MethodId::RtsGan => "RTSGAN",
            MethodId::CosciGan => "COSCI-GAN",
            MethodId::AecGan => "AEC-GAN",
            MethodId::TimeVae => "TimeVAE",
            MethodId::TimeVqVae => "TimeVQVAE",
            MethodId::FourierFlow => "FourierFlow",
            MethodId::GtGan => "GT-GAN",
            MethodId::Ls4 => "LS4",
            MethodId::CRnnGan => "C-RNN-GAN",
            MethodId::SigWgan => "Sig-WGAN",
            MethodId::CotGan => "COT-GAN",
            MethodId::Tsgm => "TSGM",
        }
    }

    /// Inverse of [`MethodId::name`] (case-insensitive), covering the
    /// ten benchmarked and four extension methods.
    pub fn from_name(name: &str) -> Option<MethodId> {
        MethodId::ALL
            .into_iter()
            .chain(MethodId::EXTENDED)
            .find(|m| m.name().eq_ignore_ascii_case(name.trim()))
    }

    /// Instantiates the method for `(seq_len, features)` windows.
    pub fn create(self, seq_len: usize, features: usize) -> Box<dyn TsgMethod> {
        match self {
            MethodId::Rgan => Box::new(crate::rgan::Rgan::new(seq_len, features)),
            MethodId::TimeGan => Box::new(crate::timegan::TimeGan::new(seq_len, features)),
            MethodId::RtsGan => Box::new(crate::rtsgan::RtsGan::new(seq_len, features)),
            MethodId::CosciGan => Box::new(crate::coscigan::CosciGan::new(seq_len, features)),
            MethodId::AecGan => Box::new(crate::aecgan::AecGan::new(seq_len, features)),
            MethodId::TimeVae => Box::new(crate::timevae::TimeVae::new(seq_len, features)),
            MethodId::TimeVqVae => Box::new(crate::timevqvae::TimeVqVae::new(seq_len, features)),
            MethodId::FourierFlow => {
                Box::new(crate::fourierflow::FourierFlow::new(seq_len, features))
            }
            MethodId::GtGan => Box::new(crate::gtgan::GtGan::new(seq_len, features)),
            MethodId::Ls4 => Box::new(crate::ls4::Ls4::new(seq_len, features)),
            MethodId::CRnnGan => Box::new(crate::crnngan::CRnnGan::new(seq_len, features)),
            MethodId::SigWgan => Box::new(crate::sigwgan::SigWgan::new(seq_len, features)),
            MethodId::CotGan => Box::new(crate::cotgan::CotGan::new(seq_len, features)),
            MethodId::Tsgm => Box::new(crate::tsgm::Tsgm::new(seq_len, features)),
        }
    }
}

/// Capacity and schedule knobs shared by all methods.
///
/// Methods interpret `epochs` as their total optimization budget and
/// split it across internal phases where applicable (TimeGAN's three
/// phases, RTSGAN's AE-then-WGAN schedule, TimeVQVAE's two stages).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Total number of passes over the training windows.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Hidden width of recurrent and dense blocks.
    pub hidden: usize,
    /// Latent dimensionality of VAE/AE-based methods.
    pub latent: usize,
    /// Build a fresh tape for every optimization step instead of
    /// recycling per-phase tapes. Recycling is the default (zero
    /// steady-state allocations) and is bit-identical to fresh tapes;
    /// the knob exists so tests can prove that equivalence.
    pub fresh_tapes: bool,
}

impl TrainConfig {
    /// The reduced-scale profile used by tests and the CPU grid:
    /// everything trains in seconds.
    pub fn fast() -> Self {
        Self {
            epochs: 30,
            batch: 32,
            lr: 2e-3,
            hidden: 16,
            latent: 8,
            fresh_tapes: false,
        }
    }

    /// A middle profile for the `reproduce` binary.
    pub fn standard() -> Self {
        Self {
            epochs: 120,
            batch: 64,
            lr: 1e-3,
            hidden: 24,
            latent: 8,
            fresh_tapes: false,
        }
    }

    /// The paper's §5 settings (documented, not used by default: a
    /// pure-Rust CPU build at this scale would take days, like the
    /// original's "more than 1 day" GT-GAN rows).
    pub fn paper_scale() -> Self {
        Self {
            epochs: 10_000,
            batch: 128,
            lr: 1e-3,
            hidden: 64,
            latent: 8,
            fresh_tapes: false,
        }
    }
}

/// What `fit` reports back: the data behind the paper's training-time
/// row (M8) and the loss trajectories used in tests.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Wall-clock training duration in seconds.
    pub train_seconds: f64,
    /// Mean loss of each epoch (methods with multiple losses report
    /// their primary generator/ELBO/NLL loss).
    pub loss_history: Vec<f64>,
}

impl TrainReport {
    /// Builds a report from a start instant and history.
    pub fn finish(start: Instant, loss_history: Vec<f64>) -> Self {
        Self {
            train_seconds: start.elapsed().as_secs_f64(),
            loss_history,
        }
    }

    /// Final epoch loss (NaN when no epochs ran).
    pub fn final_loss(&self) -> f64 {
        self.loss_history.last().copied().unwrap_or(f64::NAN)
    }
}

/// The shared per-epoch observability hook of every training loop.
///
/// One `EpochLog` replaces the bare `Vec<f64>` loss history of each of
/// the fourteen `fit` implementations: [`EpochLog::epoch`] appends the
/// loss to the report history and — only while `tsgb-obs` recording is
/// enabled — emits the per-epoch loss gauge, the epoch wall-time
/// histogram, and the global epoch counter. With recording disabled
/// the hook is a plain `Vec::push` behind one relaxed atomic load (no
/// clock reads, no string formatting), keeping training inside the
/// perf-probe overhead budget. Gradient norms are observed where they
/// are already computed, in [`tsgb_nn::params::Params::clip_grad_norm`].
///
/// Metric names: `train.epochs` (counter), `train.loss.<METHOD>`
/// (gauge, last epoch), `train.epoch_ms.<METHOD>` and
/// `train.fit_s.<METHOD>` (histograms).
pub struct EpochLog {
    method: &'static str,
    history: Vec<f64>,
    /// Start of the epoch being timed; `None` while recording is off.
    tick: Option<Instant>,
}

impl EpochLog {
    /// A log for one `fit` call of `id`, sized for `epochs` entries.
    pub fn new(id: MethodId, epochs: usize) -> Self {
        Self {
            method: id.name(),
            history: Vec::with_capacity(epochs),
            tick: tsgb_obs::enabled().then(Instant::now),
        }
    }

    /// Records one finished epoch with its primary loss.
    pub fn epoch(&mut self, loss: f64) {
        if let Some(t0) = self.tick {
            let now = Instant::now();
            let ms = now.duration_since(t0).as_secs_f64() * 1e3;
            tsgb_obs::observe(&format!("train.epoch_ms.{}", self.method), ms);
            tsgb_obs::gauge_set(&format!("train.loss.{}", self.method), loss);
            tsgb_obs::counter_add("train.epochs", 1);
            self.tick = Some(now);
        }
        self.history.push(loss);
    }

    /// Closes the log into the method's [`TrainReport`].
    pub fn finish(self, start: Instant) -> TrainReport {
        let report = TrainReport::finish(start, self.history);
        if tsgb_obs::enabled() {
            tsgb_obs::observe(
                &format!("train.fit_s.{}", self.method),
                report.train_seconds,
            );
        }
        report
    }
}

/// A training-phase tape recycled — and, by default, *compiled* —
/// across minibatches.
///
/// Every method's `fit` keeps one `PhasePlan` per optimization phase
/// (discriminator step, generator step, AE step, …). `begin` yields a
/// tape cleared for the next step. Three regimes, strongest first:
///
/// * **plan** (default, `TSGB_PLAN=on`): the first recorded step is
///   captured into a compiled execution plan; later steps only
///   signature-check their ops and feed leaf data, with forward and
///   backward running as frozen schedules ([`Tape::begin_step`]).
///   Structural changes (batch size, graph shape) transparently fall
///   back to re-recording and re-capture on the next step.
/// * **recycle** (`TSGB_PLAN=off`): the previous step's buffers are
///   recycled in place — PR 2's zero-allocation interpreter path.
/// * **fresh** ([`TrainConfig::fresh_tapes`]): a brand-new tape every
///   step, allocation-heavy, kept so tests can prove all three are
///   bit-identical.
pub struct PhasePlan {
    tape: Tape,
    fresh: bool,
    plan: bool,
}

/// The pre-plan name of [`PhasePlan`], kept so older code and docs
/// resolve; the behavior is identical.
pub type PhaseTape = PhasePlan;

impl PhasePlan {
    /// A phase tape honoring the config's `fresh_tapes` knob and the
    /// `TSGB_PLAN` gate (read once at construction).
    pub fn new(cfg: &TrainConfig) -> Self {
        Self {
            tape: Tape::new(),
            fresh: cfg.fresh_tapes,
            plan: !cfg.fresh_tapes && tsgb_nn::plan_enabled(),
        }
    }

    /// The tape, cleared for the next optimization step.
    pub fn begin(&mut self) -> &mut Tape {
        if self.fresh {
            self.tape = Tape::new();
        } else {
            self.tape.begin_step(self.plan);
        }
        &mut self.tape
    }
}

/// The architecture-determining slice of the fit-time configuration.
///
/// Every method keeps the `FitDims` of its last `fit` so a checkpoint
/// ([`TsgMethod::save`]) can rebuild bit-identical net shapes at load
/// time; the remaining [`TrainConfig`] fields (epochs, lr, batch) only
/// steer optimization and are irrelevant to a restored model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitDims {
    /// Hidden width of recurrent and dense blocks.
    pub hidden: usize,
    /// Latent dimensionality (noise dim for GANs).
    pub latent: usize,
}

impl FitDims {
    /// Captures the dims of a training configuration.
    pub fn of(cfg: &TrainConfig) -> Self {
        Self {
            hidden: cfg.hidden,
            latent: cfg.latent,
        }
    }

    /// A configuration that rebuilds the same architecture (schedule
    /// fields are placeholders — a restored model never trains).
    pub fn config(self) -> TrainConfig {
        TrainConfig {
            hidden: self.hidden,
            latent: self.latent,
            ..TrainConfig::fast()
        }
    }
}

/// One request of a batched generation call: draw `n` windows from
/// the deterministic stream seeded with `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSpec {
    /// How many windows this request wants.
    pub n: usize,
    /// Seed of the request's private RNG stream.
    pub seed: u64,
}

impl GenSpec {
    /// The request's RNG, positioned at the start of its stream.
    pub fn rng(&self) -> SmallRng {
        tsgb_linalg::rng::seeded(self.seed)
    }
}

/// The reference semantics of [`TsgMethod::generate_batch`]: one
/// independent `generate` call per spec, each on its own seeded
/// stream. Fused overrides must match this bit-exactly.
pub fn serial_generate_batch<M: TsgMethod + ?Sized>(method: &M, specs: &[GenSpec]) -> Vec<Tensor3> {
    specs
        .iter()
        .map(|s| method.generate(s.n, &mut s.rng()))
        .collect()
}

/// Vertically stacks same-width matrices into one row-major batch.
pub fn vstack<'a>(mats: impl IntoIterator<Item = &'a Matrix>) -> Matrix {
    let mats: Vec<&Matrix> = mats.into_iter().collect();
    assert!(!mats.is_empty(), "cannot stack zero matrices");
    let cols = mats[0].cols();
    let rows = mats.iter().map(|m| m.rows()).sum();
    let mut data = Vec::with_capacity(rows * cols);
    for m in &mats {
        assert_eq!(m.cols(), cols, "inconsistent widths");
        data.extend_from_slice(m.as_slice());
    }
    Matrix::from_vec(rows, cols, data).expect("stacked layout")
}

/// Splits a fused `(Σn, l, N)` tensor back into per-request tensors.
pub fn split_samples(fused: &Tensor3, counts: &[usize]) -> Vec<Tensor3> {
    let mut out = Vec::with_capacity(counts.len());
    let mut off = 0;
    for &c in counts {
        out.push(fused.slice_samples(off, off + c));
        off += c;
    }
    assert_eq!(off, fused.samples(), "split counts must cover the batch");
    out
}

/// A synthetic time-series generator trainable on `(R, l, N)` windows
/// normalized to `[0, 1]`.
///
/// `Send + Sync` is part of the contract: methods hold only owned
/// numeric state after `fit`, so a trained model can be shared across
/// the serving worker threads of `tsgb-serve`.
pub trait TsgMethod: Send + Sync {
    /// The registry id.
    fn id(&self) -> MethodId;

    /// Display name.
    fn name(&self) -> &'static str {
        self.id().name()
    }

    /// Trains on the window tensor. Must be called before `generate`.
    fn fit(&mut self, train: &Tensor3, cfg: &TrainConfig, rng: &mut SmallRng) -> TrainReport;

    /// Draws `n` synthetic windows of the training shape.
    ///
    /// # Panics
    /// Panics when called before `fit`.
    fn generate(&self, n: usize, rng: &mut SmallRng) -> Tensor3;

    /// Generates for several independent seeded requests in one call.
    ///
    /// The contract is bit-exact equivalence with the serial path:
    /// element `i` of the result equals
    /// `self.generate(specs[i].n, &mut seeded(specs[i].seed))`.
    /// The default delegates to exactly that; methods whose forward
    /// pass is row-independent override it with a fused single-pass
    /// implementation (per-request noise drawn from each request's own
    /// stream, one concatenated forward, rows split per request),
    /// which is what makes request coalescing in `tsgb-serve` pay.
    fn generate_batch(&self, specs: &[GenSpec]) -> Vec<Tensor3> {
        serial_generate_batch(self, specs)
    }

    /// Reduced-precision batched generation for the f32 serve tier
    /// (`TSGB_SERVE_DTYPE=f32`): the forward pass runs in `f32`
    /// through tape-free replica networks, roughly doubling batched
    /// throughput on wide-SIMD hardware. Returns `None` when the
    /// method has no f32 path (or is unfitted) — the caller falls back
    /// to the bit-exact f64 [`TsgMethod::generate_batch`].
    ///
    /// The f32 tier keeps its own batching contract: every returned
    /// tensor is a pure function of its `(n, seed)` spec, independent
    /// of which other requests share the batch (rows are computed
    /// independently and the f32 kernels are bit-stable across batch
    /// size). It is *not* bit-comparable to the f64 path — that is the
    /// tier's documented trade.
    fn generate_batch_f32(&self, specs: &[GenSpec]) -> Option<Vec<Tensor3>> {
        let _ = specs;
        None
    }

    /// Opens a window stream for one request. The chunks yielded by
    /// the returned [`WindowStream`] concatenate to exactly
    /// `self.generate(spec.n, &mut spec.rng())`, bit for bit, for any
    /// chunk-size sequence — streaming is invisible in the samples,
    /// the same way batching is. The default materializes the one-shot
    /// tensor up front and slices it (trivially identical, but the
    /// first chunk costs the whole forward pass); methods whose noise
    /// draw order is row-major over samples override it with an
    /// incremental sampler that defers each chunk's forward pass until
    /// the chunk is pulled (see `rgan`/`timevae`), which is what gives
    /// the streaming endpoint its time-to-first-chunk advantage.
    fn open_stream(&self, spec: GenSpec) -> Box<dyn WindowStream + '_> {
        Box::new(EagerStream::new(self.generate(spec.n, &mut spec.rng())))
    }

    /// The conditional-sampling capability, when the method has one
    /// (class-/covariate-conditioned noise shaping, see
    /// [`ConditionalSample`]). `None` — the default — means requests
    /// carrying a `condition` are rejected for this method.
    fn conditional(&self) -> Option<&dyn ConditionalSample> {
        None
    }

    /// Serializes the trained model into a self-describing `TSGBCK02`
    /// checkpoint (`None` before `fit`). See [`crate::persist`].
    fn save(&self) -> Option<Vec<u8>>;

    /// Restores a model saved by [`TsgMethod::save`] into this
    /// instance (created for the same `(seq_len, features)` shape).
    /// After a successful load, `generate` is bit-identical to the
    /// saved model's.
    fn load(&mut self, bytes: &[u8]) -> Result<(), crate::persist::PersistError>;
}

/// A stateful sampler that emits one request's windows in chunks (the
/// compute half of the streaming scenario; `tsgb-serve` frames each
/// chunk as one `Transfer-Encoding: chunked` body part).
///
/// Contract: concatenating every yielded chunk reproduces the one-shot
/// `generate(n, seed)` tensor bit for bit, regardless of how the pulls
/// are sized.
pub trait WindowStream: Send {
    /// Draws the next `min(len, remaining)` windows; `None` once all
    /// windows have been emitted. `len` is clamped to at least 1.
    fn next_chunk(&mut self, len: usize) -> Option<Tensor3>;

    /// Windows not yet emitted.
    fn remaining(&self) -> usize;
}

/// The default [`TsgMethod::open_stream`] backend: the fully
/// materialized one-shot tensor, handed out slice by slice.
pub struct EagerStream {
    tensor: Tensor3,
    offset: usize,
}

impl EagerStream {
    /// Wraps an already-generated tensor.
    pub fn new(tensor: Tensor3) -> Self {
        Self { tensor, offset: 0 }
    }
}

impl WindowStream for EagerStream {
    fn next_chunk(&mut self, len: usize) -> Option<Tensor3> {
        if self.offset >= self.tensor.samples() {
            return None;
        }
        let end = (self.offset + len.max(1)).min(self.tensor.samples());
        let out = self.tensor.slice_samples(self.offset, end);
        self.offset = end;
        Some(out)
    }

    fn remaining(&self) -> usize {
        self.tensor.samples() - self.offset
    }
}

/// Salt of the per-class direction stream (see
/// [`Condition::direction`]); any stable constant works, it only has
/// to differ from the generation seeds' domain.
pub const CONDITION_SALT: u64 = 0xC0DE_5EED_0001;

/// A generation condition for [`ConditionalSample`]: what to condition
/// on, plus how strongly to shape the noise toward it. `strength 0`
/// must reproduce the unconditional stream bit for bit (implementers
/// short-circuit the zero shift).
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// A class label: the shift direction is a deterministic unit
    /// vector drawn from a stream seeded by the label, so each class
    /// claims a stable region of the noise space.
    Class {
        /// The class id.
        label: u32,
        /// Shift magnitude in noise-space standard deviations.
        strength: f64,
    },
    /// A covariate vector: the values are cycled across the noise
    /// dimensions and normalized, so correlated covariates map to a
    /// stable direction.
    Covariate {
        /// The covariate values (empty means no shift).
        values: Vec<f64>,
        /// Shift magnitude in noise-space standard deviations.
        strength: f64,
    },
}

impl Condition {
    /// The shift magnitude.
    pub fn strength(&self) -> f64 {
        match self {
            Condition::Class { strength, .. } | Condition::Covariate { strength, .. } => *strength,
        }
    }

    /// The deterministic shift vector in a `dim`-dimensional noise
    /// space: a unit direction scaled by [`Condition::strength`]. A
    /// zero strength (or an empty/zero covariate vector) yields the
    /// all-zero shift.
    pub fn direction(&self, dim: usize) -> Vec<f64> {
        let strength = self.strength();
        if dim == 0 || strength == 0.0 {
            return vec![0.0; dim];
        }
        let mut v = match self {
            Condition::Class { label, .. } => {
                let mut rng = tsgb_linalg::rng::seeded(CONDITION_SALT ^ u64::from(*label));
                (0..dim)
                    .map(|_| tsgb_linalg::rng::randn(&mut rng))
                    .collect::<Vec<f64>>()
            }
            Condition::Covariate { values, .. } => {
                if values.is_empty() {
                    return vec![0.0; dim];
                }
                (0..dim).map(|i| values[i % values.len()]).collect()
            }
        };
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return vec![0.0; dim];
        }
        for x in &mut v {
            *x *= strength / norm;
        }
        v
    }
}

/// Adds `shift[c]` to every entry of column `c`. A no-op (and
/// bit-preserving) when the shift is all zeros, which is what keeps
/// `strength 0` identical to the unconditional draw.
pub fn shift_columns(m: &mut Matrix, shift: &[f64]) {
    assert_eq!(m.cols(), shift.len(), "shift width mismatch");
    if shift.iter().all(|&s| s == 0.0) {
        return;
    }
    for r in 0..m.rows() {
        for (c, &s) in shift.iter().enumerate() {
            m[(r, c)] += s;
        }
    }
}

/// The conditional-sampling capability: class-/covariate-conditioned
/// noise shaping for methods whose generator consumes an explicit
/// noise/latent stream (RGAN shifts its per-step noise, TimeVAE its
/// latent draw). Exposed on [`TsgMethod::conditional`] the way
/// `generate_batch_f32` gates the f32 tier.
pub trait ConditionalSample {
    /// Draws `n` windows conditioned on `cond`. The contract mirrors
    /// [`TsgMethod::generate`]: a pure function of
    /// `(checkpoint, n, cond, rng stream)`, and with
    /// `cond.strength() == 0` bit-identical to the unconditional
    /// `generate(n, rng)` on the same stream.
    fn generate_conditioned(&self, n: usize, cond: &Condition, rng: &mut SmallRng) -> Tensor3;
}

/// Gathers the samples at `idx` as per-step matrices: element `t` of
/// the result is the `(batch, N)` matrix of step `t` across the batch.
/// This is the layout recurrent models consume.
pub fn gather_step_matrices(data: &Tensor3, idx: &[usize]) -> Vec<Matrix> {
    let (_, l, n) = data.shape();
    let mut steps = vec![Matrix::zeros(idx.len(), n); l];
    for (row, &s) in idx.iter().enumerate() {
        for (t, step) in steps.iter_mut().enumerate() {
            for f in 0..n {
                step[(row, f)] = data.at(s, t, f);
            }
        }
    }
    steps
}

/// Inverse of [`gather_step_matrices`]: stacks `l` matrices of shape
/// `(batch, N)` into a `(batch, l, N)` tensor.
pub fn steps_to_tensor(steps: &[Matrix]) -> Tensor3 {
    assert!(!steps.is_empty(), "cannot stack zero steps");
    let (batch, n) = steps[0].shape();
    let l = steps.len();
    let mut out = Tensor3::zeros(batch, l, n);
    for (t, m) in steps.iter().enumerate() {
        assert_eq!(m.shape(), (batch, n), "inconsistent step shapes");
        for b in 0..batch {
            for f in 0..n {
                *out.at_mut(b, t, f) = m[(b, f)];
            }
        }
    }
    out
}

/// Draws a random minibatch of sample indices.
pub fn minibatch(total: usize, batch: usize, rng: &mut SmallRng) -> Vec<usize> {
    let b = batch.min(total);
    if b == total {
        (0..total).collect()
    } else {
        sample_without_replacement(total, b, rng)
    }
}

/// A `(rows, cols)` matrix of i.i.d. standard normals — per-step GAN
/// noise.
pub fn noise(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    tsgb_linalg::rng::randn_matrix(rows, cols, rng)
}

/// A `(rows, cols)` matrix of `U[0,1)` noise.
pub fn uniform_noise(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsgb_linalg::rng::seeded;

    #[test]
    fn step_matrices_roundtrip() {
        let t = Tensor3::from_fn(4, 3, 2, |s, t, f| (s * 100 + t * 10 + f) as f64);
        let steps = gather_step_matrices(&t, &[0, 1, 2, 3]);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[1][(2, 1)], 211.0);
        let back = steps_to_tensor(&steps);
        assert_eq!(back, t);
    }

    #[test]
    fn gather_respects_index_order() {
        let t = Tensor3::from_fn(3, 2, 1, |s, _, _| s as f64);
        let steps = gather_step_matrices(&t, &[2, 0]);
        assert_eq!(steps[0].col(0), vec![2.0, 0.0]);
    }

    #[test]
    fn minibatch_bounds() {
        let mut rng = seeded(1);
        let mb = minibatch(10, 32, &mut rng);
        assert_eq!(mb.len(), 10);
        let mb2 = minibatch(100, 8, &mut rng);
        assert_eq!(mb2.len(), 8);
        assert!(mb2.iter().all(|&i| i < 100));
    }

    #[test]
    fn method_registry_is_complete() {
        assert_eq!(MethodId::ALL.len(), 10);
        for id in MethodId::ALL {
            assert!(!id.name().is_empty());
        }
    }
}
